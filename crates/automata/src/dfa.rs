//! Deterministic finite automata over multi-track binary alphabets.
//!
//! A word over `k` tracks assigns, at each position, a bit to every track. A symbol is
//! therefore an integer in `0..2^k` whose `i`-th bit is the value of track `i`. This is
//! exactly the representation used by MONA for WS1S: each free variable of a formula owns
//! one track (first-order variables are encoded as singleton sets by the caller).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A state index.
pub type State = usize;

/// A complete deterministic finite automaton over a `2^num_tracks` symbol alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    num_tracks: usize,
    initial: State,
    accepting: Vec<bool>,
    /// `trans[state][symbol]` is the successor state; every row has `2^num_tracks`
    /// entries, so the automaton is complete.
    trans: Vec<Vec<State>>,
}

impl Dfa {
    /// Creates a DFA. `trans[s][a]` must be defined for every state `s` and symbol
    /// `a < 2^num_tracks`.
    ///
    /// # Panics
    ///
    /// Panics if the transition table is not complete or refers to unknown states.
    pub fn new(
        num_tracks: usize,
        initial: State,
        accepting: Vec<bool>,
        trans: Vec<Vec<State>>,
    ) -> Self {
        let n = accepting.len();
        let symbols = 1usize << num_tracks;
        assert_eq!(trans.len(), n, "transition table must cover every state");
        assert!(initial < n, "initial state out of range");
        for row in &trans {
            assert_eq!(row.len(), symbols, "transition row must cover every symbol");
            for &t in row {
                assert!(t < n, "transition target out of range");
            }
        }
        Dfa {
            num_tracks,
            initial,
            accepting,
            trans,
        }
    }

    /// The number of tracks.
    pub fn num_tracks(&self) -> usize {
        self.num_tracks
    }

    /// The number of states.
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// The number of symbols (`2^num_tracks`).
    pub fn num_symbols(&self) -> usize {
        1usize << self.num_tracks
    }

    /// The size of this automaton in the state×symbol work units cooperative fuel
    /// budgets are charged in: every transition-table entry a construction touches
    /// costs one unit, so charging `work_cost()` per intermediate automaton bounds
    /// the total construction effort a budgeted caller can spend.
    pub fn work_cost(&self) -> u64 {
        self.num_states() as u64 * self.num_symbols() as u64
    }

    /// The initial state.
    pub fn initial(&self) -> State {
        self.initial
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: State) -> bool {
        self.accepting[state]
    }

    /// The successor of `state` on `symbol`.
    pub fn step(&self, state: State, symbol: usize) -> State {
        self.trans[state][symbol]
    }

    /// A DFA over `num_tracks` tracks accepting every word.
    pub fn all(num_tracks: usize) -> Self {
        let symbols = 1usize << num_tracks;
        Dfa::new(num_tracks, 0, vec![true], vec![vec![0; symbols]])
    }

    /// A DFA over `num_tracks` tracks accepting no word.
    pub fn none(num_tracks: usize) -> Self {
        let symbols = 1usize << num_tracks;
        Dfa::new(num_tracks, 0, vec![false], vec![vec![0; symbols]])
    }

    /// Runs the automaton on a word (a sequence of symbols) and reports acceptance.
    pub fn accepts(&self, word: &[usize]) -> bool {
        let mut s = self.initial;
        for &a in word {
            s = self.trans[s][a];
        }
        self.accepting[s]
    }

    /// The complement automaton (accepting exactly the rejected words).
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accepting {
            *a = !*a;
        }
        out
    }

    /// Product construction. `accept(a, b)` decides acceptance of a product state from
    /// the acceptance of its components (e.g. `&&` for intersection, `||` for union).
    pub fn product(&self, other: &Dfa, accept: impl Fn(bool, bool) -> bool) -> Dfa {
        self.product_bounded(other, accept, usize::MAX)
            .expect("unbounded product cannot exceed its limit")
    }

    /// Product construction with a state budget: returns `None` if the reachable part of
    /// the product has more than `max_states` states. Used by clients (such as the WS1S
    /// decision procedure) that must bail out gracefully instead of building enormous
    /// intermediate automata.
    pub fn product_bounded(
        &self,
        other: &Dfa,
        accept: impl Fn(bool, bool) -> bool,
        max_states: usize,
    ) -> Option<Dfa> {
        assert_eq!(
            self.num_tracks, other.num_tracks,
            "product requires identical track counts"
        );
        let symbols = self.num_symbols();
        let mut index: BTreeMap<(State, State), State> = BTreeMap::new();
        let mut order: Vec<(State, State)> = Vec::new();
        let mut queue = VecDeque::new();
        index.insert((self.initial, other.initial), 0);
        order.push((self.initial, other.initial));
        queue.push_back((self.initial, other.initial));
        let mut trans: Vec<Vec<State>> = Vec::new();
        while let Some((p, q)) = queue.pop_front() {
            let mut row = Vec::with_capacity(symbols);
            for a in 0..symbols {
                let succ = (self.trans[p][a], other.trans[q][a]);
                let id = *index.entry(succ).or_insert_with(|| {
                    order.push(succ);
                    queue.push_back(succ);
                    order.len() - 1
                });
                row.push(id);
            }
            if order.len() > max_states {
                return None;
            }
            trans.push(row);
        }
        let accepting = order
            .iter()
            .map(|&(p, q)| accept(self.accepting[p], other.accepting[q]))
            .collect();
        Some(Dfa::new(self.num_tracks, 0, accepting, trans))
    }

    /// Intersection of the two languages.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Intersection with a state budget (see [`Dfa::product_bounded`]).
    pub fn intersect_bounded(&self, other: &Dfa, max_states: usize) -> Option<Dfa> {
        self.product_bounded(other, |a, b| a && b, max_states)
    }

    /// Union of the two languages.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Union with a state budget (see [`Dfa::product_bounded`]).
    pub fn union_bounded(&self, other: &Dfa, max_states: usize) -> Option<Dfa> {
        self.product_bounded(other, |a, b| a || b, max_states)
    }

    /// Returns `true` if the language is empty.
    pub fn is_empty(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// Returns a shortest accepted word, if any (breadth-first search).
    pub fn shortest_accepted(&self) -> Option<Vec<usize>> {
        let mut visited = vec![false; self.num_states()];
        let mut parent: Vec<Option<(State, usize)>> = vec![None; self.num_states()];
        let mut queue = VecDeque::new();
        visited[self.initial] = true;
        queue.push_back(self.initial);
        let mut found = None;
        if self.accepting[self.initial] {
            found = Some(self.initial);
        }
        while found.is_none() {
            let Some(s) = queue.pop_front() else { break };
            for a in 0..self.num_symbols() {
                let t = self.trans[s][a];
                if !visited[t] {
                    visited[t] = true;
                    parent[t] = Some((s, a));
                    if self.accepting[t] {
                        found = Some(t);
                        break;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut state = found?;
        let mut word = Vec::new();
        while let Some((prev, sym)) = parent[state] {
            word.push(sym);
            state = prev;
        }
        word.reverse();
        Some(word)
    }

    /// Extends acceptance to words that reach an accepting state after appending some
    /// number of all-zero symbols. This is the standard WS1S adjustment after projecting
    /// an existentially quantified track: the witness set may mention positions beyond
    /// the original word, which appear as trailing zero columns for the free variables.
    pub fn accept_zero_extensions(&self) -> Dfa {
        let mut out = self.clone();
        // A state is accepting if some accepting state is reachable by zero symbols only.
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..out.num_states() {
                if !out.accepting[s] && out.accepting[out.trans[s][0]] {
                    out.accepting[s] = true;
                    changed = true;
                }
            }
        }
        out
    }

    /// Minimises the automaton (Moore's partition refinement) after removing unreachable
    /// states.
    pub fn minimize(&self) -> Dfa {
        // Restrict to reachable states.
        let mut reachable = vec![false; self.num_states()];
        let mut queue = VecDeque::new();
        reachable[self.initial] = true;
        queue.push_back(self.initial);
        while let Some(s) = queue.pop_front() {
            for a in 0..self.num_symbols() {
                let t = self.trans[s][a];
                if !reachable[t] {
                    reachable[t] = true;
                    queue.push_back(t);
                }
            }
        }
        let states: Vec<State> = (0..self.num_states()).filter(|&s| reachable[s]).collect();
        // Initial partition: accepting vs rejecting.
        let mut class: BTreeMap<State, usize> = states
            .iter()
            .map(|&s| (s, usize::from(self.accepting[s])))
            .collect();
        loop {
            // Signature of a state: its class and the classes of its successors.
            let mut signatures: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
            let mut next_class: BTreeMap<State, usize> = BTreeMap::new();
            for &s in &states {
                let sig = (
                    class[&s],
                    (0..self.num_symbols())
                        .map(|a| class[&self.trans[s][a]])
                        .collect::<Vec<_>>(),
                );
                let n = signatures.len();
                let id = *signatures.entry(sig).or_insert(n);
                next_class.insert(s, id);
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }
        let num_classes = class.values().copied().collect::<BTreeSet<_>>().len();
        let mut representatives: Vec<Option<State>> = vec![None; num_classes];
        for &s in &states {
            let c = class[&s];
            if representatives[c].is_none() {
                representatives[c] = Some(s);
            }
        }
        let mut accepting = vec![false; num_classes];
        let mut trans = vec![vec![0; self.num_symbols()]; num_classes];
        for (c, rep) in representatives.iter().enumerate() {
            let rep = rep.expect("every class has a representative");
            accepting[c] = self.accepting[rep];
            for a in 0..self.num_symbols() {
                trans[c][a] = class[&self.trans[rep][a]];
            }
        }
        Dfa::new(self.num_tracks, class[&self.initial], accepting, trans)
    }

    /// Returns `true` if the two automata accept the same language.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.product(other, |a, b| a != b).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// DFA over one track accepting words with an even number of 1s.
    fn even_ones() -> Dfa {
        Dfa::new(1, 0, vec![true, false], vec![vec![0, 1], vec![1, 0]])
    }

    /// DFA over one track accepting words containing at least one 1.
    fn contains_one() -> Dfa {
        Dfa::new(1, 0, vec![false, true], vec![vec![0, 1], vec![1, 1]])
    }

    #[test]
    fn accepts_runs_the_automaton() {
        let d = even_ones();
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[1, 1]));
        assert!(!d.accepts(&[1, 0]));
    }

    #[test]
    fn complement_flips_acceptance() {
        let d = even_ones().complement();
        assert!(!d.accepts(&[]));
        assert!(d.accepts(&[1]));
    }

    #[test]
    fn intersection_and_union() {
        let both = even_ones().intersect(&contains_one());
        assert!(both.accepts(&[1, 1]));
        assert!(!both.accepts(&[]));
        assert!(!both.accepts(&[1]));
        let either = even_ones().union(&contains_one());
        assert!(either.accepts(&[]));
        assert!(either.accepts(&[1]));
        assert!(!either.accepts(&[0]) || either.accepts(&[0])); // total function sanity
    }

    #[test]
    fn emptiness_and_witness() {
        assert!(Dfa::none(1).is_empty());
        assert!(!Dfa::all(2).is_empty());
        let d = even_ones().intersect(&contains_one());
        let w = d.shortest_accepted().expect("non-empty");
        assert!(d.accepts(&w));
        assert_eq!(w.len(), 2);
        // Intersecting a language with its complement is empty.
        assert!(even_ones().intersect(&even_ones().complement()).is_empty());
    }

    #[test]
    fn zero_extension_acceptance() {
        // Accepts exactly words of length >= 2 (regardless of bits).
        let d = Dfa::new(
            1,
            0,
            vec![false, false, true],
            vec![vec![1, 1], vec![2, 2], vec![2, 2]],
        );
        let z = d.accept_zero_extensions();
        // The empty word extends with two zero symbols to an accepted word.
        assert!(z.accepts(&[]));
        assert!(z.accepts(&[1]));
    }

    #[test]
    fn minimization_preserves_language() {
        // A redundant automaton for "even number of ones" with duplicated states.
        let redundant = Dfa::new(
            1,
            0,
            vec![true, false, true, false],
            vec![vec![2, 1], vec![3, 0], vec![0, 3], vec![1, 2]],
        );
        let min = redundant.minimize();
        assert_eq!(min.num_states(), 2);
        assert!(min.equivalent(&even_ones()));
    }

    #[test]
    fn equivalence_check() {
        assert!(even_ones().equivalent(&even_ones().minimize()));
        assert!(!even_ones().equivalent(&contains_one()));
    }

    #[test]
    #[should_panic(expected = "transition row must cover every symbol")]
    fn incomplete_table_is_rejected() {
        let _ = Dfa::new(1, 0, vec![true], vec![vec![0]]);
    }
}
