//! Nondeterministic finite automata and the operations WS1S needs from them:
//! track projection (existential quantification) and subset-construction determinisation.

use crate::dfa::{Dfa, State};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A nondeterministic finite automaton over a multi-track binary alphabet (no epsilon
/// transitions; they are not needed for the WS1S constructions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa {
    num_tracks: usize,
    initial: BTreeSet<State>,
    accepting: Vec<bool>,
    /// `trans[state][symbol]` is the set of successor states.
    trans: Vec<Vec<BTreeSet<State>>>,
}

impl Nfa {
    /// Creates an NFA.
    ///
    /// # Panics
    ///
    /// Panics if the transition table shape does not match the number of states/symbols.
    pub fn new(
        num_tracks: usize,
        initial: BTreeSet<State>,
        accepting: Vec<bool>,
        trans: Vec<Vec<BTreeSet<State>>>,
    ) -> Self {
        let n = accepting.len();
        let symbols = 1usize << num_tracks;
        assert_eq!(trans.len(), n, "transition table must cover every state");
        for row in &trans {
            assert_eq!(row.len(), symbols, "transition row must cover every symbol");
            for succ in row {
                for &t in succ {
                    assert!(t < n, "transition target out of range");
                }
            }
        }
        for &s in &initial {
            assert!(s < n, "initial state out of range");
        }
        Nfa {
            num_tracks,
            initial,
            accepting,
            trans,
        }
    }

    /// The number of tracks.
    pub fn num_tracks(&self) -> usize {
        self.num_tracks
    }

    /// The number of symbols.
    pub fn num_symbols(&self) -> usize {
        1usize << self.num_tracks
    }

    /// Converts a DFA into an equivalent NFA.
    pub fn from_dfa(dfa: &Dfa) -> Nfa {
        let n = dfa.num_states();
        let symbols = dfa.num_symbols();
        let mut trans = vec![vec![BTreeSet::new(); symbols]; n];
        #[allow(clippy::needless_range_loop)]
        for s in 0..n {
            for a in 0..symbols {
                trans[s][a].insert(dfa.step(s, a));
            }
        }
        Nfa::new(
            dfa.num_tracks(),
            BTreeSet::from([dfa.initial()]),
            (0..n).map(|s| dfa.is_accepting(s)).collect(),
            trans,
        )
    }

    /// Runs the automaton on a word and reports acceptance.
    pub fn accepts(&self, word: &[usize]) -> bool {
        let mut current = self.initial.clone();
        for &a in word {
            let mut next = BTreeSet::new();
            for &s in &current {
                next.extend(self.trans[s][a].iter().copied());
            }
            current = next;
        }
        current.iter().any(|&s| self.accepting[s])
    }

    /// Projects away `track`: the resulting automaton no longer constrains that track
    /// (existential quantification over the track's value at every position). The track
    /// count is preserved; the projected track simply becomes unconstrained.
    ///
    /// # Panics
    ///
    /// Panics if `track >= num_tracks`.
    pub fn project(&self, track: usize) -> Nfa {
        assert!(track < self.num_tracks, "track out of range");
        let bit = 1usize << track;
        let symbols = self.num_symbols();
        let mut trans = vec![vec![BTreeSet::new(); symbols]; self.accepting.len()];
        for (s, row) in self.trans.iter().enumerate() {
            for (a, succ) in row.iter().enumerate() {
                // The successor set on symbol `a` becomes reachable both with the bit
                // cleared and with the bit set.
                trans[s][a & !bit].extend(succ.iter().copied());
                trans[s][a | bit].extend(succ.iter().copied());
            }
        }
        Nfa::new(
            self.num_tracks,
            self.initial.clone(),
            self.accepting.clone(),
            trans,
        )
    }

    /// Subset construction: an equivalent DFA.
    pub fn determinize(&self) -> Dfa {
        self.determinize_bounded(usize::MAX)
            .expect("unbounded determinisation cannot exceed its limit")
    }

    /// Subset construction with a state budget: returns `None` if the determinised
    /// automaton would have more than `max_states` states.
    pub fn determinize_bounded(&self, max_states: usize) -> Option<Dfa> {
        let symbols = self.num_symbols();
        let mut index: BTreeMap<BTreeSet<State>, State> = BTreeMap::new();
        let mut order: Vec<BTreeSet<State>> = Vec::new();
        let mut queue = VecDeque::new();
        index.insert(self.initial.clone(), 0);
        order.push(self.initial.clone());
        queue.push_back(self.initial.clone());
        let mut trans: Vec<Vec<State>> = Vec::new();
        while let Some(current) = queue.pop_front() {
            let mut row = Vec::with_capacity(symbols);
            for a in 0..symbols {
                let mut next = BTreeSet::new();
                for &s in &current {
                    next.extend(self.trans[s][a].iter().copied());
                }
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = order.len();
                        index.insert(next.clone(), id);
                        order.push(next.clone());
                        queue.push_back(next);
                        id
                    }
                };
                row.push(id);
            }
            if order.len() > max_states {
                return None;
            }
            trans.push(row);
        }
        let accepting = order
            .iter()
            .map(|set| set.iter().any(|&s| self.accepting[s]))
            .collect();
        Some(Dfa::new(self.num_tracks, 0, accepting, trans))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-track DFA accepting words where track 0 and track 1 carry equal bits at every
    /// position (i.e. the sets they denote are equal).
    fn tracks_equal() -> Dfa {
        // Symbols: bit0 = track0, bit1 = track1. Equal iff symbol is 0b00 or 0b11.
        Dfa::new(
            2,
            0,
            vec![true, false],
            vec![vec![0, 1, 1, 0], vec![1, 1, 1, 1]],
        )
    }

    #[test]
    fn from_dfa_preserves_language() {
        let d = tracks_equal();
        let n = Nfa::from_dfa(&d);
        for word in [vec![], vec![0b00, 0b11], vec![0b01], vec![0b10, 0b00]] {
            assert_eq!(d.accepts(&word), n.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn determinize_inverts_from_dfa() {
        let d = tracks_equal();
        let back = Nfa::from_dfa(&d).determinize();
        assert!(back.equivalent(&d));
    }

    #[test]
    fn projection_makes_track_unconstrained() {
        // Projecting track 1 out of "track0 = track1" leaves the full language over
        // track 0 (for every choice of track 0 there is a matching track 1).
        let d = tracks_equal();
        let projected = Nfa::from_dfa(&d).project(1).determinize();
        assert!(projected.accepts(&[0b00, 0b01]));
        assert!(projected.accepts(&[0b01, 0b00]));
        assert!(projected.equivalent(&Dfa::all(2)));
    }

    #[test]
    fn projection_of_unsatisfiable_constraint_stays_empty() {
        // "track0 differs from track1 at every position AND track0 equals track1 at every
        // position" is empty for non-empty words; projection cannot create words.
        let eq = tracks_equal();
        let neq_everywhere = Dfa::new(
            2,
            0,
            vec![true, false],
            vec![vec![1, 0, 0, 1], vec![1, 1, 1, 1]],
        );
        let conj = eq.intersect(&neq_everywhere);
        let projected = Nfa::from_dfa(&conj).project(0).determinize();
        // Only the empty word survives.
        assert!(projected.accepts(&[]));
        assert!(!projected.accepts(&[0b00]));
        assert!(!projected.accepts(&[0b01]));
    }

    #[test]
    fn determinization_handles_genuine_nondeterminism() {
        // NFA over 1 track accepting words whose last symbol is 1.
        let mut trans = vec![vec![BTreeSet::new(); 2]; 2];
        trans[0][0] = BTreeSet::from([0]);
        trans[0][1] = BTreeSet::from([0, 1]);
        let n = Nfa::new(1, BTreeSet::from([0]), vec![false, true], trans);
        let d = n.determinize();
        assert!(d.accepts(&[0, 1]));
        assert!(!d.accepts(&[1, 0]));
        assert!(!d.accepts(&[]));
        assert_eq!(d.num_tracks(), 1);
    }

    #[test]
    #[should_panic(expected = "track out of range")]
    fn projecting_missing_track_panics() {
        let d = tracks_equal();
        let _ = Nfa::from_dfa(&d).project(5);
    }
}
