//! # jahob-automata
//!
//! Explicit-state finite automata over multi-track binary alphabets: the substrate for
//! the WS1S (monadic second-order logic over finite strings) decision procedure in
//! `jahob-mona`, which plays the role of MONA in the Jahob reproduction (§6.4 of
//! *Full Functional Verification of Linked Data Structures*, PLDI 2008). See
//! `docs/ARCHITECTURE.md` for the crate's place in the 12-crate graph.
//!
//! Words assign a bit to each of `k` tracks at every position; a symbol is an integer in
//! `0..2^k`. Deterministic automata ([`Dfa`]) support complement, product (intersection
//! and union), emptiness with witness extraction, minimisation and the "zero extension"
//! closure needed after quantifier projection. Nondeterministic automata ([`Nfa`])
//! support track projection (existential quantification) and subset-construction
//! determinisation.
//!
//! # Example
//!
//! ```
//! use jahob_automata::{Dfa, Nfa};
//!
//! // Over two tracks, "the two tracks agree at every position".
//! let equal = Dfa::new(2, 0, vec![true, false],
//!                      vec![vec![0, 1, 1, 0], vec![1, 1, 1, 1]]);
//! // Existentially quantifying one track leaves the universal language.
//! let projected = Nfa::from_dfa(&equal).project(1).determinize();
//! assert!(projected.equivalent(&Dfa::all(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfa;
pub mod nfa;

pub use dfa::{Dfa, State};
pub use nfa::Nfa;
