//! Property-based tests of the automata algebra.

use jahob_automata::{Dfa, Nfa};
use proptest::prelude::*;

/// A random complete DFA over `tracks` tracks with up to `max_states` states.
fn arb_dfa(tracks: usize, max_states: usize) -> impl Strategy<Value = Dfa> {
    let symbols = 1usize << tracks;
    (1..=max_states).prop_flat_map(move |n| {
        (
            proptest::collection::vec(prop::bool::ANY, n),
            proptest::collection::vec(proptest::collection::vec(0..n, symbols), n),
        )
            .prop_map(move |(accepting, trans)| Dfa::new(tracks, 0, accepting, trans))
    })
}

fn arb_word(tracks: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..(1usize << tracks), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Complement flips acceptance pointwise.
    #[test]
    fn complement_is_pointwise_negation(d in arb_dfa(2, 5), w in arb_word(2)) {
        prop_assert_eq!(d.accepts(&w), !d.complement().accepts(&w));
    }

    /// Product constructions agree with the boolean combination of acceptance.
    #[test]
    fn products_match_boolean_semantics(a in arb_dfa(2, 4), b in arb_dfa(2, 4), w in arb_word(2)) {
        prop_assert_eq!(a.intersect(&b).accepts(&w), a.accepts(&w) && b.accepts(&w));
        prop_assert_eq!(a.union(&b).accepts(&w), a.accepts(&w) || b.accepts(&w));
    }

    /// Minimisation preserves the language.
    #[test]
    fn minimization_preserves_language(d in arb_dfa(1, 6), w in arb_word(1)) {
        let m = d.minimize();
        prop_assert!(m.num_states() <= d.num_states());
        prop_assert_eq!(d.accepts(&w), m.accepts(&w));
        prop_assert!(d.equivalent(&m));
    }

    /// Determinising the NFA view of a DFA gives back the same language, and emptiness
    /// agrees with witness extraction.
    #[test]
    fn determinize_roundtrip_and_emptiness(d in arb_dfa(2, 5), w in arb_word(2)) {
        let back = Nfa::from_dfa(&d).determinize();
        prop_assert_eq!(d.accepts(&w), back.accepts(&w));
        match d.shortest_accepted() {
            Some(witness) => prop_assert!(d.accepts(&witness)),
            None => prop_assert!(d.is_empty()),
        }
    }

    /// A language is always a subset of its projection (existential quantification can
    /// only add words).
    #[test]
    fn projection_only_grows_languages(d in arb_dfa(2, 4), w in arb_word(2)) {
        let projected = Nfa::from_dfa(&d).project(0).determinize();
        if d.accepts(&w) {
            prop_assert!(projected.accepts(&w));
        }
    }
}
