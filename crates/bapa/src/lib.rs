//! # jahob-bapa
//!
//! The BAPA decision procedure of the Jahob reproduction: quantifier-free **B**oolean
//! **A**lgebra of sets with **P**resburger **A**rithmetic cardinality constraints
//! (§6.5 of *Full Functional Verification of Linked Data Structures*, PLDI 2008;
//! Kuncak–Nguyen–Rinard, CADE'05/CADE'07).
//!
//! The procedure works on sequents whose atoms talk about object sets (`Un`, `Int`,
//! set difference, `{}`, finite-set displays of object variables), their cardinalities
//! and linear integer arithmetic. It decides validity by the classic Venn-region
//! reduction: for the `n` set variables occurring in the sequent, introduce one
//! non-negative integer unknown per Venn region (2^n of them), translate every set
//! atom into linear constraints over sums of region cardinalities, and hand the
//! negation to the Presburger solver in `jahob-arith`. An `Unsat` answer for the
//! negation proves the sequent.
//!
//! Quantified assumptions are dropped before translation (BAPA is quantifier-free;
//! an `inst`-hinted obligation is decided from its ground instance — see
//! `jahob_provers::inst` and `docs/SPEC_LANGUAGE.md`), and
//! atoms outside the BAPA fragment are approximated away by polarity (Figure 14), so
//! the prover is sound and simply declines sequents it cannot strengthen usefully.
//!
//! # Example
//!
//! ```
//! use jahob_bapa::{prove_sequent, BapaOptions};
//! use jahob_logic::{parse_form, Sequent};
//!
//! // The sized-list invariant: inserting a fresh element grows the cardinality by one.
//! let sequent = Sequent::new(
//!     vec![
//!         parse_form("size = card content").unwrap(),
//!         parse_form("x ~: content").unwrap(),
//!         parse_form("content1 = content Un {x}").unwrap(),
//!     ],
//!     parse_form("size + 1 = card content1").unwrap(),
//! );
//! assert!(prove_sequent(&sequent, &BapaOptions::default()).proved);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jahob_arith::{check_with_limits, Constraint, Limits, LinExpr, Outcome, VarId};
use jahob_logic::approx::{approximate_implication, Polarity};
use jahob_logic::form::{Binder, Const, Form};
use jahob_logic::simplify::{nnf, simplify};
use jahob_logic::Sequent;
use std::collections::BTreeMap;

/// Options for the BAPA prover.
#[derive(Debug, Clone)]
pub struct BapaOptions {
    /// Maximum number of distinct set variables (the reduction introduces `2^n` Venn
    /// regions, so this must stay small).
    pub max_set_variables: usize,
    /// Limits for the underlying Presburger solver.
    pub arith_limits: Limits,
}

impl Default for BapaOptions {
    fn default() -> Self {
        BapaOptions {
            max_set_variables: 8,
            arith_limits: Limits::default(),
        }
    }
}

/// Result of a BAPA proof attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BapaResult {
    /// `true` if the sequent was proved valid.
    pub proved: bool,
    /// `true` if the sequent was (at least partially) inside the BAPA fragment.
    pub applicable: bool,
    /// Number of set variables in the reduction.
    pub set_variables: usize,
}

/// Attempts to prove a sequent using the BAPA decision procedure.
pub fn prove_sequent(sequent: &Sequent, options: &BapaOptions) -> BapaResult {
    let sequent = sequent.without_comments();
    // Approximate into the BAPA fragment. Quantified assumptions are dropped first:
    // BAPA is quantifier-free, the constraint builder would reject the whole sequent
    // on meeting one, and discarding an assumption only weakens the premise set (it
    // can never prove more) — so a sequent whose universal assumption was specialised
    // by a `by inst` hint is decided from the ground instance alone.
    let assumptions: Vec<Form> = sequent
        .assumptions
        .iter()
        .map(simplify)
        .filter(|a| !a.contains_binder(Binder::Forall) && !a.contains_binder(Binder::Exists))
        .collect();
    let goal = simplify(&sequent.goal);
    let (assumptions, goal) = approximate_implication(&assumptions, &goal, &bapa_atom_filter);
    if goal.is_false() && assumptions.is_empty() {
        // Nothing useful survived approximation: the goal can only be established from
        // contradictory assumptions, and none are left.
        return BapaResult {
            proved: false,
            applicable: false,
            set_variables: 0,
        };
    }

    // Collect set variables (and singleton elements) mentioned. Scanning is iterated so
    // that a bare variable equated with a set expression in one atom is recognised as a
    // set when it appears first in another atom.
    let mut env = VennEnv::default();
    let mut ok = true;
    for _pass in 0..3 {
        for a in assumptions.iter().chain(std::iter::once(&goal)) {
            ok &= env.scan(a);
        }
    }
    if !ok || env.sets.len() > options.max_set_variables {
        return BapaResult {
            proved: false,
            applicable: false,
            set_variables: env.sets.len(),
        };
    }

    // Build constraints for: assumptions AND NOT goal, as a small disjunction of
    // conjunctive branches (disequalities and disjunctions split into branches). The
    // sequent is proved when every branch is unsatisfiable.
    let mut builder = ConstraintBuilder::new(env);
    let mut branches = vec![builder.base_constraints()];
    let mut supported = true;
    for a in &assumptions {
        supported &= builder.add_formula(a, &mut branches);
    }
    supported &= builder.add_formula(&nnf(&Form::not(goal.clone())), &mut branches);
    if !supported || branches.len() > MAX_BRANCHES {
        return BapaResult {
            proved: false,
            applicable: false,
            set_variables: builder.env.sets.len(),
        };
    }
    let proved = branches
        .iter()
        .all(|b| check_with_limits(b, options.arith_limits) == Outcome::Unsat);
    BapaResult {
        proved,
        applicable: true,
        set_variables: builder.env.sets.len(),
    }
}

/// Maximum number of disjunctive branches explored by the reduction.
const MAX_BRANCHES: usize = 64;

/// Atoms representable in the BAPA fragment: cardinalities, set equalities/inclusions/
/// memberships over set variables and set-algebra expressions, and linear arithmetic.
fn bapa_atom_filter(atom: &Form, _polarity: Polarity) -> Option<Form> {
    if is_bapa_atom(atom) {
        Some(atom.clone())
    } else {
        None
    }
}

fn is_bapa_atom(atom: &Form) -> bool {
    match atom {
        Form::App(head, args) => match head.as_ref() {
            Form::Const(Const::Eq)
            | Form::Const(Const::Lt)
            | Form::Const(Const::LtEq)
            | Form::Const(Const::Gt)
            | Form::Const(Const::GtEq) => args.iter().all(is_bapa_term),
            Form::Const(Const::Elem) => {
                args.len() == 2 && is_element(&args[0]) && is_set_expr(&args[1])
            }
            Form::Const(Const::SubsetEq) | Form::Const(Const::Subset) => {
                args.iter().all(is_set_expr)
            }
            _ => false,
        },
        _ => false,
    }
}

fn is_bapa_term(t: &Form) -> bool {
    is_int_term(t) || is_set_expr(t)
}

fn is_int_term(t: &Form) -> bool {
    match t {
        Form::Var(_) | Form::Const(Const::IntLit(_)) => true,
        Form::App(head, args) => match head.as_ref() {
            Form::Const(Const::Plus) | Form::Const(Const::Minus) | Form::Const(Const::UMinus) => {
                args.iter().all(is_int_term)
            }
            Form::Const(Const::Card) => args.len() == 1 && is_set_expr(&args[0]),
            _ => false,
        },
        _ => false,
    }
}

fn is_set_expr(t: &Form) -> bool {
    match t {
        Form::Var(_) | Form::Const(Const::EmptySet) | Form::Const(Const::UnivSet) => true,
        Form::App(head, args) => match head.as_ref() {
            Form::Const(Const::Union)
            | Form::Const(Const::Inter)
            | Form::Const(Const::Diff)
            | Form::Const(Const::Minus) => args.iter().all(is_set_expr),
            Form::Const(Const::FiniteSet) => args.iter().all(is_element),
            _ => false,
        },
        _ => false,
    }
}

fn is_element(t: &Form) -> bool {
    matches!(t, Form::Var(_) | Form::Const(Const::Null))
}

/// The environment of the Venn-region reduction: which names denote sets and which
/// denote single elements. A variable used both as a set (in set position) and as an
/// integer is rejected.
#[derive(Debug, Clone, Default)]
struct VennEnv {
    /// Set variables, in first-seen order. Singleton elements `x` are modelled as the
    /// set `{x}` with an additional `card = 1` constraint, per the standard reduction.
    sets: Vec<String>,
    singletons: Vec<String>,
    ints: Vec<String>,
}

impl VennEnv {
    fn scan(&mut self, f: &Form) -> bool {
        match f {
            Form::App(head, args) => {
                if let Form::Const(c) = head.as_ref() {
                    match c {
                        Const::Elem if args.len() == 2 => {
                            return self.scan_element(&args[0]) && self.scan_set(&args[1]);
                        }
                        Const::SubsetEq | Const::Subset => {
                            return args.iter().all(|a| self.scan_set(a));
                        }
                        Const::Eq => {
                            // If either side is definitely a set, both sides are sets.
                            let definitely_set = |t: &Form, env: &VennEnv| {
                                (is_set_expr(t) && !matches!(t, Form::Var(_)))
                                    || matches!(t, Form::Var(v) if env.sets.contains(v))
                            };
                            if args.iter().any(|a| definitely_set(a, self)) {
                                return args.iter().all(|a| self.scan_set(a));
                            }
                            return args.iter().all(|a| self.scan_term(a));
                        }
                        Const::Lt | Const::LtEq | Const::Gt | Const::GtEq => {
                            return args.iter().all(|a| self.scan_term(a));
                        }
                        Const::And | Const::Or | Const::Not | Const::Impl | Const::Iff => {
                            return args.iter().all(|a| self.scan(a));
                        }
                        _ => {}
                    }
                }
                args.iter().all(|a| self.scan(a))
            }
            _ => true,
        }
    }

    fn scan_term(&mut self, t: &Form) -> bool {
        if is_set_expr(t) && !matches!(t, Form::Var(_)) {
            return self.scan_set(t);
        }
        match t {
            Form::Var(v) => {
                // Ambiguous: a bare variable compared with `=` could be a set or an
                // integer. Treat it as a set if it is already known as one, otherwise as
                // an integer (a variable used inside `card` or a set operation will have
                // been registered as a set by the time atoms are translated).
                if self.sets.contains(v) || self.singletons.contains(v) {
                    true
                } else {
                    if !self.ints.contains(v) {
                        self.ints.push(v.clone());
                    }
                    true
                }
            }
            Form::Const(Const::IntLit(_)) | Form::Const(Const::Null) => true,
            Form::App(head, args) => match head.as_ref() {
                Form::Const(Const::Plus)
                | Form::Const(Const::Minus)
                | Form::Const(Const::UMinus) => args.iter().all(|a| self.scan_term(a)),
                Form::Const(Const::Card) => args.len() == 1 && self.scan_set(&args[0]),
                _ => false,
            },
            _ => false,
        }
    }

    fn scan_set(&mut self, t: &Form) -> bool {
        match t {
            Form::Var(v) => {
                if !self.sets.contains(v) {
                    self.sets.push(v.clone());
                }
                true
            }
            Form::Const(Const::EmptySet) | Form::Const(Const::UnivSet) => true,
            Form::App(head, args) => match head.as_ref() {
                Form::Const(Const::Union)
                | Form::Const(Const::Inter)
                | Form::Const(Const::Diff)
                | Form::Const(Const::Minus) => args.iter().all(|a| self.scan_set(a)),
                Form::Const(Const::FiniteSet) => args.iter().all(|a| self.scan_element(a)),
                _ => false,
            },
            _ => false,
        }
    }

    fn scan_element(&mut self, t: &Form) -> bool {
        match t {
            Form::Var(v) => {
                if !self.singletons.contains(v) && !self.sets.contains(v) {
                    self.singletons.push(v.clone());
                }
                if !self.sets.contains(v) {
                    // The element is modelled as the singleton set named after it.
                    self.sets.push(v.clone());
                }
                true
            }
            Form::Const(Const::Null) => {
                if !self.sets.contains(&"$null".to_string()) {
                    self.sets.push("$null".to_string());
                    self.singletons.push("$null".to_string());
                }
                true
            }
            _ => false,
        }
    }
}

/// Builds Presburger constraints over Venn-region cardinalities.
struct ConstraintBuilder {
    env: VennEnv,
    /// Integer variables: Venn regions first, then the integer program variables.
    int_vars: BTreeMap<String, VarId>,
    next_var: VarId,
}

impl ConstraintBuilder {
    fn new(env: VennEnv) -> Self {
        let regions = 1usize << env.sets.len();
        ConstraintBuilder {
            env,
            int_vars: BTreeMap::new(),
            next_var: regions as VarId,
        }
    }

    /// One non-negative unknown per Venn region; singleton sets have cardinality one.
    fn base_constraints(&mut self) -> Vec<Constraint> {
        let n = self.env.sets.len();
        let mut out = Vec::new();
        for region in 0..(1u32 << n) {
            out.push(Constraint::non_negative(region));
        }
        let singles = self.env.singletons.clone();
        for name in singles {
            let denotation = SetDenotation::of_var(&self.env, &name);
            let e = self.set_cardinality(&denotation);
            out.push(Constraint::eq(e, LinExpr::constant(1)));
        }
        out
    }

    fn int_var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.int_vars.get(name) {
            return v;
        }
        let v = self.next_var;
        self.next_var += 1;
        self.int_vars.insert(name.to_string(), v);
        v
    }

    /// Adds the constraints of a BAPA formula to every branch. Disjunctions (including
    /// the case splits arising from negated equalities) multiply the branch set.
    /// Returns `false` if the formula is unsupported.
    fn add_formula(&mut self, f: &Form, branches: &mut Vec<Vec<Constraint>>) -> bool {
        let f = nnf(f);
        self.add_nnf(&f, branches)
    }

    fn add_nnf(&mut self, f: &Form, branches: &mut Vec<Vec<Constraint>>) -> bool {
        if f.is_true() {
            return true;
        }
        if f.is_false() {
            // An impossible branch: 1 <= 0.
            for b in branches.iter_mut() {
                b.push(Constraint::le(LinExpr::constant(1), LinExpr::zero()));
            }
            return true;
        }
        if let Some(args) = f.as_app_of(&Const::And) {
            return args.iter().all(|a| self.add_nnf(a, branches));
        }
        if let Some(args) = f.as_app_of(&Const::Or) {
            let mut all = Vec::new();
            for a in args {
                let mut copy = branches.clone();
                if !self.add_nnf(a, &mut copy) {
                    return false;
                }
                all.extend(copy);
            }
            if all.len() > MAX_BRANCHES {
                return false;
            }
            *branches = all;
            return true;
        }
        if let Some(inner) = f.as_negation() {
            return self.add_atom(inner, false, branches);
        }
        self.add_atom(f, true, branches)
    }

    /// Pushes a constraint onto every branch.
    fn push_all(branches: &mut [Vec<Constraint>], c: Constraint) {
        for b in branches.iter_mut() {
            b.push(c.clone());
        }
    }

    fn add_atom(
        &mut self,
        atom: &Form,
        positive: bool,
        branches: &mut Vec<Vec<Constraint>>,
    ) -> bool {
        let Form::App(head, args) = atom else {
            return false;
        };
        let Form::Const(c) = head.as_ref() else {
            return false;
        };
        match (c, args.as_slice()) {
            (Const::Elem, [e, s]) if positive => {
                // {e} subseteq s  :  card({e} \ s) = 0
                let se = SetDenotation::of_form(&self.env, e);
                let ss = SetDenotation::of_form(&self.env, s);
                let diff = se.diff(&ss);
                let card = self.set_cardinality(&diff);
                Self::push_all(branches, Constraint::eq(card, LinExpr::zero()));
                true
            }
            (Const::Elem, [e, s]) => {
                // not (e : s)  :  card({e} Int s) = 0
                let se = SetDenotation::of_form(&self.env, e);
                let ss = SetDenotation::of_form(&self.env, s);
                let inter = se.inter(&ss);
                let card = self.set_cardinality(&inter);
                Self::push_all(branches, Constraint::eq(card, LinExpr::zero()));
                true
            }
            (Const::SubsetEq, [a, b]) if positive => {
                let sa = SetDenotation::of_form(&self.env, a);
                let sb = SetDenotation::of_form(&self.env, b);
                let card = self.set_cardinality(&sa.diff(&sb));
                Self::push_all(branches, Constraint::eq(card, LinExpr::zero()));
                true
            }
            (Const::Eq, [l, r]) => {
                if is_set_expr(l)
                    && is_set_expr(r)
                    && (self.is_known_set(l) || self.is_known_set(r))
                {
                    let sl = SetDenotation::of_form(&self.env, l);
                    let sr = SetDenotation::of_form(&self.env, r);
                    let lr = self.set_cardinality(&sl.diff(&sr));
                    let rl = self.set_cardinality(&sr.diff(&sl));
                    if positive {
                        // Symmetric difference empty.
                        Self::push_all(branches, Constraint::eq(lr, LinExpr::zero()));
                        Self::push_all(branches, Constraint::eq(rl, LinExpr::zero()));
                    } else {
                        // Sets differ: some element is in exactly one of them.
                        let mut with_left = branches.clone();
                        Self::push_all(&mut with_left, Constraint::ge(lr, LinExpr::constant(1)));
                        Self::push_all(branches, Constraint::ge(rl, LinExpr::constant(1)));
                        branches.extend(with_left);
                        if branches.len() > MAX_BRANCHES {
                            return false;
                        }
                    }
                    true
                } else {
                    let (Some(el), Some(er)) = (self.int_term(l), self.int_term(r)) else {
                        return false;
                    };
                    if positive {
                        Self::push_all(branches, Constraint::eq(el, er));
                    } else {
                        // l != r splits into l < r and l > r.
                        let mut with_lt = branches.clone();
                        Self::push_all(&mut with_lt, Constraint::lt(el.clone(), er.clone()));
                        Self::push_all(branches, Constraint::gt(el, er));
                        branches.extend(with_lt);
                        if branches.len() > MAX_BRANCHES {
                            return false;
                        }
                    }
                    true
                }
            }
            (Const::LtEq, [l, r]) | (Const::GtEq, [r, l]) => {
                let (Some(el), Some(er)) = (self.int_term(l), self.int_term(r)) else {
                    return false;
                };
                Self::push_all(
                    branches,
                    if positive {
                        Constraint::le(el, er)
                    } else {
                        Constraint::gt(el, er)
                    },
                );
                true
            }
            (Const::Lt, [l, r]) | (Const::Gt, [r, l]) => {
                let (Some(el), Some(er)) = (self.int_term(l), self.int_term(r)) else {
                    return false;
                };
                Self::push_all(
                    branches,
                    if positive {
                        Constraint::lt(el, er)
                    } else {
                        Constraint::ge(el, er)
                    },
                );
                true
            }
            _ => false,
        }
    }

    fn is_known_set(&self, f: &Form) -> bool {
        match f {
            Form::Var(v) => self.env.sets.contains(v),
            Form::App(_, _) | Form::Const(Const::EmptySet) | Form::Const(Const::UnivSet) => {
                is_set_expr(f)
            }
            _ => false,
        }
    }

    fn int_term(&mut self, t: &Form) -> Option<LinExpr> {
        match t {
            Form::Const(Const::IntLit(n)) => Some(LinExpr::constant(*n as i128)),
            Form::Var(v) => {
                if self.env.sets.contains(v) {
                    // A set variable in integer position is outside the fragment.
                    None
                } else {
                    Some(LinExpr::var(self.int_var(v)))
                }
            }
            Form::App(head, args) => match (head.as_ref(), args.as_slice()) {
                (Form::Const(Const::Plus), [a, b]) => {
                    Some(self.int_term(a)?.add(&self.int_term(b)?))
                }
                (Form::Const(Const::Minus), [a, b]) => {
                    Some(self.int_term(a)?.sub(&self.int_term(b)?))
                }
                (Form::Const(Const::UMinus), [a]) => Some(self.int_term(a)?.scale(-1)),
                (Form::Const(Const::Card), [s]) => {
                    let d = SetDenotation::of_form(&self.env, s);
                    Some(self.set_cardinality(&d))
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// The cardinality of a set denotation as the sum of its Venn regions.
    fn set_cardinality(&self, set: &SetDenotation) -> LinExpr {
        let mut e = LinExpr::zero();
        for region in &set.regions {
            e.add_term(*region, 1);
        }
        e
    }
}

/// A set denotation: the collection of Venn regions (bitmask-indexed integer variables)
/// the set covers.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SetDenotation {
    regions: Vec<VarId>,
}

impl SetDenotation {
    fn universe(env: &VennEnv) -> Self {
        SetDenotation {
            regions: (0..(1u32 << env.sets.len())).collect(),
        }
    }

    fn empty() -> Self {
        SetDenotation {
            regions: Vec::new(),
        }
    }

    fn of_var(env: &VennEnv, name: &str) -> Self {
        let Some(idx) = env.sets.iter().position(|s| s == name) else {
            return SetDenotation::empty();
        };
        let bit = 1u32 << idx;
        SetDenotation {
            regions: (0..(1u32 << env.sets.len()))
                .filter(|r| r & bit != 0)
                .collect(),
        }
    }

    fn of_form(env: &VennEnv, f: &Form) -> Self {
        match f {
            Form::Var(v) => SetDenotation::of_var(env, v),
            Form::Const(Const::Null) => SetDenotation::of_var(env, "$null"),
            Form::Const(Const::EmptySet) => SetDenotation::empty(),
            Form::Const(Const::UnivSet) => SetDenotation::universe(env),
            Form::App(head, args) => match head.as_ref() {
                Form::Const(Const::Union) => args
                    .iter()
                    .map(|a| SetDenotation::of_form(env, a))
                    .fold(SetDenotation::empty(), |acc, s| acc.union(&s)),
                Form::Const(Const::Inter) => args
                    .iter()
                    .map(|a| SetDenotation::of_form(env, a))
                    .fold(SetDenotation::universe(env), |acc, s| acc.inter(&s)),
                Form::Const(Const::Diff) | Form::Const(Const::Minus) => {
                    let first = SetDenotation::of_form(env, &args[0]);
                    args[1..]
                        .iter()
                        .fold(first, |acc, a| acc.diff(&SetDenotation::of_form(env, a)))
                }
                Form::Const(Const::FiniteSet) => args
                    .iter()
                    .map(|a| SetDenotation::of_form(env, a))
                    .fold(SetDenotation::empty(), |acc, s| acc.union(&s)),
                _ => SetDenotation::empty(),
            },
            _ => SetDenotation::empty(),
        }
    }

    fn union(&self, other: &Self) -> Self {
        let mut regions = self.regions.clone();
        for r in &other.regions {
            if !regions.contains(r) {
                regions.push(*r);
            }
        }
        regions.sort_unstable();
        SetDenotation { regions }
    }

    fn inter(&self, other: &Self) -> Self {
        SetDenotation {
            regions: self
                .regions
                .iter()
                .copied()
                .filter(|r| other.regions.contains(r))
                .collect(),
        }
    }

    fn diff(&self, other: &Self) -> Self {
        SetDenotation {
            regions: self
                .regions
                .iter()
                .copied()
                .filter(|r| !other.regions.contains(r))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::parse_form;

    fn seq(assumptions: &[&str], goal: &str) -> Sequent {
        Sequent::new(
            assumptions
                .iter()
                .map(|a| parse_form(a).expect("parse"))
                .collect(),
            parse_form(goal).expect("parse"),
        )
    }

    fn proves(assumptions: &[&str], goal: &str) -> bool {
        prove_sequent(&seq(assumptions, goal), &BapaOptions::default()).proved
    }

    #[test]
    fn proves_cardinality_of_insertion() {
        // The Figure 6 sized-list obligation: size invariant is preserved by addNew.
        assert!(proves(
            &[
                "size = card content",
                "x ~: content",
                "content1 = content Un {x}"
            ],
            "size + 1 = card content1"
        ));
    }

    #[test]
    fn does_not_prove_insertion_without_freshness() {
        // Without x ~: content the cardinality might not grow.
        assert!(!proves(
            &["size = card content", "content1 = content Un {x}"],
            "size + 1 = card content1"
        ));
    }

    #[test]
    fn proves_cardinality_monotonicity() {
        assert!(proves(&["a subseteq b"], "card a <= card b"));
        assert!(proves(&[], "card (a Int b) <= card a"));
        assert!(!proves(&[], "card a <= card (a Int b)"));
    }

    #[test]
    fn proves_emptiness_reasoning() {
        assert!(proves(&["content = {}"], "card content = 0"));
        assert!(proves(&["card content = 0", "x : content"], "1 <= 0"));
        assert!(proves(&[], "card {} = 0"));
    }

    #[test]
    fn proves_non_negativity_of_cardinality() {
        assert!(proves(&["size = card content"], "0 <= size"));
    }

    #[test]
    fn proves_membership_and_subset_interactions() {
        assert!(proves(&["x : a", "a subseteq b"], "x : b"));
        assert!(proves(&["x : a"], "1 <= card a"));
        assert!(!proves(&["x : a Un b"], "x : a"));
    }

    #[test]
    fn declines_sequents_outside_the_fragment() {
        // Reachability atoms are outside BAPA; they are approximated away, so the goal
        // cannot be established from them.
        let r = prove_sequent(
            &seq(&["rtrancl_pt (% u v. u..next = v) root x"], "x ~= root"),
            &BapaOptions::default(),
        );
        assert!(!r.proved);
        // A goal mentioning tree shape only is entirely outside the fragment.
        let r2 = prove_sequent(
            &seq(&["tree [Node.left]"], "tree [Node.left]"),
            &BapaOptions::default(),
        );
        assert!(!r2.applicable);
    }

    #[test]
    fn respects_set_variable_limit() {
        let opts = BapaOptions {
            max_set_variables: 2,
            ..BapaOptions::default()
        };
        let r = prove_sequent(
            &seq(
                &[],
                "card (a Un b Un c Un d) <= card a + card b + card c + card d",
            ),
            &opts,
        );
        assert!(!r.applicable);
    }

    #[test]
    fn proves_union_cardinality_bound() {
        assert!(proves(&[], "card (a Un b) <= card a + card b"));
        assert!(proves(
            &["card (a Int b) = 0"],
            "card (a Un b) = card a + card b"
        ));
    }
}
