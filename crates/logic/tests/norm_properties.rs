//! Property-based tests of the canonicalisation and definitional-inlining pass used by
//! the syntactic prover and the dispatcher (§5.3 / §6.1).

use jahob_logic::form::Form;
use jahob_logic::norm::{
    canonicalize, definition_substitution, inline_definitions, sort_commutative,
};
use jahob_logic::Sequent;
use proptest::prelude::*;

/// Small ground terms: variables, `null`, singletons and unions over them.
fn arb_term() -> impl Strategy<Value = Form> {
    let leaf = prop_oneof![
        (0..4u8).prop_map(|i| Form::var(format!("v{i}"))),
        Just(Form::null()),
        Just(Form::empty_set()),
        (0..4u8).prop_map(|i| Form::singleton(Form::var(format!("v{i}")))),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::union(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::inter(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::plus(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonicalisation is idempotent.
    #[test]
    fn sort_commutative_is_idempotent(t in arb_term()) {
        let once = sort_commutative(&t);
        prop_assert_eq!(sort_commutative(&once), once.clone());
        let eq = Form::eq(t.clone(), t);
        prop_assert!(canonicalize(&eq).is_true());
    }

    /// Swapping the operands of commutative operators does not change the canonical form.
    #[test]
    fn commuted_operands_canonicalise_identically(a in arb_term(), b in arb_term()) {
        prop_assert_eq!(
            sort_commutative(&Form::union(a.clone(), b.clone())),
            sort_commutative(&Form::union(b.clone(), a.clone()))
        );
        prop_assert_eq!(
            sort_commutative(&Form::plus(a.clone(), b.clone())),
            sort_commutative(&Form::plus(b.clone(), a.clone()))
        );
        prop_assert_eq!(
            sort_commutative(&Form::eq(a.clone(), b.clone())),
            sort_commutative(&Form::eq(b, a))
        );
    }

    /// Reassociating a union chain does not change the canonical form, and the
    /// canonicalised equality of two permutations of the same operands is `True`.
    #[test]
    fn union_chains_are_ac_normalised(mut ops in proptest::collection::vec(arb_term(), 2..5)) {
        let left_nested = ops
            .clone()
            .into_iter()
            .reduce(Form::union)
            .expect("at least two operands");
        ops.reverse();
        let right_nested = ops
            .into_iter()
            .reduce(|acc, next| Form::union(next, acc))
            .expect("at least two operands");
        prop_assert_eq!(
            sort_commutative(&left_nested),
            sort_commutative(&right_nested)
        );
        prop_assert!(canonicalize(&Form::eq(left_nested, right_nested)).is_true());
    }

    /// Definitional chains over generated variables collapse to the underlying value, and
    /// the inlined sequent proves copy-propagation goals by reflexivity.
    #[test]
    fn definition_chains_collapse(value in arb_term(), len in 1usize..5) {
        let mut assumptions = vec![Form::eq(Form::var("asg$0".to_string()), value.clone())];
        for i in 1..len {
            assumptions.push(Form::eq(
                Form::var(format!("asg${i}")),
                Form::var(format!("asg${}", i - 1)),
            ));
        }
        let last = format!("asg${}", len - 1);
        let sub = definition_substitution(&assumptions);
        prop_assert_eq!(sub.get(&last), Some(&value));

        let sequent = Sequent::new(assumptions, Form::eq(Form::var(last), value));
        let inlined = inline_definitions(&sequent);
        prop_assert!(inlined.goal.is_true());
        prop_assert!(inlined.assumptions.is_empty());
    }

    /// Inlining never invents new free variables: every variable of the result already
    /// occurs in the original sequent.
    #[test]
    fn inlining_does_not_invent_variables(value in arb_term()) {
        let sequent = Sequent::new(
            vec![
                Form::eq(Form::var("old$content"), Form::var("content")),
                Form::eq(Form::var("content_1"), value),
            ],
            Form::eq(Form::var("content_1"), Form::var("old$content")),
        );
        let original_vars = sequent.free_vars();
        let inlined = inline_definitions(&sequent);
        for v in inlined.free_vars() {
            prop_assert!(original_vars.contains(&v), "variable {v} appeared from nowhere");
        }
    }
}
