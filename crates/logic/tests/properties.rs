//! Property-based tests of the core logic data structures.

use jahob_logic::form::{Const, Form};
use jahob_logic::parser::parse_form;
use jahob_logic::simplify::{nnf, simplify};
use jahob_logic::subst::{free_vars, substitute_one};
use jahob_logic::types::Type;
use proptest::prelude::*;

/// A strategy for small propositional/relational formulas over a fixed variable pool.
fn arb_form() -> impl Strategy<Value = Form> {
    let atom = prop_oneof![
        Just(Form::tt()),
        Just(Form::ff()),
        (0..4u8).prop_map(|i| Form::var(format!("p{i}"))),
        (0..3u8, 0..3u8)
            .prop_map(|(a, b)| Form::eq(Form::var(format!("x{a}")), Form::var(format!("x{b}")))),
        (0..3u8).prop_map(|a| Form::elem(Form::var(format!("x{a}")), Form::var("s"))),
        (0..3u8).prop_map(|a| Form::cmp(Const::LtEq, Form::var(format!("i{a}")), Form::int(5))),
    ];
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::and(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::or(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::implies(a, b)),
            inner.clone().prop_map(Form::not),
            inner.clone().prop_map(|a| Form::forall("q", Type::Obj, a)),
        ]
    })
}

/// Evaluates a quantifier-free propositional abstraction of the formula: every
/// non-connective atom is looked up in `model` by its printed form.
fn eval(form: &Form, model: &dyn Fn(&Form) -> bool) -> bool {
    if let Form::App(head, args) = form {
        if let Form::Const(c) = head.as_ref() {
            match c {
                Const::And => return args.iter().all(|a| eval(a, model)),
                Const::Or => return args.iter().any(|a| eval(a, model)),
                Const::Not => return !eval(&args[0], model),
                Const::Impl => return !eval(&args[0], model) || eval(&args[1], model),
                Const::Iff => return eval(&args[0], model) == eval(&args[1], model),
                _ => {}
            }
        }
    }
    match form {
        Form::Const(Const::BoolLit(b)) => *b,
        other => model(other),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printing then parsing a formula yields a logically identical term (the printer and
    /// the parser agree on precedences).
    #[test]
    fn print_parse_roundtrip(f in arb_form()) {
        let printed = f.to_string();
        let reparsed = parse_form(&printed)
            .unwrap_or_else(|e| panic!("reparse failed for {printed:?}: {e}"));
        // Compare via printing again: binder type annotations may differ but syntax must
        // stabilise after one roundtrip.
        prop_assert_eq!(printed.clone(), reparsed.to_string());
    }

    /// Simplification preserves the propositional truth value of quantifier-free
    /// formulas under arbitrary atom assignments.
    #[test]
    fn simplify_preserves_truth(f in arb_form(), seed in 0u64..1024) {
        if f.contains_binder(jahob_logic::Binder::Forall) {
            return Ok(());
        }
        let model = |atom: &Form| {
            // Interpret reflexive equalities as true so the random model is consistent
            // with the theory-level rewrites the simplifier performs.
            if let Some((l, r)) = atom.as_eq() {
                if l == r {
                    return true;
                }
            }
            let mut h = std::collections::hash_map::DefaultHasher::new();
            use std::hash::{Hash, Hasher};
            atom.to_string().hash(&mut h);
            seed.hash(&mut h);
            h.finish().is_multiple_of(2)
        };
        prop_assert_eq!(eval(&f, &model), eval(&simplify(&f), &model));
    }

    /// Negation normal form preserves truth and eliminates implications.
    #[test]
    fn nnf_preserves_truth_and_shape(f in arb_form(), seed in 0u64..1024) {
        if f.contains_binder(jahob_logic::Binder::Forall) {
            return Ok(());
        }
        let n = nnf(&f);
        prop_assert!(!n.contains_const(&Const::Impl));
        prop_assert!(!n.contains_const(&Const::Iff));
        let model = |atom: &Form| {
            if let Some((l, r)) = atom.as_eq() {
                if l == r {
                    return true;
                }
            }
            let mut h = std::collections::hash_map::DefaultHasher::new();
            use std::hash::{Hash, Hasher};
            atom.to_string().hash(&mut h);
            seed.hash(&mut h);
            h.finish().is_multiple_of(2)
        };
        prop_assert_eq!(eval(&f, &model), eval(&n, &model));
    }

    /// Substituting a variable that does not occur free leaves the formula unchanged, and
    /// substitution removes the substituted variable from the free-variable set.
    #[test]
    fn substitution_respects_free_variables(f in arb_form()) {
        let untouched = substitute_one(&f, "not_present", &Form::int(7));
        prop_assert_eq!(untouched, f.clone());
        let fv = free_vars(&f);
        if let Some(v) = fv.iter().next() {
            let g = substitute_one(&f, v, &Form::var("replacement$"));
            prop_assert!(!free_vars(&g).contains(v) || v == "replacement$");
        }
    }
}
