//! Polarity-based formula approximation (Figure 14 of the paper).
//!
//! Each specialised prover accepts only a fragment of higher-order logic. To use such a
//! prover soundly, Jahob replaces subformulas outside the fragment with *stronger*
//! formulas: an unsupported atom in a positive position becomes `False`, and in a negative
//! position becomes `True`. Proving the approximation then implies the original formula.

use crate::form::{Binder, Const, Form};

/// The polarity of a subformula occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// The occurrence is positive (strengthening replaces it with `False`).
    Positive,
    /// The occurrence is negative (strengthening replaces it with `True`).
    Negative,
}

impl Polarity {
    /// Flips the polarity.
    pub fn flip(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
        }
    }

    /// The strongest formula representable at this polarity (used for unsupported atoms).
    pub fn strongest(self) -> Form {
        match self {
            Polarity::Positive => Form::ff(),
            Polarity::Negative => Form::tt(),
        }
    }
}

/// Approximates `form` by a logically stronger formula in which every atom is either
/// accepted by `translate_atom` (which may rewrite it) or replaced by the strongest
/// formula for its polarity.
///
/// `translate_atom` receives each atom (a subformula that is not a connective or a
/// quantifier) together with its polarity and returns:
///
/// * `Some(f)` — the atom is representable in the target fragment as `f` (must be
///   equivalent or appropriately stronger), or
/// * `None` — the atom is not representable and is approximated away.
///
/// Quantifiers are preserved; prover interfaces that cannot handle quantifiers apply
/// their own elimination before or after calling this function.
pub fn approximate(
    form: &Form,
    polarity: Polarity,
    translate_atom: &dyn Fn(&Form, Polarity) -> Option<Form>,
) -> Form {
    match form {
        Form::Const(Const::BoolLit(_)) => form.clone(),
        Form::App(fun, args) => {
            if let Form::Const(c) = fun.as_ref() {
                match (c, args.as_slice()) {
                    (Const::And, _) => {
                        return Form::and(
                            args.iter()
                                .map(|a| approximate(a, polarity, translate_atom))
                                .collect(),
                        )
                    }
                    (Const::Or, _) => {
                        return Form::or(
                            args.iter()
                                .map(|a| approximate(a, polarity, translate_atom))
                                .collect(),
                        )
                    }
                    (Const::Not, [f]) => {
                        return Form::not(approximate(f, polarity.flip(), translate_atom))
                    }
                    (Const::Impl, [l, r]) => {
                        return Form::implies(
                            approximate(l, polarity.flip(), translate_atom),
                            approximate(r, polarity, translate_atom),
                        )
                    }
                    (Const::Iff, [l, r]) => {
                        // Expand to implications so each side gets a definite polarity.
                        let expanded = Form::and(vec![
                            Form::implies(l.clone(), r.clone()),
                            Form::implies(r.clone(), l.clone()),
                        ]);
                        return approximate(&expanded, polarity, translate_atom);
                    }
                    (Const::Comment(label), [f]) => {
                        return Form::comment(
                            label.clone(),
                            approximate(f, polarity, translate_atom),
                        )
                    }
                    _ => {}
                }
            }
            translate_atom(form, polarity).unwrap_or_else(|| polarity.strongest())
        }
        Form::Binder(Binder::Forall, vars, body) => {
            Form::forall_many(vars.clone(), approximate(body, polarity, translate_atom))
        }
        Form::Binder(Binder::Exists, vars, body) => {
            Form::exists_many(vars.clone(), approximate(body, polarity, translate_atom))
        }
        _ => translate_atom(form, polarity).unwrap_or_else(|| polarity.strongest()),
    }
}

/// Approximates a sequent-shaped implication `assumptions --> goal`: assumptions sit in
/// negative positions (unsupported assumptions are simply dropped, i.e. become `True`),
/// the goal in a positive position.
pub fn approximate_implication(
    assumptions: &[Form],
    goal: &Form,
    translate_atom: &dyn Fn(&Form, Polarity) -> Option<Form>,
) -> (Vec<Form>, Form) {
    let approx_assumptions = assumptions
        .iter()
        .map(|a| approximate(a, Polarity::Negative, translate_atom))
        .filter(|a| !a.is_true())
        .collect();
    let approx_goal = approximate(goal, Polarity::Positive, translate_atom);
    (approx_assumptions, approx_goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn p(s: &str) -> Form {
        parse_form(s).expect("parse")
    }

    /// A toy fragment: only equalities are representable.
    fn only_equalities(f: &Form, _p: Polarity) -> Option<Form> {
        f.as_app_of(&Const::Eq).map(|_| f.clone())
    }

    #[test]
    fn unsupported_positive_atom_becomes_false() {
        let f = p("card s = n | x : s");
        // `card s = n` is an equality so it stays; `x : s` is unsupported.
        let g = approximate(&f, Polarity::Positive, &only_equalities);
        assert_eq!(g.to_string(), "card s = n");
    }

    #[test]
    fn unsupported_negative_atom_becomes_true_and_vanishes() {
        let f = p("x : s --> y = z");
        let g = approximate(&f, Polarity::Positive, &only_equalities);
        // The unsupported assumption is dropped, leaving a stronger formula.
        assert_eq!(g.to_string(), "y = z");
    }

    #[test]
    fn negation_flips_polarity() {
        let f = p("~(x : s)");
        let g = approximate(&f, Polarity::Positive, &only_equalities);
        // Inside the negation the membership is negative, so it becomes True, and the
        // overall formula becomes False (stronger than the original).
        assert_eq!(g, Form::ff());
    }

    #[test]
    fn quantifiers_are_preserved() {
        let f = p("ALL x. x = x | x : s");
        let g = approximate(&f, Polarity::Positive, &only_equalities);
        assert_eq!(g.to_string(), "ALL x. x = x");
    }

    #[test]
    fn iff_is_expanded_for_polarity() {
        let f = p("(x : s) <-> a = b");
        let g = approximate(&f, Polarity::Positive, &only_equalities);
        // One direction survives partially; result must not contain membership atoms.
        assert!(!g.contains_const(&Const::Elem));
    }

    #[test]
    fn approximate_implication_drops_unsupported_assumptions() {
        let assumptions = vec![p("x : s"), p("a = b")];
        let goal = p("a = b");
        let (asms, g) = approximate_implication(&assumptions, &goal, &only_equalities);
        assert_eq!(asms.len(), 1);
        assert_eq!(g, p("a = b"));
    }

    #[test]
    fn strongest_formulas_by_polarity() {
        assert_eq!(Polarity::Positive.strongest(), Form::ff());
        assert_eq!(Polarity::Negative.strongest(), Form::tt());
        assert_eq!(Polarity::Positive.flip(), Polarity::Negative);
    }
}
