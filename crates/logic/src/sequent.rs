//! Sequents: the unit of work of the integrated reasoning system.
//!
//! After splitting (§5.1), every verification condition becomes a list of sequents
//! (implications) `A1, ..., An ==> G`. Each sequent is proved independently, possibly by a
//! different prover (§5.2), and each carries the label trail accumulated by the splitter so
//! failures can be explained.

use crate::form::{Form, Ident};
use crate::simplify::strip_comments_deep;
use crate::subst::free_vars;
use std::collections::BTreeSet;
use std::fmt;

/// An implication `assumptions ==> goal` produced by splitting a verification condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequent {
    /// The assumptions (conjunctively).
    pub assumptions: Vec<Form>,
    /// The goal to be established.
    pub goal: Form,
    /// Labels accumulated by splitting (`comment` annotations on the path to the goal),
    /// used for error messages and `by`-hint assumption selection.
    pub labels: Vec<String>,
}

impl Sequent {
    /// Creates a sequent with no labels.
    pub fn new(assumptions: Vec<Form>, goal: Form) -> Self {
        Sequent {
            assumptions,
            goal,
            labels: Vec::new(),
        }
    }

    /// Creates a sequent that simply asserts `goal` with no assumptions.
    pub fn goal_only(goal: Form) -> Self {
        Sequent::new(Vec::new(), goal)
    }

    /// The sequent as a single implication formula.
    pub fn to_form(&self) -> Form {
        Form::implies(Form::and(self.assumptions.clone()), self.goal.clone())
    }

    /// Total size (node count) of the sequent; used for statistics and resource limits.
    pub fn size(&self) -> usize {
        self.assumptions.iter().map(Form::size).sum::<usize>() + self.goal.size()
    }

    /// All free variables of the sequent.
    pub fn free_vars(&self) -> BTreeSet<Ident> {
        let mut fv = free_vars(&self.goal);
        for a in &self.assumptions {
            fv.extend(free_vars(a));
        }
        fv
    }

    /// Returns a copy with all `comment` labels removed from assumptions and goal (the
    /// labels list is preserved).
    pub fn without_comments(&self) -> Sequent {
        Sequent {
            assumptions: self.assumptions.iter().map(strip_comments_deep).collect(),
            goal: strip_comments_deep(&self.goal),
            labels: self.labels.clone(),
        }
    }

    /// Returns the labels attached to each assumption (the outermost `comment` of each).
    pub fn assumption_labels(&self) -> Vec<Option<String>> {
        self.assumptions
            .iter()
            .map(|a| a.strip_comments().0.first().map(|s| s.to_string()))
            .collect()
    }

    /// Keeps only assumptions whose label is in `wanted` (assumptions without labels are
    /// dropped). This implements the `by l1, ..., ln` hint mechanism of §3.5.
    pub fn filter_by_labels(&self, wanted: &[String]) -> Sequent {
        let keep: Vec<Form> = self
            .assumptions
            .iter()
            .filter(|a| {
                let (labels, _) = a.strip_comments();
                labels.iter().any(|l| wanted.iter().any(|w| w == l))
            })
            .cloned()
            .collect();
        Sequent {
            assumptions: keep,
            goal: self.goal.clone(),
            labels: self.labels.clone(),
        }
    }

    /// A short human-readable description of the goal for progress reports.
    pub fn describe(&self) -> String {
        if self.labels.is_empty() {
            let mut s = self.goal.to_string();
            if s.len() > 60 {
                s.truncate(57);
                s.push_str("...");
            }
            s
        } else {
            self.labels.join(".")
        }
    }
}

impl fmt::Display for Sequent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.assumptions {
            writeln!(f, "    {a}")?;
        }
        write!(f, "==> {}", self.goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn p(s: &str) -> Form {
        parse_form(s).expect("parse")
    }

    #[test]
    fn to_form_builds_implication() {
        let s = Sequent::new(vec![p("p"), p("q")], p("r"));
        assert_eq!(s.to_form().to_string(), "p & q --> r");
        let t = Sequent::goal_only(p("r"));
        assert_eq!(t.to_form(), p("r"));
    }

    #[test]
    fn free_vars_spans_assumptions_and_goal() {
        let s = Sequent::new(vec![p("x : alloc")], p("y ~= null"));
        let fv = s.free_vars();
        assert!(fv.contains("x") && fv.contains("y") && fv.contains("alloc"));
    }

    #[test]
    fn filter_by_labels_keeps_hinted_assumptions() {
        let s = Sequent::new(
            vec![
                p("comment ''sizeInv'' (size = card content)"),
                p("comment ''xFresh'' (x ~: content)"),
                p("unlabelled = True"),
            ],
            p("size + 1 = card (content Un {x})"),
        );
        let filtered = s.filter_by_labels(&["sizeInv".to_string(), "xFresh".to_string()]);
        assert_eq!(filtered.assumptions.len(), 2);
    }

    #[test]
    fn describe_prefers_labels() {
        let mut s = Sequent::goal_only(p("p"));
        s.labels = vec!["AssocList.put".to_string(), "postcondition".to_string()];
        assert_eq!(s.describe(), "AssocList.put.postcondition");
    }

    #[test]
    fn display_shows_assumptions_then_goal() {
        let s = Sequent::new(vec![p("p")], p("q"));
        let text = s.to_string();
        assert!(text.contains("p\n") && text.ends_with("==> q"));
    }
}
