//! Type inference and checking for specification formulas.
//!
//! Jahob formulas are simply typed (§3.1). The frontend declares the types of program
//! variables, fields and specification variables in a [`TypeEnv`]; this module infers the
//! types of bound variables and checks consistency by unification. Remaining unconstrained
//! type variables default to `obj`, matching Jahob's convention that untyped specification
//! variables range over objects.

use crate::form::{Binder, Const, Form, Ident};
use crate::types::Type;
use std::collections::BTreeMap;
use std::fmt;

/// The typing environment: types of free variables (program variables, fields, class-name
/// sets, specification variables).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeEnv {
    vars: BTreeMap<Ident, Type>,
}

impl TypeEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        TypeEnv::default()
    }

    /// Creates the standard Jahob environment containing `alloc`, `arrayState`,
    /// `Array.length` and the built-in `Object` class set.
    pub fn standard() -> Self {
        let mut env = TypeEnv::new();
        env.insert("alloc", Type::obj_set());
        env.insert("arrayState", Type::obj_array_state());
        env.insert("Array.length", Type::int_field());
        env.insert("Object", Type::obj_set());
        env.insert("Array", Type::obj_set());
        env
    }

    /// Declares (or overwrites) the type of a free variable.
    pub fn insert(&mut self, name: impl Into<Ident>, ty: Type) {
        self.vars.insert(name.into(), ty);
    }

    /// Looks up the type of a free variable.
    pub fn get(&self, name: &str) -> Option<&Type> {
        self.vars.get(name)
    }

    /// Returns `true` if the variable is declared.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// Iterates over all declared variables.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, &Type)> {
        self.vars.iter()
    }

    /// Merges another environment into this one (later declarations win).
    pub fn extend(&mut self, other: &TypeEnv) {
        for (k, v) in &other.vars {
            self.vars.insert(k.clone(), v.clone());
        }
    }
}

/// A type error detected during inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

/// Result of type inference: the elaborated formula (binder annotations resolved), its
/// type, and the inferred types of free variables that were not declared in the
/// environment.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The input formula with binder types resolved (defaulting unknowns to `obj`).
    pub form: Form,
    /// The type of the whole formula.
    pub ty: Type,
    /// Types inferred for free variables absent from the environment.
    pub undeclared: BTreeMap<Ident, Type>,
}

/// Infers the type of `form` under `env` and checks consistency.
///
/// # Errors
///
/// Returns a [`TypeError`] if the formula cannot be consistently typed (e.g. an integer
/// used as a set).
///
/// # Examples
///
/// ```
/// use jahob_logic::{parser::parse_form, typecheck::{infer, TypeEnv}, types::Type};
/// let mut env = TypeEnv::standard();
/// env.insert("content", Type::obj_set());
/// env.insert("x", Type::Obj);
/// let f = parse_form("x : content & card content >= 0").expect("parse");
/// let inf = infer(&f, &env).expect("well-typed");
/// assert_eq!(inf.ty, Type::Bool);
/// ```
pub fn infer(form: &Form, env: &TypeEnv) -> Result<Inference, TypeError> {
    let mut cx = Cx {
        unifier: BTreeMap::new(),
        next: 0,
        undeclared: BTreeMap::new(),
    };
    let mut scope: Vec<(Ident, Type)> = Vec::new();
    let ty = cx.infer(form, env, &mut scope)?;
    let resolved_ty = cx.default_unknowns(&cx.resolve(&ty));
    let resolved_form = cx.annotate(form, &mut Vec::new());
    let undeclared = cx
        .undeclared
        .clone()
        .into_iter()
        .map(|(k, v)| (k, cx.default_unknowns(&cx.resolve(&v))))
        .collect();
    Ok(Inference {
        form: resolved_form,
        ty: resolved_ty,
        undeclared,
    })
}

/// Checks that `form` is a well-typed boolean formula under `env`.
///
/// # Errors
///
/// Returns a [`TypeError`] if inference fails or the result type is not `bool`.
pub fn check_bool(form: &Form, env: &TypeEnv) -> Result<Inference, TypeError> {
    let inf = infer(form, env)?;
    if inf.ty != Type::Bool {
        return Err(TypeError {
            message: format!("expected a boolean formula, found type {}", inf.ty),
        });
    }
    Ok(inf)
}

struct Cx {
    unifier: BTreeMap<u32, Type>,
    next: u32,
    undeclared: BTreeMap<Ident, Type>,
}

impl Cx {
    fn fresh(&mut self) -> Type {
        self.next += 1;
        Type::Var(self.next + 2_000_000)
    }

    fn resolve(&self, t: &Type) -> Type {
        match t {
            Type::Var(v) => match self.unifier.get(v) {
                Some(bound) => self.resolve(bound),
                None => t.clone(),
            },
            Type::Set(e) => Type::set(self.resolve(e)),
            Type::Prod(ts) => Type::Prod(ts.iter().map(|t| self.resolve(t)).collect()),
            Type::Fun(a, b) => Type::fun(self.resolve(a), self.resolve(b)),
            _ => t.clone(),
        }
    }

    fn default_unknowns(&self, t: &Type) -> Type {
        match t {
            Type::Var(_) => Type::Obj,
            Type::Set(e) => Type::set(self.default_unknowns(e)),
            Type::Prod(ts) => Type::Prod(ts.iter().map(|t| self.default_unknowns(t)).collect()),
            Type::Fun(a, b) => Type::fun(self.default_unknowns(a), self.default_unknowns(b)),
            _ => t.clone(),
        }
    }

    fn unify(&mut self, a: &Type, b: &Type) -> Result<(), TypeError> {
        let a = self.resolve(a);
        let b = self.resolve(b);
        match (&a, &b) {
            (Type::Var(v), _) => {
                if a != b {
                    self.bind(*v, b)?;
                }
                Ok(())
            }
            (_, Type::Var(v)) => self.bind(*v, a),
            (Type::Bool, Type::Bool) | (Type::Int, Type::Int) | (Type::Obj, Type::Obj) => Ok(()),
            (Type::Set(x), Type::Set(y)) => self.unify(x, y),
            (Type::Fun(a1, b1), Type::Fun(a2, b2)) => {
                self.unify(a1, a2)?;
                self.unify(b1, b2)
            }
            (Type::Prod(xs), Type::Prod(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys.iter()) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            _ => Err(TypeError {
                message: format!("cannot unify {a} with {b}"),
            }),
        }
    }

    fn bind(&mut self, v: u32, t: Type) -> Result<(), TypeError> {
        let mut occurs = Vec::new();
        t.type_vars(&mut occurs);
        if occurs.contains(&v) {
            return Err(TypeError {
                message: format!("occurs check failed binding ?t{v} to {t}"),
            });
        }
        self.unifier.insert(v, t);
        Ok(())
    }

    fn const_type(&mut self, c: &Const) -> Type {
        if let Some(t) = c.fixed_type() {
            return t;
        }
        use Const::*;
        match c {
            EmptySet | UnivSet => Type::set(self.fresh()),
            Eq => {
                let a = self.fresh();
                Type::fun_n(&[a.clone(), a], Type::Bool)
            }
            Ite => {
                let a = self.fresh();
                Type::fun_n(&[Type::Bool, a.clone(), a.clone()], a)
            }
            Elem => {
                let a = self.fresh();
                Type::fun_n(&[a.clone(), Type::set(a)], Type::Bool)
            }
            Union | Inter | Diff => {
                let a = Type::set(self.fresh());
                Type::fun_n(&[a.clone(), a.clone()], a)
            }
            // `-` is overloaded between integer subtraction and set difference; give it
            // the same-type signature so both uses are accepted.
            Minus => {
                let a = self.fresh();
                Type::fun_n(&[a.clone(), a.clone()], a)
            }
            Subset | SubsetEq => {
                let a = Type::set(self.fresh());
                Type::fun_n(&[a.clone(), a], Type::Bool)
            }
            Card => Type::fun(Type::set(self.fresh()), Type::Int),
            FieldWrite => {
                let a = self.fresh();
                let b = self.fresh();
                let f = Type::fun(a.clone(), b.clone());
                Type::fun_n(&[f.clone(), a, b], f)
            }
            FieldRead => {
                let a = self.fresh();
                let b = self.fresh();
                Type::fun_n(&[Type::fun(a.clone(), b.clone()), a], b)
            }
            ArrayRead => Type::fun_n(&[Type::obj_array_state(), Type::Obj, Type::Int], Type::Obj),
            ArrayWrite => Type::fun_n(
                &[Type::obj_array_state(), Type::Obj, Type::Int, Type::Obj],
                Type::obj_array_state(),
            ),
            Rtrancl => {
                let a = self.fresh();
                let p = Type::fun_n(&[a.clone(), a.clone()], Type::Bool);
                Type::fun_n(&[p, a.clone(), a], Type::Bool)
            }
            Old => {
                let a = self.fresh();
                Type::fun(a.clone(), a)
            }
            Comment(_) => Type::fun(Type::Bool, Type::Bool),
            Tree => Type::Bool,
            ObjLocs => Type::obj_set(),
            // FiniteSet and Tuple are variadic; handled specially in `infer_app`.
            FiniteSet | Tuple => self.fresh(),
            _ => self.fresh(),
        }
    }

    fn lookup_var(&mut self, name: &Ident, env: &TypeEnv, scope: &[(Ident, Type)]) -> Type {
        if let Some((_, t)) = scope.iter().rev().find(|(v, _)| v == name) {
            return t.clone();
        }
        if let Some(t) = env.get(name) {
            return t.clone();
        }
        if let Some(t) = self.undeclared.get(name) {
            return t.clone();
        }
        let t = self.fresh();
        self.undeclared.insert(name.clone(), t.clone());
        t
    }

    fn infer(
        &mut self,
        form: &Form,
        env: &TypeEnv,
        scope: &mut Vec<(Ident, Type)>,
    ) -> Result<Type, TypeError> {
        match form {
            Form::Var(name) => Ok(self.lookup_var(name, env, scope)),
            Form::Const(c) => Ok(self.const_type(c)),
            Form::Typed(f, t) => {
                let ft = self.infer(f, env, scope)?;
                self.unify(&ft, t)?;
                Ok(t.clone())
            }
            Form::Binder(binder, vars, body) => {
                let n = vars.len();
                scope.extend(vars.iter().cloned());
                let body_ty = self.infer(body, env, scope)?;
                let var_tys: Vec<Type> = scope[scope.len() - n..]
                    .iter()
                    .map(|(_, t)| t.clone())
                    .collect();
                scope.truncate(scope.len() - n);
                match binder {
                    Binder::Forall | Binder::Exists => {
                        self.unify(&body_ty, &Type::Bool)?;
                        Ok(Type::Bool)
                    }
                    Binder::Lambda => Ok(Type::fun_n(&var_tys, body_ty)),
                    Binder::Comprehension => {
                        self.unify(&body_ty, &Type::Bool)?;
                        Ok(Type::set(Type::prod(var_tys)))
                    }
                }
            }
            Form::App(fun, args) => self.infer_app(fun, args, env, scope),
        }
    }

    fn infer_app(
        &mut self,
        fun: &Form,
        args: &[Form],
        env: &TypeEnv,
        scope: &mut Vec<(Ident, Type)>,
    ) -> Result<Type, TypeError> {
        // Variadic constants.
        if let Form::Const(c) = fun {
            match c {
                Const::FiniteSet => {
                    let elem = self.fresh();
                    for a in args {
                        let t = self.infer(a, env, scope)?;
                        self.unify(&t, &elem).map_err(|e| TypeError {
                            message: format!("in finite set display {{...}}: {}", e.message),
                        })?;
                    }
                    return Ok(Type::set(elem));
                }
                Const::Tuple => {
                    let tys = args
                        .iter()
                        .map(|a| self.infer(a, env, scope))
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(Type::prod(tys));
                }
                Const::And | Const::Or => {
                    for a in args {
                        let t = self.infer(a, env, scope)?;
                        self.unify(&t, &Type::Bool)?;
                    }
                    return Ok(Type::Bool);
                }
                Const::Tree => {
                    for a in args {
                        let t = self.infer(a, env, scope)?;
                        self.unify(&t, &Type::obj_field())?;
                    }
                    return Ok(Type::Bool);
                }
                _ => {}
            }
        }
        let mut fun_ty = self.infer(fun, env, scope)?;
        for (i, a) in args.iter().enumerate() {
            let arg_ty = self.infer(a, env, scope)?;
            let res = self.fresh();
            self.unify(&fun_ty, &Type::fun(arg_ty.clone(), res.clone()))
                .map_err(|e| TypeError {
                    message: format!("applying {fun} to argument {} ({a}): {}", i + 1, e.message),
                })?;
            fun_ty = res;
        }
        Ok(fun_ty)
    }

    /// Rewrites binder annotations with their resolved types.
    fn annotate(&self, form: &Form, scope: &mut Vec<(Ident, Type)>) -> Form {
        match form {
            Form::Var(_) | Form::Const(_) => form.clone(),
            Form::Typed(f, t) => Form::Typed(Box::new(self.annotate(f, scope)), t.clone()),
            Form::App(f, args) => Form::App(
                Box::new(self.annotate(f, scope)),
                args.iter().map(|a| self.annotate(a, scope)).collect(),
            ),
            Form::Binder(b, vars, body) => {
                let new_vars: Vec<(Ident, Type)> = vars
                    .iter()
                    .map(|(v, t)| (v.clone(), self.default_unknowns(&self.resolve(t))))
                    .collect();
                let n = vars.len();
                scope.extend(vars.iter().cloned());
                let body = self.annotate(body, scope);
                scope.truncate(scope.len() - n);
                Form::Binder(*b, new_vars, Box::new(body))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn assoc_list_env() -> TypeEnv {
        let mut env = TypeEnv::standard();
        env.insert("Node", Type::obj_set());
        env.insert("AssocList", Type::obj_set());
        env.insert("Node.next", Type::obj_field());
        env.insert("next", Type::obj_field());
        env.insert("key", Type::obj_field());
        env.insert("value", Type::obj_field());
        env.insert("cnt", Type::fun(Type::Obj, Type::obj_rel()));
        env.insert("content", Type::obj_rel());
        env.insert("first", Type::Obj);
        env.insert("k0", Type::Obj);
        env.insert("v0", Type::Obj);
        env.insert("result", Type::Obj);
        env
    }

    #[test]
    fn infers_simple_boolean_formula() {
        let env = assoc_list_env();
        let f = parse_form("k0 ~= null & v0 ~= null").expect("parse");
        assert_eq!(infer(&f, &env).expect("ok").ty, Type::Bool);
    }

    #[test]
    fn infers_assoc_list_ensures_clause() {
        let env = assoc_list_env();
        let f = parse_form(
            "content = old content - {(k0, result)} Un {(k0, v0)} & \
             (result = null --> ~(EX v. (k0, v) : old content))",
        )
        .expect("parse");
        let inf = check_bool(&f, &env).expect("well-typed");
        assert_eq!(inf.ty, Type::Bool);
    }

    #[test]
    fn infers_cnt_invariant_with_field_reads() {
        let env = assoc_list_env();
        let f = parse_form(
            "ALL x. x : Node & x : alloc & x ~= null --> \
             x..cnt = {(x..key, x..value)} Un x..next..cnt",
        )
        .expect("parse");
        let inf = check_bool(&f, &env).expect("well-typed");
        // The bound variable must have been resolved to obj.
        match &inf.form {
            Form::Binder(Binder::Forall, vars, _) => assert_eq!(vars[0].1, Type::Obj),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infers_cardinality_invariant() {
        let mut env = TypeEnv::standard();
        env.insert("size", Type::Int);
        env.insert("content", Type::obj_set());
        let f = parse_form("size = card content").expect("parse");
        assert_eq!(check_bool(&f, &env).expect("ok").ty, Type::Bool);
    }

    #[test]
    fn infers_rtrancl_and_comprehension() {
        let mut env = TypeEnv::standard();
        env.insert("root", Type::Obj);
        env.insert("next", Type::obj_field());
        env.insert("nodes", Type::obj_set());
        let f = parse_form("nodes = {n. n ~= null & rtrancl_pt (% u v. u..next = v) root n}")
            .expect("parse");
        assert_eq!(check_bool(&f, &env).expect("ok").ty, Type::Bool);
    }

    #[test]
    fn rejects_ill_typed_formulas() {
        let mut env = TypeEnv::standard();
        env.insert("s", Type::obj_set());
        env.insert("i", Type::Int);
        let f = parse_form("i : s").expect("parse");
        assert!(infer(&f, &env).is_err());
        let g = parse_form("card i = 0").expect("parse");
        assert!(infer(&g, &env).is_err());
    }

    #[test]
    fn check_bool_rejects_non_boolean() {
        let mut env = TypeEnv::standard();
        env.insert("i", Type::Int);
        let f = parse_form("i + 1").expect("parse");
        assert!(check_bool(&f, &env).is_err());
    }

    #[test]
    fn undeclared_variables_are_reported_with_inferred_types() {
        let env = TypeEnv::standard();
        let f = parse_form("mystery : alloc").expect("parse");
        let inf = infer(&f, &env).expect("ok");
        assert_eq!(inf.undeclared.get("mystery"), Some(&Type::Obj));
    }

    #[test]
    fn minus_is_overloaded_for_sets_and_integers() {
        let mut env = TypeEnv::standard();
        env.insert("a", Type::obj_set());
        env.insert("b", Type::obj_set());
        env.insert("i", Type::Int);
        let f = parse_form("a - b = a & i - 1 < i").expect("parse");
        assert!(check_bool(&f, &env).is_ok());
    }

    #[test]
    fn function_update_preserves_field_type() {
        let mut env = TypeEnv::standard();
        env.insert("next", Type::obj_field());
        env.insert("x", Type::Obj);
        env.insert("y", Type::Obj);
        let f = parse_form("next(x := y) = next").expect("parse");
        assert!(check_bool(&f, &env).is_ok());
        let bad = parse_form("next(x := 3) = next").expect("parse");
        assert!(check_bool(&bad, &env).is_err());
    }
}
