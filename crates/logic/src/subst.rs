//! Free variables, capture-avoiding substitution, alpha-renaming and beta reduction.
//!
//! These operations underpin the verification-condition generator (substituting
//! definitions of specification variables, resolving `old` expressions) and the
//! formula-approximation rewrites of §5.3.

use crate::form::{Binder, Form, Ident};
use std::collections::{BTreeMap, BTreeSet};

/// A substitution from variable names to formulas.
pub type Subst = BTreeMap<Ident, Form>;

/// Returns the set of free variables of a formula.
///
/// # Examples
///
/// ```
/// use jahob_logic::{form::Form, subst::free_vars, types::Type};
/// let f = Form::forall("x", Type::Obj, Form::eq(Form::var("x"), Form::var("y")));
/// let fv = free_vars(&f);
/// assert!(fv.contains("y") && !fv.contains("x"));
/// ```
pub fn free_vars(form: &Form) -> BTreeSet<Ident> {
    let mut acc = BTreeSet::new();
    collect_free(form, &mut Vec::new(), &mut acc);
    acc
}

fn collect_free(form: &Form, bound: &mut Vec<Ident>, acc: &mut BTreeSet<Ident>) {
    match form {
        Form::Var(v) => {
            if !bound.iter().any(|b| b == v) {
                acc.insert(v.clone());
            }
        }
        Form::Const(_) => {}
        Form::App(f, args) => {
            collect_free(f, bound, acc);
            for a in args {
                collect_free(a, bound, acc);
            }
        }
        Form::Binder(_, vars, body) => {
            let n = vars.len();
            bound.extend(vars.iter().map(|(v, _)| v.clone()));
            collect_free(body, bound, acc);
            bound.truncate(bound.len() - n);
        }
        Form::Typed(f, _) => collect_free(f, bound, acc),
    }
}

/// Returns `true` if `name` occurs free in `form`.
pub fn occurs_free(name: &str, form: &Form) -> bool {
    free_vars(form).contains(name)
}

/// Generates a variant of `base` that does not occur in `avoid`.
pub fn fresh_name(base: &str, avoid: &BTreeSet<Ident>) -> Ident {
    if !avoid.contains(base) {
        return base.to_string();
    }
    let stem = base.trim_end_matches(|c: char| c.is_ascii_digit());
    let stem = if stem.is_empty() { "v" } else { stem };
    for i in 1.. {
        let candidate = format!("{stem}_{i}");
        if !avoid.contains(&candidate) {
            return candidate;
        }
    }
    unreachable!("fresh_name: exhausted counter")
}

/// Applies the substitution `sub` to `form`, renaming bound variables to avoid capture.
///
/// # Examples
///
/// ```
/// use jahob_logic::{form::Form, subst::{substitute, Subst}};
/// let mut s = Subst::new();
/// s.insert("x".to_string(), Form::int(3));
/// let f = Form::eq(Form::var("x"), Form::var("y"));
/// assert_eq!(substitute(&f, &s).to_string(), "3 = y");
/// ```
pub fn substitute(form: &Form, sub: &Subst) -> Form {
    if sub.is_empty() {
        return form.clone();
    }
    // Precompute the free variables of the replacement terms once.
    let mut replacement_fvs: BTreeSet<Ident> = BTreeSet::new();
    for f in sub.values() {
        replacement_fvs.extend(free_vars(f));
    }
    subst_rec(form, sub, &replacement_fvs)
}

fn subst_rec(form: &Form, sub: &Subst, replacement_fvs: &BTreeSet<Ident>) -> Form {
    match form {
        Form::Var(v) => sub.get(v).cloned().unwrap_or_else(|| form.clone()),
        Form::Const(_) => form.clone(),
        Form::App(f, args) => Form::App(
            Box::new(subst_rec(f, sub, replacement_fvs)),
            args.iter()
                .map(|a| subst_rec(a, sub, replacement_fvs))
                .collect(),
        ),
        Form::Typed(f, t) => Form::Typed(Box::new(subst_rec(f, sub, replacement_fvs)), t.clone()),
        Form::Binder(binder, vars, body) => {
            // Remove bindings shadowed by the binder.
            let mut inner_sub: Subst = sub
                .iter()
                .filter(|(k, _)| !vars.iter().any(|(v, _)| v == *k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            if inner_sub.is_empty() {
                return form.clone();
            }
            // Rename bound variables that would capture free variables of replacements.
            let mut new_vars = Vec::with_capacity(vars.len());
            let mut body = body.as_ref().clone();
            let mut avoid: BTreeSet<Ident> = replacement_fvs.clone();
            avoid.extend(free_vars(&body));
            for (v, t) in vars {
                if replacement_fvs.contains(v) {
                    let fresh = fresh_name(v, &avoid);
                    avoid.insert(fresh.clone());
                    let mut rename = Subst::new();
                    rename.insert(v.clone(), Form::Var(fresh.clone()));
                    body = substitute(&body, &rename);
                    // A binding for the original name must not leak into the renamed body.
                    inner_sub.remove(v);
                    new_vars.push((fresh, t.clone()));
                } else {
                    new_vars.push((v.clone(), t.clone()));
                }
            }
            Form::Binder(
                *binder,
                new_vars,
                Box::new(subst_rec(&body, &inner_sub, replacement_fvs)),
            )
        }
    }
}

/// Substitutes a single variable.
pub fn substitute_one(form: &Form, name: &str, replacement: &Form) -> Form {
    let mut s = Subst::new();
    s.insert(name.to_string(), replacement.clone());
    substitute(form, &s)
}

/// Performs beta reduction everywhere in the formula:
/// `(% x. e) a` reduces to `e[x := a]`, including partial application of multi-variable
/// lambdas, and membership in comprehensions `x : {y. F}` reduces to `F[y := x]`.
pub fn beta_reduce(form: &Form) -> Form {
    let mut current = form.clone();
    // Iterate to a fixpoint; reductions can expose new redexes. The bound prevents
    // divergence on ill-typed self-applications (which cannot arise from the parser).
    for _ in 0..64 {
        let next = beta_step(&current);
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

fn beta_step(form: &Form) -> Form {
    match form {
        Form::Var(_) | Form::Const(_) => form.clone(),
        Form::Typed(f, t) => Form::Typed(Box::new(beta_step(f)), t.clone()),
        Form::Binder(b, vars, body) => Form::Binder(*b, vars.clone(), Box::new(beta_step(body))),
        Form::App(f, args) => {
            let f = beta_step(f);
            let args: Vec<Form> = args.iter().map(beta_step).collect();
            // Membership in a comprehension.
            if let Form::Const(crate::form::Const::Elem) = &f {
                if args.len() == 2 {
                    if let Form::Binder(Binder::Comprehension, vars, body) = &args[1] {
                        if let Some(reduced) = reduce_comprehension_elem(&args[0], vars, body) {
                            return reduced;
                        }
                    }
                }
            }
            // Lambda application.
            if let Form::Binder(Binder::Lambda, vars, body) = &f {
                let n = vars.len().min(args.len());
                let mut sub = Subst::new();
                for ((v, _), a) in vars.iter().zip(args.iter()).take(n) {
                    sub.insert(v.clone(), a.clone());
                }
                let remaining_vars: Vec<_> = vars.iter().skip(n).cloned().collect();
                let reduced_body = substitute(body, &sub);
                let reduced = Form::lambda(remaining_vars, reduced_body);
                let rest: Vec<Form> = args.into_iter().skip(n).collect();
                return Form::app(reduced, rest);
            }
            Form::app(f, args)
        }
    }
}

/// Reduces `x : {vars. body}`. For a multi-variable comprehension the element must be a
/// tuple of matching arity (otherwise the membership is left untouched).
fn reduce_comprehension_elem(
    elem: &Form,
    vars: &[(Ident, crate::types::Type)],
    body: &Form,
) -> Option<Form> {
    use crate::form::Const;
    let mut sub = Subst::new();
    if vars.len() == 1 {
        sub.insert(vars[0].0.clone(), elem.clone());
    } else {
        let components = elem.as_app_of(&Const::Tuple)?;
        if components.len() != vars.len() {
            return None;
        }
        for ((v, _), c) in vars.iter().zip(components.iter()) {
            sub.insert(v.clone(), c.clone());
        }
    }
    Some(substitute(body, &sub))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form::Form;
    use crate::types::Type;

    #[test]
    fn free_vars_ignores_bound() {
        let f = Form::exists(
            "v",
            Type::Obj,
            Form::elem(
                Form::tuple(vec![Form::var("k"), Form::var("v")]),
                Form::var("content"),
            ),
        );
        let fv = free_vars(&f);
        assert!(fv.contains("k"));
        assert!(fv.contains("content"));
        assert!(!fv.contains("v"));
    }

    #[test]
    fn substitution_avoids_capture() {
        // (ALL y. x = y)[x := y]  must rename the bound y.
        let f = Form::forall("y", Type::Obj, Form::eq(Form::var("x"), Form::var("y")));
        let g = substitute_one(&f, "x", &Form::var("y"));
        match &g {
            Form::Binder(Binder::Forall, vars, body) => {
                assert_ne!(vars[0].0, "y");
                let (l, r) = body.as_eq().expect("eq");
                assert_eq!(*l, Form::var("y"));
                assert_eq!(*r, Form::Var(vars[0].0.clone()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn substitution_respects_shadowing() {
        let f = Form::forall("x", Type::Obj, Form::var("x"));
        let g = substitute_one(&f, "x", &Form::int(1));
        assert_eq!(f, g);
    }

    #[test]
    fn beta_reduces_lambda_application() {
        let lam = Form::lambda(
            vec![("x".to_string(), Type::Int)],
            Form::plus(Form::var("x"), Form::int(1)),
        );
        let app = Form::app(lam, vec![Form::int(41)]);
        assert_eq!(beta_reduce(&app).to_string(), "41 + 1");
    }

    #[test]
    fn beta_reduces_multi_arg_lambda() {
        let lam = Form::lambda(
            vec![("x".to_string(), Type::Obj), ("y".to_string(), Type::Obj)],
            Form::eq(Form::var("x"), Form::var("y")),
        );
        let app = Form::app(lam, vec![Form::var("a"), Form::var("b")]);
        assert_eq!(beta_reduce(&app), Form::eq(Form::var("a"), Form::var("b")));
    }

    #[test]
    fn beta_reduces_comprehension_membership() {
        let compr = Form::comprehension(
            vec![("n".to_string(), Type::Obj)],
            Form::neq(Form::var("n"), Form::null()),
        );
        let f = Form::elem(Form::var("z"), compr);
        assert_eq!(beta_reduce(&f), Form::neq(Form::var("z"), Form::null()));
    }

    #[test]
    fn beta_reduces_pair_comprehension_membership() {
        let compr = Form::comprehension(
            vec![("u".to_string(), Type::Obj), ("v".to_string(), Type::Obj)],
            Form::eq(
                Form::field_read(Form::var("next"), Form::var("u")),
                Form::var("v"),
            ),
        );
        let f = Form::elem(Form::tuple(vec![Form::var("a"), Form::var("b")]), compr);
        assert_eq!(
            beta_reduce(&f),
            Form::eq(
                Form::field_read(Form::var("next"), Form::var("a")),
                Form::var("b")
            )
        );
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let mut avoid = BTreeSet::new();
        avoid.insert("x".to_string());
        avoid.insert("x_1".to_string());
        assert_eq!(fresh_name("x", &avoid), "x_2");
        assert_eq!(fresh_name("y", &avoid), "y");
    }
}
