//! Abstract syntax of Jahob specification formulas.
//!
//! Following Jahob (and Isabelle/HOL, on which its notation is based, §3.1), formulas and
//! terms share one representation: a higher-order term language with variables, constants,
//! application and binders. Logical connectives, arithmetic, set operations, transitive
//! closure, the `tree` predicate and cardinality are all [`Const`]s applied to arguments.
//!
//! The module also provides smart constructors (e.g. [`Form::and`], [`Form::implies`]) that
//! perform light normalisation, and destructors used by the verification-condition splitter
//! and the provers.

use crate::types::Type;
use std::fmt;

/// Identifiers. Qualified names use a single dot, e.g. `Node.next`.
pub type Ident = String;

/// Built-in constants of the logic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    // ---- literals ----
    /// Boolean literal.
    BoolLit(bool),
    /// Integer literal (unbounded in the semantics; `i64` suffices for specs).
    IntLit(i64),
    /// The `null` object.
    Null,
    /// The empty set `{}`.
    EmptySet,
    /// The universal set of the element type.
    UnivSet,

    // ---- propositional connectives ----
    /// Negation.
    Not,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// Implication (binary, right associative in concrete syntax).
    Impl,
    /// Bi-implication.
    Iff,
    /// If-then-else over any type: `ite c t e`.
    Ite,

    // ---- equality and orders ----
    /// Polymorphic equality.
    Eq,
    /// Integer strict less-than.
    Lt,
    /// Integer less-or-equal.
    LtEq,
    /// Integer strict greater-than.
    Gt,
    /// Integer greater-or-equal.
    GtEq,

    // ---- arithmetic ----
    /// Addition.
    Plus,
    /// Subtraction (also used for set difference in concrete syntax; resolved by types).
    Minus,
    /// Multiplication.
    Times,
    /// Euclidean division.
    Div,
    /// Remainder.
    Mod,
    /// Unary minus.
    UMinus,

    // ---- sets and relations ----
    /// Membership `x : S`.
    Elem,
    /// Union `S Un T`.
    Union,
    /// Intersection `S Int T`.
    Inter,
    /// Set difference `S \ T`.
    Diff,
    /// Strict subset.
    Subset,
    /// Subset-or-equal.
    SubsetEq,
    /// Cardinality of a finite set.
    Card,
    /// Finite set display `{a, b, c}`; applied to the listed elements.
    FiniteSet,
    /// Tuple construction `(a, b, ...)`; applied to the components.
    Tuple,

    // ---- functions as data ----
    /// Function update: `fieldWrite f x v` is the function equal to `f` except at `x`.
    FieldWrite,
    /// Explicit function application marker: `fieldRead f x` is `f x`. Kept for
    /// compatibility with Jahob input; normalised away by [`crate::rewrite`].
    FieldRead,
    /// Array read: `arrayRead st a i` where `st : obj => int => obj`.
    ArrayRead,
    /// Array write: `arrayWrite st a i v`.
    ArrayWrite,

    // ---- reachability and shape ----
    /// Reflexive transitive closure of a binary predicate: `rtrancl_pt p a b`.
    Rtrancl,
    /// `tree [f1, ..., fn]`: the listed fields form a forest backbone (§3.1, §6.4).
    Tree,

    // ---- specification plumbing ----
    /// `old e`: the value of `e` in the method pre-state (resolved by the VC generator).
    Old,
    /// `comment ''label'' F`: attaches a label to a formula (used by splitting and by
    /// `by`-hint assumption selection; §3.5, §5.1).
    Comment(String),
    /// `objlocs C`: the set of allocated objects of class `C` (used in class axioms).
    ObjLocs,
}

impl Const {
    /// The fixed type of the constant, if it has one (literals and first-order
    /// connectives). Polymorphic constants (`Eq`, `Elem`, ...) return `None`.
    pub fn fixed_type(&self) -> Option<Type> {
        use Const::*;
        Some(match self {
            BoolLit(_) => Type::Bool,
            IntLit(_) => Type::Int,
            Null => Type::Obj,
            Not => Type::fun(Type::Bool, Type::Bool),
            And | Or | Impl | Iff => Type::fun_n(&[Type::Bool, Type::Bool], Type::Bool),
            Lt | LtEq | Gt | GtEq => Type::fun_n(&[Type::Int, Type::Int], Type::Bool),
            // `Minus` is intentionally absent: it is overloaded between integer
            // subtraction and set difference, so its type is assigned during inference.
            Plus | Times | Div | Mod => Type::fun_n(&[Type::Int, Type::Int], Type::Int),
            UMinus => Type::fun(Type::Int, Type::Int),
            _ => return None,
        })
    }

    /// True for constants that denote propositional connectives.
    pub fn is_connective(&self) -> bool {
        matches!(
            self,
            Const::Not | Const::And | Const::Or | Const::Impl | Const::Iff
        )
    }
}

/// Binders of the logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Binder {
    /// Universal quantification `ALL x. F`.
    Forall,
    /// Existential quantification `EX x. F`.
    Exists,
    /// Lambda abstraction `% x. e`.
    Lambda,
    /// Set comprehension `{x. F}` / `{(x,y). F}` (the bound variables form a tuple).
    Comprehension,
}

/// A formula or term of the specification logic.
///
/// # Examples
///
/// ```
/// use jahob_logic::form::Form;
/// let f = Form::implies(Form::var("p"), Form::var("p"));
/// assert_eq!(f.to_string(), "p --> p");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Form {
    /// A variable (free or bound), including program variables, fields (of function
    /// type), specification variables and class-name sets.
    Var(Ident),
    /// A built-in constant.
    Const(Const),
    /// Application of a function to one or more arguments (kept n-ary and flattened).
    App(Box<Form>, Vec<Form>),
    /// A binder with one or more typed bound variables.
    Binder(Binder, Vec<(Ident, Type)>, Box<Form>),
    /// A type ascription `e :: t`.
    Typed(Box<Form>, Type),
}

impl Form {
    // ----------------------------------------------------------------- constructors

    /// The literal `True`.
    pub fn tt() -> Form {
        Form::Const(Const::BoolLit(true))
    }

    /// The literal `False`.
    pub fn ff() -> Form {
        Form::Const(Const::BoolLit(false))
    }

    /// An integer literal.
    pub fn int(i: i64) -> Form {
        Form::Const(Const::IntLit(i))
    }

    /// The `null` constant.
    pub fn null() -> Form {
        Form::Const(Const::Null)
    }

    /// The empty set.
    pub fn empty_set() -> Form {
        Form::Const(Const::EmptySet)
    }

    /// A variable.
    pub fn var(name: impl Into<Ident>) -> Form {
        Form::Var(name.into())
    }

    /// Applies `fun` to `args`, flattening nested applications and collapsing empty
    /// argument lists.
    pub fn app(fun: Form, args: Vec<Form>) -> Form {
        if args.is_empty() {
            return fun;
        }
        match fun {
            Form::App(f, mut prev) => {
                prev.extend(args);
                Form::App(f, prev)
            }
            other => Form::App(Box::new(other), args),
        }
    }

    /// Negation, with constant folding and double-negation elimination.
    ///
    /// This is an associated constructor taking the formula by value, not an `ops::Not`
    /// implementation: it is called as `Form::not(f)` throughout the workspace, alongside
    /// its siblings `Form::and` / `Form::or`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Form) -> Form {
        match f {
            Form::Const(Const::BoolLit(b)) => Form::Const(Const::BoolLit(!b)),
            Form::App(fun, mut args) if *fun == Form::Const(Const::Not) && args.len() == 1 => {
                args.pop().expect("len checked")
            }
            other => Form::app(Form::Const(Const::Not), vec![other]),
        }
    }

    /// N-ary conjunction with unit/absorbing-element folding and flattening.
    pub fn and(conjuncts: Vec<Form>) -> Form {
        let mut flat = Vec::new();
        for c in conjuncts {
            match c {
                Form::Const(Const::BoolLit(true)) => {}
                Form::Const(Const::BoolLit(false)) => return Form::ff(),
                Form::App(f, args) if *f == Form::Const(Const::And) => flat.extend(args),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Form::tt(),
            1 => flat.into_iter().next().expect("len checked"),
            _ => Form::App(Box::new(Form::Const(Const::And)), flat),
        }
    }

    /// N-ary disjunction with unit/absorbing-element folding and flattening.
    pub fn or(disjuncts: Vec<Form>) -> Form {
        let mut flat = Vec::new();
        for d in disjuncts {
            match d {
                Form::Const(Const::BoolLit(false)) => {}
                Form::Const(Const::BoolLit(true)) => return Form::tt(),
                Form::App(f, args) if *f == Form::Const(Const::Or) => flat.extend(args),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Form::ff(),
            1 => flat.into_iter().next().expect("len checked"),
            _ => Form::App(Box::new(Form::Const(Const::Or)), flat),
        }
    }

    /// Implication with trivial-case folding.
    pub fn implies(lhs: Form, rhs: Form) -> Form {
        match (&lhs, &rhs) {
            (Form::Const(Const::BoolLit(true)), _) => rhs,
            (Form::Const(Const::BoolLit(false)), _) => Form::tt(),
            (_, Form::Const(Const::BoolLit(true))) => Form::tt(),
            _ => Form::app(Form::Const(Const::Impl), vec![lhs, rhs]),
        }
    }

    /// Bi-implication.
    pub fn iff(lhs: Form, rhs: Form) -> Form {
        Form::app(Form::Const(Const::Iff), vec![lhs, rhs])
    }

    /// Equality.
    pub fn eq(lhs: Form, rhs: Form) -> Form {
        Form::app(Form::Const(Const::Eq), vec![lhs, rhs])
    }

    /// Disequality (negated equality).
    pub fn neq(lhs: Form, rhs: Form) -> Form {
        Form::not(Form::eq(lhs, rhs))
    }

    /// Membership `x : s`.
    pub fn elem(x: Form, s: Form) -> Form {
        Form::app(Form::Const(Const::Elem), vec![x, s])
    }

    /// Non-membership `x ~: s`.
    pub fn not_elem(x: Form, s: Form) -> Form {
        Form::not(Form::elem(x, s))
    }

    /// Set union.
    pub fn union(a: Form, b: Form) -> Form {
        Form::app(Form::Const(Const::Union), vec![a, b])
    }

    /// Set intersection.
    pub fn inter(a: Form, b: Form) -> Form {
        Form::app(Form::Const(Const::Inter), vec![a, b])
    }

    /// Set difference.
    pub fn diff(a: Form, b: Form) -> Form {
        Form::app(Form::Const(Const::Diff), vec![a, b])
    }

    /// Finite set display `{elems...}`.
    pub fn finite_set(elems: Vec<Form>) -> Form {
        if elems.is_empty() {
            Form::empty_set()
        } else {
            Form::App(Box::new(Form::Const(Const::FiniteSet)), elems)
        }
    }

    /// Singleton set `{e}`.
    pub fn singleton(e: Form) -> Form {
        Form::finite_set(vec![e])
    }

    /// Tuple `(components...)`; a one-component tuple collapses to the component.
    pub fn tuple(components: Vec<Form>) -> Form {
        if components.len() == 1 {
            components.into_iter().next().expect("len checked")
        } else {
            Form::App(Box::new(Form::Const(Const::Tuple)), components)
        }
    }

    /// Cardinality.
    pub fn card(s: Form) -> Form {
        Form::app(Form::Const(Const::Card), vec![s])
    }

    /// Universal quantification over one variable.
    pub fn forall(var: impl Into<Ident>, ty: Type, body: Form) -> Form {
        Form::forall_many(vec![(var.into(), ty)], body)
    }

    /// Universal quantification over several variables; collapses nested binders.
    pub fn forall_many(vars: Vec<(Ident, Type)>, body: Form) -> Form {
        if vars.is_empty() {
            return body;
        }
        if let Form::Const(Const::BoolLit(_)) = body {
            return body;
        }
        match body {
            Form::Binder(Binder::Forall, mut inner, b) => {
                let mut all = vars;
                all.append(&mut inner);
                Form::Binder(Binder::Forall, all, b)
            }
            other => Form::Binder(Binder::Forall, vars, Box::new(other)),
        }
    }

    /// Existential quantification over one variable.
    pub fn exists(var: impl Into<Ident>, ty: Type, body: Form) -> Form {
        Form::exists_many(vec![(var.into(), ty)], body)
    }

    /// Existential quantification over several variables.
    pub fn exists_many(vars: Vec<(Ident, Type)>, body: Form) -> Form {
        if vars.is_empty() {
            return body;
        }
        match body {
            Form::Binder(Binder::Exists, mut inner, b) => {
                let mut all = vars;
                all.append(&mut inner);
                Form::Binder(Binder::Exists, all, b)
            }
            other => Form::Binder(Binder::Exists, vars, Box::new(other)),
        }
    }

    /// Lambda abstraction.
    pub fn lambda(vars: Vec<(Ident, Type)>, body: Form) -> Form {
        if vars.is_empty() {
            body
        } else {
            Form::Binder(Binder::Lambda, vars, Box::new(body))
        }
    }

    /// Set comprehension `{vars. body}`.
    pub fn comprehension(vars: Vec<(Ident, Type)>, body: Form) -> Form {
        Form::Binder(Binder::Comprehension, vars, Box::new(body))
    }

    /// Integer comparison.
    pub fn cmp(op: Const, lhs: Form, rhs: Form) -> Form {
        debug_assert!(matches!(
            op,
            Const::Lt | Const::LtEq | Const::Gt | Const::GtEq
        ));
        Form::app(Form::Const(op), vec![lhs, rhs])
    }

    /// Integer addition.
    pub fn plus(lhs: Form, rhs: Form) -> Form {
        Form::app(Form::Const(Const::Plus), vec![lhs, rhs])
    }

    /// Integer subtraction.
    pub fn minus(lhs: Form, rhs: Form) -> Form {
        Form::app(Form::Const(Const::Minus), vec![lhs, rhs])
    }

    /// Function update `fieldWrite f x v` (the function `f(x := v)`).
    pub fn field_write(f: Form, x: Form, v: Form) -> Form {
        Form::app(Form::Const(Const::FieldWrite), vec![f, x, v])
    }

    /// Field dereference `x..f`, i.e. the application `f x`.
    pub fn field_read(field: Form, x: Form) -> Form {
        Form::app(field, vec![x])
    }

    /// Array read `arrayRead st a i`.
    pub fn array_read(state: Form, array: Form, index: Form) -> Form {
        Form::app(Form::Const(Const::ArrayRead), vec![state, array, index])
    }

    /// Array write `arrayWrite st a i v`.
    pub fn array_write(state: Form, array: Form, index: Form, value: Form) -> Form {
        Form::app(
            Form::Const(Const::ArrayWrite),
            vec![state, array, index, value],
        )
    }

    /// Reflexive transitive closure applied to endpoints: `rtrancl_pt p a b`.
    pub fn rtrancl(pred: Form, from: Form, to: Form) -> Form {
        Form::app(Form::Const(Const::Rtrancl), vec![pred, from, to])
    }

    /// `tree [fields...]`.
    pub fn tree(fields: Vec<Form>) -> Form {
        Form::App(Box::new(Form::Const(Const::Tree)), fields)
    }

    /// `old e`.
    pub fn old(e: Form) -> Form {
        Form::app(Form::Const(Const::Old), vec![e])
    }

    /// Labels a formula with a comment: `comment ''label'' f`.
    pub fn comment(label: impl Into<String>, f: Form) -> Form {
        Form::app(Form::Const(Const::Comment(label.into())), vec![f])
    }

    /// If-then-else.
    pub fn ite(cond: Form, then: Form, els: Form) -> Form {
        Form::app(Form::Const(Const::Ite), vec![cond, then, els])
    }

    // ----------------------------------------------------------------- destructors

    /// Is this the literal `True`?
    pub fn is_true(&self) -> bool {
        matches!(self, Form::Const(Const::BoolLit(true)))
    }

    /// Is this the literal `False`?
    pub fn is_false(&self) -> bool {
        matches!(self, Form::Const(Const::BoolLit(false)))
    }

    /// If the formula is an application of the given constant, returns its arguments.
    pub fn as_app_of(&self, c: &Const) -> Option<&[Form]> {
        match self {
            Form::App(f, args) if **f == Form::Const(c.clone()) => Some(args),
            _ => None,
        }
    }

    /// Splits a conjunction into its conjuncts (a non-conjunction is a single conjunct).
    pub fn conjuncts(&self) -> Vec<&Form> {
        match self.as_app_of(&Const::And) {
            Some(args) => args.iter().flat_map(|a| a.conjuncts()).collect(),
            None => vec![self],
        }
    }

    /// Splits a disjunction into its disjuncts.
    pub fn disjuncts(&self) -> Vec<&Form> {
        match self.as_app_of(&Const::Or) {
            Some(args) => args.iter().flat_map(|a| a.disjuncts()).collect(),
            None => vec![self],
        }
    }

    /// If this is `lhs --> rhs`, returns the pair.
    pub fn as_implication(&self) -> Option<(&Form, &Form)> {
        match self.as_app_of(&Const::Impl) {
            Some([lhs, rhs]) => Some((lhs, rhs)),
            _ => None,
        }
    }

    /// If this is a negation, returns the negated formula.
    pub fn as_negation(&self) -> Option<&Form> {
        match self.as_app_of(&Const::Not) {
            Some([f]) => Some(f),
            _ => None,
        }
    }

    /// If this is an equality, returns both sides.
    pub fn as_eq(&self) -> Option<(&Form, &Form)> {
        match self.as_app_of(&Const::Eq) {
            Some([l, r]) => Some((l, r)),
            _ => None,
        }
    }

    /// Strips `comment` labels from the head of the formula, returning the labels
    /// (outermost first) and the unlabelled formula.
    pub fn strip_comments(&self) -> (Vec<&str>, &Form) {
        let mut labels = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Form::App(f, args) if args.len() == 1 => {
                    if let Form::Const(Const::Comment(l)) = f.as_ref() {
                        labels.push(l.as_str());
                        cur = &args[0];
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        (labels, cur)
    }

    /// Peels universal quantifiers at the head, returning the bound variables and body.
    pub fn strip_forall(&self) -> (Vec<&(Ident, Type)>, &Form) {
        let mut vars = Vec::new();
        let mut cur = self;
        while let Form::Binder(Binder::Forall, vs, body) = cur {
            vars.extend(vs.iter());
            cur = body;
        }
        (vars, cur)
    }

    /// Counts the nodes of the formula (a rough size measure used for statistics and
    /// prover resource limits).
    pub fn size(&self) -> usize {
        match self {
            Form::Var(_) | Form::Const(_) => 1,
            Form::App(f, args) => 1 + f.size() + args.iter().map(Form::size).sum::<usize>(),
            Form::Binder(_, vs, b) => 1 + vs.len() + b.size(),
            Form::Typed(f, _) => f.size(),
        }
    }

    /// Returns `true` if the formula contains the given constant anywhere.
    pub fn contains_const(&self, c: &Const) -> bool {
        match self {
            Form::Const(k) => k == c,
            Form::Var(_) => false,
            Form::App(f, args) => f.contains_const(c) || args.iter().any(|a| a.contains_const(c)),
            Form::Binder(_, _, b) => b.contains_const(c),
            Form::Typed(f, _) => f.contains_const(c),
        }
    }

    /// Returns `true` if the formula contains any binder of the given kind.
    pub fn contains_binder(&self, binder: Binder) -> bool {
        match self {
            Form::Const(_) | Form::Var(_) => false,
            Form::App(f, args) => {
                f.contains_binder(binder) || args.iter().any(|a| a.contains_binder(binder))
            }
            Form::Binder(b, _, body) => *b == binder || body.contains_binder(binder),
            Form::Typed(f, _) => f.contains_binder(binder),
        }
    }

    /// Removes a type ascription at the root, if any.
    pub fn unascribe(&self) -> &Form {
        match self {
            Form::Typed(f, _) => f.unascribe(),
            other => other,
        }
    }
}

// --------------------------------------------------------------------- pretty printing

/// Operator precedence levels used by the printer (must agree with the parser).
fn const_infix(c: &Const) -> Option<(&'static str, u8)> {
    use Const::*;
    Some(match c {
        Iff => ("<->", 1),
        Impl => ("-->", 2),
        Or => ("|", 3),
        And => ("&", 4),
        Eq => ("=", 6),
        Lt => ("<", 6),
        LtEq => ("<=", 6),
        Gt => (">", 6),
        GtEq => (">=", 6),
        Elem => (":", 6),
        Subset => ("<s", 6),
        SubsetEq => ("<=s", 6),
        Union => ("Un", 7),
        Inter => ("Int", 7),
        Diff => ("\\", 7),
        Plus => ("+", 7),
        Minus => ("-", 7),
        Times => ("*", 8),
        Div => ("div", 8),
        Mod => ("mod", 8),
        _ => return None,
    })
}

impl fmt::Display for Form {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print_form(self, f, 0)
    }
}

fn print_form(form: &Form, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match form {
        Form::Var(name) => write!(f, "{name}"),
        Form::Const(c) => print_const(c, f),
        Form::Typed(inner, ty) => {
            write!(f, "(")?;
            print_form(inner, f, 0)?;
            write!(f, " :: {ty})")
        }
        Form::Binder(binder, vars, body) => {
            let open = prec > 0;
            if open {
                write!(f, "(")?;
            }
            match binder {
                Binder::Forall => write!(f, "ALL ")?,
                Binder::Exists => write!(f, "EX ")?,
                Binder::Lambda => write!(f, "% ")?,
                Binder::Comprehension => write!(f, "{{")?,
            }
            if *binder == Binder::Comprehension && vars.len() > 1 {
                write!(f, "(")?;
                for (i, (v, _)) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")?;
            } else {
                for (i, (v, _)) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
            }
            write!(f, ". ")?;
            print_form(body, f, 0)?;
            if *binder == Binder::Comprehension {
                write!(f, "}}")?;
            }
            if open {
                write!(f, ")")?;
            }
            Ok(())
        }
        Form::App(fun, args) => print_app(fun, args, f, prec),
    }
}

fn print_const(c: &Const, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    use Const::*;
    match c {
        BoolLit(true) => write!(f, "True"),
        BoolLit(false) => write!(f, "False"),
        IntLit(i) => write!(f, "{i}"),
        Null => write!(f, "null"),
        EmptySet => write!(f, "{{}}"),
        UnivSet => write!(f, "UNIV"),
        Not => write!(f, "Not"),
        And => write!(f, "(&)"),
        Or => write!(f, "(|)"),
        Impl => write!(f, "(-->)"),
        Iff => write!(f, "(<->)"),
        Ite => write!(f, "ite"),
        Eq => write!(f, "(=)"),
        Lt => write!(f, "(<)"),
        LtEq => write!(f, "(<=)"),
        Gt => write!(f, "(>)"),
        GtEq => write!(f, "(>=)"),
        Plus => write!(f, "(+)"),
        Minus => write!(f, "(-)"),
        Times => write!(f, "(*)"),
        Div => write!(f, "(div)"),
        Mod => write!(f, "(mod)"),
        UMinus => write!(f, "uminus"),
        Elem => write!(f, "(:)"),
        Union => write!(f, "(Un)"),
        Inter => write!(f, "(Int)"),
        Diff => write!(f, "(\\)"),
        Subset => write!(f, "(<s)"),
        SubsetEq => write!(f, "(<=s)"),
        Card => write!(f, "card"),
        FiniteSet => write!(f, "finiteset"),
        Tuple => write!(f, "tuple"),
        FieldWrite => write!(f, "fieldWrite"),
        FieldRead => write!(f, "fieldRead"),
        ArrayRead => write!(f, "arrayRead"),
        ArrayWrite => write!(f, "arrayWrite"),
        Rtrancl => write!(f, "rtrancl_pt"),
        Tree => write!(f, "tree"),
        Old => write!(f, "old"),
        Comment(l) => write!(f, "comment ''{l}''"),
        ObjLocs => write!(f, "objlocs"),
    }
}

fn print_app(fun: &Form, args: &[Form], f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    if let Form::Const(c) = fun {
        // Infix operators.
        if let Some((sym, op_prec)) = const_infix(c) {
            if args.len() >= 2 {
                let open = prec > op_prec;
                if open {
                    write!(f, "(")?;
                }
                let last = args.len() - 1;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, " {sym} ")?;
                    }
                    // Associativity-aware child precedence: `-->` is right associative;
                    // `&`/`|` are associative (children of the same operator need no
                    // parentheses); the remaining operators are treated as left
                    // associative.
                    let child_prec = match c {
                        Const::Impl => {
                            if i == last {
                                op_prec
                            } else {
                                op_prec + 1
                            }
                        }
                        Const::And | Const::Or => {
                            if a.as_app_of(c).is_some() {
                                op_prec
                            } else {
                                op_prec + 1
                            }
                        }
                        _ => {
                            if i == 0 {
                                op_prec
                            } else {
                                op_prec + 1
                            }
                        }
                    };
                    print_form(a, f, child_prec)?;
                }
                if open {
                    write!(f, ")")?;
                }
                return Ok(());
            }
        }
        match c {
            Const::Not if args.len() == 1 => {
                let open = prec > 5;
                if open {
                    write!(f, "(")?;
                }
                write!(f, "~")?;
                print_form(&args[0], f, 10)?;
                if open {
                    write!(f, ")")?;
                }
                return Ok(());
            }
            Const::FiniteSet => {
                write!(f, "{{")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    print_form(a, f, 0)?;
                }
                return write!(f, "}}");
            }
            Const::Tuple => {
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    print_form(a, f, 0)?;
                }
                return write!(f, ")");
            }
            Const::Tree => {
                write!(f, "tree [")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    print_form(a, f, 0)?;
                }
                return write!(f, "]");
            }
            Const::Comment(l) if args.len() == 1 => {
                let open = prec > 0;
                if open {
                    write!(f, "(")?;
                }
                write!(f, "comment ''{l}'' ")?;
                print_form(&args[0], f, 10)?;
                if open {
                    write!(f, ")")?;
                }
                return Ok(());
            }
            _ => {}
        }
    }
    // Generic application: juxtaposition, tightest precedence.
    let open = prec > 9;
    if open {
        write!(f, "(")?;
    }
    print_form(fun, f, 10)?;
    for a in args {
        write!(f, " ")?;
        print_form(a, f, 10)?;
    }
    if open {
        write!(f, ")")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_folds_units() {
        assert_eq!(Form::and(vec![]), Form::tt());
        assert_eq!(Form::and(vec![Form::tt(), Form::var("p")]), Form::var("p"));
        assert_eq!(Form::and(vec![Form::var("p"), Form::ff()]), Form::ff());
    }

    #[test]
    fn and_flattens_nested() {
        let inner = Form::and(vec![Form::var("a"), Form::var("b")]);
        let outer = Form::and(vec![inner, Form::var("c")]);
        assert_eq!(outer.conjuncts().len(), 3);
    }

    #[test]
    fn or_folds_units() {
        assert_eq!(Form::or(vec![]), Form::ff());
        assert_eq!(Form::or(vec![Form::ff(), Form::var("p")]), Form::var("p"));
        assert_eq!(Form::or(vec![Form::var("p"), Form::tt()]), Form::tt());
    }

    #[test]
    fn not_eliminates_double_negation() {
        let f = Form::not(Form::not(Form::var("p")));
        assert_eq!(f, Form::var("p"));
        assert_eq!(Form::not(Form::tt()), Form::ff());
    }

    #[test]
    fn implies_folds_trivial_cases() {
        assert_eq!(Form::implies(Form::tt(), Form::var("q")), Form::var("q"));
        assert_eq!(Form::implies(Form::ff(), Form::var("q")), Form::tt());
        assert_eq!(Form::implies(Form::var("p"), Form::tt()), Form::tt());
    }

    #[test]
    fn forall_collapses_nested_binders() {
        let f = Form::forall("x", Type::Obj, Form::forall("y", Type::Obj, Form::var("p")));
        match f {
            Form::Binder(Binder::Forall, vars, _) => assert_eq!(vars.len(), 2),
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn display_connectives() {
        let f = Form::implies(
            Form::and(vec![Form::var("p"), Form::var("q")]),
            Form::or(vec![Form::var("r"), Form::not(Form::var("p"))]),
        );
        assert_eq!(f.to_string(), "p & q --> r | ~p");
    }

    #[test]
    fn display_quantifier_and_membership() {
        let f = Form::forall(
            "x",
            Type::Obj,
            Form::implies(
                Form::elem(Form::var("x"), Form::var("Node")),
                Form::eq(
                    Form::field_read(Form::var("next"), Form::var("x")),
                    Form::null(),
                ),
            ),
        );
        assert_eq!(f.to_string(), "ALL x. x : Node --> next x = null");
    }

    #[test]
    fn display_sets_and_tuples() {
        let f = Form::eq(
            Form::var("content"),
            Form::union(
                Form::var("old_content"),
                Form::singleton(Form::tuple(vec![Form::var("k"), Form::var("v")])),
            ),
        );
        assert_eq!(f.to_string(), "content = old_content Un {(k, v)}");
    }

    #[test]
    fn strip_comments_returns_labels() {
        let f = Form::comment("a", Form::comment("b", Form::var("p")));
        let (labels, inner) = f.strip_comments();
        assert_eq!(labels, vec!["a", "b"]);
        assert_eq!(*inner, Form::var("p"));
    }

    #[test]
    fn size_counts_nodes() {
        let f = Form::eq(Form::var("x"), Form::int(3));
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn as_implication_and_eq() {
        let f = Form::implies(Form::var("p"), Form::var("q"));
        let (l, r) = f.as_implication().expect("implication");
        assert_eq!(*l, Form::var("p"));
        assert_eq!(*r, Form::var("q"));
        assert!(Form::eq(Form::var("x"), Form::var("y")).as_eq().is_some());
    }

    #[test]
    fn contains_const_and_binder() {
        let f = Form::forall("x", Type::Obj, Form::card(Form::var("s")));
        assert!(f.contains_const(&Const::Card));
        assert!(f.contains_binder(Binder::Forall));
        assert!(!f.contains_binder(Binder::Lambda));
    }
}
