//! Canonicalisation and definitional inlining.
//!
//! The verification-condition generator introduces many intermediate variables: the
//! desugaring of assignments produces `asg$N` temporaries (Figure 11), allocation
//! produces `fresh$N` witnesses, the pre-state snapshot produces `old$x` copies, and the
//! splitter renames havocked variables to `x_1`, `x_2`, ... (Figure 13). Before a sequent
//! reaches a prover, Jahob "applies rewrite rules that substitute definitions of values,
//! perform beta reduction, and flatten expressions" (§5.3). This module implements that
//! preprocessing step:
//!
//! * [`definition_substitution`] / [`inline_definitions`] collapse the definitional
//!   equations of generated variables, so `content_1 = asg$3`, `asg$3 = {x} Un content`
//!   contribute a single binding `content_1 ↦ {x} Un content`;
//! * [`sort_commutative`] orders the arguments of commutative operators so that
//!   AC-equal formulas (`{x} Un content` vs `content Un {x}`) become syntactically equal;
//! * [`canonicalize`] combines comment stripping, membership expansion, simplification
//!   and AC sorting — the "simple syntactic transformations that preserve validity" the
//!   syntactic prover (§6.1) checks modulo.

use crate::form::{Const, Form, Ident};
use crate::rewrite::expand_set_membership;
use crate::sequent::Sequent;
use crate::simplify::{simplify, strip_comments_deep};
use crate::subst::{free_vars, substitute, Subst};

/// Returns `true` if `name` was introduced by the verification-condition generator rather
/// than written by the developer: desugaring temporaries and snapshots contain a `$`
/// (`asg$3`, `fresh$1`, `old$content`), and splitter renamings end in `_<digits>`
/// (`content_1`).
///
/// # Examples
///
/// ```
/// use jahob_logic::norm::is_generated_name;
/// assert!(is_generated_name("asg$3"));
/// assert!(is_generated_name("old$content"));
/// assert!(is_generated_name("content_1"));
/// assert!(!is_generated_name("content"));
/// assert!(!is_generated_name("x"));
/// ```
pub fn is_generated_name(name: &str) -> bool {
    if name.contains('$') {
        return true;
    }
    match name.rsplit_once('_') {
        Some((stem, suffix)) => {
            !stem.is_empty() && !suffix.is_empty() && suffix.chars().all(|c| c.is_ascii_digit())
        }
        None => false,
    }
}

/// Collects an acyclic substitution for generated variables from the definitional
/// equalities among `assumptions`: every (comment-stripped) conjunct of the form `v = t`
/// or `t = v` with `v` a generated variable not occurring in `t` contributes a binding.
/// Chains are resolved (`v ↦ t` where `t` mentions another bound variable is rewritten),
/// and bindings that would become cyclic are left unresolved.
pub fn definition_substitution(assumptions: &[Form]) -> Subst {
    let mut map: Subst = Subst::new();
    for a in assumptions {
        let stripped = strip_comments_deep(a);
        for c in stripped.conjuncts() {
            // Definitional links are either equalities `v = t` or (for boolean-valued
            // temporaries, e.g. `result` of a boolean method) bi-implications `v <-> F`.
            let link = c.as_eq().or_else(|| {
                c.as_app_of(&Const::Iff).and_then(|args| match args {
                    [l, r] => Some((l, r)),
                    _ => None,
                })
            });
            let Some((l, r)) = link else { continue };
            for (lhs, rhs) in [(l, r), (r, l)] {
                let Form::Var(v) = lhs else { continue };
                if !is_generated_name(v) || map.contains_key(v) {
                    continue;
                }
                if free_vars(rhs).contains(v) {
                    continue;
                }
                map.insert(v.clone(), rhs.clone());
                break;
            }
        }
    }
    // Resolve chains: rewrite every binding by the whole map until nothing changes (the
    // iteration count is bounded by the number of bindings, so this terminates even if a
    // cyclic pair slipped in — cyclic rewrites are simply skipped).
    let names: Vec<Ident> = map.keys().cloned().collect();
    for _ in 0..names.len() {
        let mut changed = false;
        for v in &names {
            let current = map[v].clone();
            let next = substitute(&current, &map);
            if next != current && !free_vars(&next).contains(v) {
                map.insert(v.clone(), next);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    map
}

/// Inlines the definitional equalities of generated variables into the whole sequent.
/// Assumptions that become trivially true under the substitution (the definitional
/// equations themselves) are dropped; labels are preserved.
///
/// The result is equivalent to the input sequent: every substituted occurrence is
/// justified by one of the assumptions.
///
/// # Examples
///
/// ```
/// use jahob_logic::{norm::inline_definitions, parse_form, Sequent};
/// let sequent = Sequent::new(
///     vec![
///         parse_form("asg$1 = {x} Un content").unwrap(),
///         parse_form("content_1 = asg$1").unwrap(),
///     ],
///     parse_form("content_1 = content Un {x}").unwrap(),
/// );
/// let inlined = inline_definitions(&sequent);
/// assert_eq!(inlined.goal.to_string(), "{x} Un content = content Un {x}");
/// assert!(inlined.assumptions.is_empty());
/// ```
pub fn inline_definitions(sequent: &Sequent) -> Sequent {
    let sub = definition_substitution(&sequent.assumptions);
    if sub.is_empty() {
        return sequent.clone();
    }
    let mut assumptions = Vec::new();
    for a in &sequent.assumptions {
        let inlined = simplify(&substitute(a, &sub));
        if inlined.is_true() {
            continue;
        }
        assumptions.push(inlined);
    }
    Sequent {
        assumptions,
        goal: simplify(&substitute(&sequent.goal, &sub)),
        labels: sequent.labels.clone(),
    }
}

/// Sorts the arguments of commutative operators into a canonical order and flattens
/// chains of the same associative-commutative operator, so that AC-equal formulas become
/// structurally equal. The result is logically equivalent to the input.
///
/// Handled operators: `&`, `|` (sorted, duplicates removed), `=` and `<->` (operands
/// ordered), `Un`, `Int`, `+`, `*` (chains flattened, leaves sorted, rebuilt
/// left-nested).
pub fn sort_commutative(form: &Form) -> Form {
    match form {
        Form::Var(_) | Form::Const(_) => form.clone(),
        Form::Typed(f, t) => Form::Typed(Box::new(sort_commutative(f)), t.clone()),
        Form::Binder(b, vars, body) => {
            Form::Binder(*b, vars.clone(), Box::new(sort_commutative(body)))
        }
        Form::App(fun, args) => {
            let fun = sort_commutative(fun);
            let args: Vec<Form> = args.iter().map(sort_commutative).collect();
            if let Form::Const(c) = &fun {
                match c {
                    Const::And | Const::Or => {
                        let mut parts: Vec<Form> = Vec::new();
                        for a in &args {
                            let leaves = if *c == Const::And {
                                a.conjuncts().into_iter().cloned().collect::<Vec<_>>()
                            } else {
                                a.disjuncts().into_iter().cloned().collect::<Vec<_>>()
                            };
                            parts.extend(leaves);
                        }
                        parts.sort();
                        parts.dedup();
                        return if *c == Const::And {
                            Form::and(parts)
                        } else {
                            Form::or(parts)
                        };
                    }
                    Const::Eq | Const::Iff if args.len() == 2 => {
                        let mut args = args;
                        if args[0] > args[1] {
                            args.swap(0, 1);
                        }
                        return Form::app(fun, args);
                    }
                    Const::Union | Const::Inter | Const::Plus | Const::Times if args.len() == 2 => {
                        let mut leaves = Vec::new();
                        for a in &args {
                            collect_ac_leaves(c, a, &mut leaves);
                        }
                        leaves.sort();
                        // Union and intersection are idempotent, and the simplifier
                        // collapses `t Un t` only when the copies are siblings — dedup
                        // here so AC-equal chains canonicalise identically regardless of
                        // the original association.
                        if matches!(c, Const::Union | Const::Inter) {
                            leaves.dedup();
                        }
                        let mut iter = leaves.into_iter();
                        let first = iter.next().expect("binary operator has arguments");
                        return iter.fold(first, |acc, next| {
                            Form::app(Form::Const(c.clone()), vec![acc, next])
                        });
                    }
                    _ => {}
                }
            }
            Form::App(Box::new(fun), args)
        }
    }
}

fn collect_ac_leaves(op: &Const, form: &Form, out: &mut Vec<Form>) {
    if let Some(parts) = form.as_app_of(op) {
        if parts.len() == 2 {
            for p in parts {
                collect_ac_leaves(op, p, out);
            }
            return;
        }
    }
    out.push(form.clone());
}

/// Canonicalises a formula for syntactic comparison: strips comments, expands membership
/// in set-algebraic expressions, simplifies, sorts commutative operators, and simplifies
/// again (so equalities whose operands became identical collapse to `True`).
pub fn canonicalize(form: &Form) -> Form {
    let f = strip_comments_deep(form);
    let f = expand_set_membership(&f);
    let f = simplify(&f);
    let f = sort_commutative(&f);
    simplify(&f)
}

/// Renames every bound variable to a canonical name (`?b<depth>`, its de Bruijn
/// level: the number of enclosing bound variables), so that alpha-equivalent formulas
/// become structurally equal. Free variables are untouched. The `?` prefix cannot be
/// produced by the parser, so the canonical names never collide with (or capture)
/// program and specification variables.
///
/// Naming by depth rather than by traversal order matters for AC canonicalisation:
/// sibling binders (two quantified disjuncts, say) receive the *same* canonical name,
/// so [`sort_commutative`] orders them by their bodies — a traversal-order numbering
/// would instead freeze whatever sibling order the input happened to have.
///
/// # Examples
///
/// ```
/// use jahob_logic::{norm::alpha_normalize, parse_form};
/// let a = alpha_normalize(&parse_form("EX v. v : content").unwrap());
/// let b = alpha_normalize(&parse_form("EX w. w : content").unwrap());
/// assert_eq!(a, b);
/// ```
pub fn alpha_normalize(form: &Form) -> Form {
    fn go(form: &Form, env: &mut Vec<(Ident, Ident)>) -> Form {
        match form {
            Form::Var(v) => {
                // Innermost binding wins (shadowing).
                for (from, to) in env.iter().rev() {
                    if from == v {
                        return Form::Var(to.clone());
                    }
                }
                form.clone()
            }
            Form::Const(_) => form.clone(),
            Form::Typed(f, t) => Form::Typed(Box::new(go(f, env)), t.clone()),
            Form::App(fun, args) => Form::App(
                Box::new(go(fun, env)),
                args.iter().map(|a| go(a, env)).collect(),
            ),
            Form::Binder(b, vars, body) => {
                let depth = env.len();
                let mut renamed = Vec::with_capacity(vars.len());
                for (v, t) in vars {
                    let fresh = format!("?b{}", env.len());
                    env.push((v.clone(), fresh.clone()));
                    renamed.push((fresh, t.clone()));
                }
                let body = go(body, env);
                env.truncate(depth);
                Form::Binder(*b, renamed, Box::new(body))
            }
        }
    }
    go(form, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn p(s: &str) -> Form {
        parse_form(s).expect("parse")
    }

    #[test]
    fn generated_name_recognition() {
        for name in [
            "asg$1",
            "fresh$12",
            "old$content",
            "content_1",
            "n_23",
            "arrayState_2",
        ] {
            assert!(is_generated_name(name), "{name} should be generated");
        }
        for name in ["content", "x", "first", "old", "size2", "_1", "a_b"] {
            assert!(!is_generated_name(name), "{name} should not be generated");
        }
    }

    #[test]
    fn substitution_collapses_chains() {
        let assumptions = vec![
            p("asg$1 = {}"),
            p("nodes_1 = asg$1"),
            p("old$first = first"),
        ];
        let sub = definition_substitution(&assumptions);
        assert_eq!(sub.get("nodes_1"), Some(&p("{}")));
        assert_eq!(sub.get("asg$1"), Some(&p("{}")));
        assert_eq!(sub.get("old$first"), Some(&p("first")));
    }

    #[test]
    fn substitution_ignores_developer_variables_and_cycles() {
        let assumptions = vec![p("size = card content"), p("a_1 = b_1"), p("b_1 = a_1")];
        let sub = definition_substitution(&assumptions);
        assert!(!sub.contains_key("size"));
        // The pair is mutually defined; both orientations are recorded but the cyclic
        // resolution is skipped, so applying the substitution once is still sound.
        assert!(sub.contains_key("a_1") || sub.contains_key("b_1"));
    }

    #[test]
    fn inline_definitions_discharges_copy_chains() {
        let sequent = Sequent::new(
            vec![p("asg$1 = null"), p("first_1 = asg$1"), p("p | q")],
            p("first_1 = null"),
        );
        let inlined = inline_definitions(&sequent);
        assert!(inlined.goal.is_true());
        assert_eq!(inlined.assumptions, vec![p("p | q")]);
    }

    #[test]
    fn inline_keeps_labels_and_non_trivial_assumptions() {
        let mut sequent = Sequent::new(
            vec![
                p("comment ''inv'' (size = card content)"),
                p("size_1 = size + 1"),
            ],
            p("size_1 = card content + 1"),
        );
        sequent.labels = vec!["post".to_string()];
        let inlined = inline_definitions(&sequent);
        assert_eq!(inlined.labels, vec!["post".to_string()]);
        assert_eq!(inlined.goal, p("size + 1 = card content + 1"));
        assert!(inlined
            .assumptions
            .iter()
            .any(|a| a.to_string().contains("card content")));
    }

    #[test]
    fn sorts_union_and_conjunction_operands() {
        assert_eq!(
            sort_commutative(&p("{x} Un content")),
            sort_commutative(&p("content Un {x}"))
        );
        assert_eq!(
            sort_commutative(&p("(a Un b) Un c")),
            sort_commutative(&p("c Un (b Un a)"))
        );
        assert_eq!(
            sort_commutative(&p("p & q & p")),
            sort_commutative(&p("q & p"))
        );
        assert_eq!(sort_commutative(&p("a = b")), sort_commutative(&p("b = a")));
    }

    #[test]
    fn sorting_preserves_non_commutative_operators() {
        assert_ne!(sort_commutative(&p("a - b")), sort_commutative(&p("b - a")));
        assert_ne!(
            sort_commutative(&p("a --> b")),
            sort_commutative(&p("b --> a"))
        );
    }

    #[test]
    fn canonicalize_identifies_ac_equal_set_updates() {
        let a = canonicalize(&p("{x} Un content = content Un {x}"));
        assert!(a.is_true());
        let b = canonicalize(&p("n : {n} Un nodes"));
        assert!(b.is_true());
    }

    #[test]
    fn alpha_normalize_identifies_renamed_binders() {
        assert_eq!(
            alpha_normalize(&p("ALL x. x : s --> x ~= null")),
            alpha_normalize(&p("ALL y. y : s --> y ~= null"))
        );
        // Nested binders and shadowing.
        assert_eq!(
            alpha_normalize(&p("EX a. a : s & (ALL a. a = a)")),
            alpha_normalize(&p("EX b. b : s & (ALL c. c = c)"))
        );
        // Free variables are untouched.
        assert_ne!(
            alpha_normalize(&p("EX v. v : content")),
            alpha_normalize(&p("EX v. v : nodes"))
        );
        assert_eq!(alpha_normalize(&p("x : s")), p("x : s"));
    }

    #[test]
    fn canonicalize_does_not_prove_distinct_formulas() {
        assert!(!canonicalize(&p("{x} Un content = content Un {y}")).is_true());
        assert!(!canonicalize(&p("a : b Un c")).is_true());
    }
}
