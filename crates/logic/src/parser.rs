//! Parser for the ASCII concrete syntax of Jahob specification formulas.
//!
//! The syntax follows the Isabelle/HOL-inspired ASCII notation that Jahob accepts in its
//! specification comments (the paper shows the mathematical rendering; developers type the
//! ASCII form, §2.1 footnote 1). Examples:
//!
//! ```text
//! ALL x. x : Node & x : alloc & x ~= null --> x..cnt = {(x..key, x..value)} Un x..next..cnt
//! content = old content - {(k0, result)} Un {(k0, v0)}
//! nodes = {n. n ~= null & rtrancl_pt (% u v. u..next = v) root n}
//! size = card content
//! tree [List.next]
//! ```
//!
//! The parser produces [`Form`] values; types of bound variables default to
//! [`Type::Var`] placeholders that are later resolved by [`crate::typecheck`].

use crate::form::{Const, Form, Ident};
use crate::types::Type;
use std::fmt;

/// An error produced while lexing or parsing a formula or type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input at which the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula from its ASCII concrete syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token if the input is not a
/// well-formed formula.
///
/// # Examples
///
/// ```
/// use jahob_logic::parser::parse_form;
/// let f = parse_form("ALL x. x : Node --> x..next ~= x").expect("parses");
/// assert_eq!(f.to_string(), "ALL x. x : Node --> ~(next x = x)");
/// ```
pub fn parse_form(input: &str) -> Result<Form, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_tyvar: 1000,
    };
    let f = p.parse_formula()?;
    p.expect_eof()?;
    Ok(f)
}

/// Parses a type from its concrete syntax, e.g. `"(obj * obj) set"` or `"obj => int"`.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a well-formed type.
pub fn parse_type(input: &str) -> Result<Type, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_tyvar: 1000,
    };
    let t = p.parse_type()?;
    p.expect_eof()?;
    Ok(t)
}

// ------------------------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    StrLit(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Dot,
    DotDot,
    DotBracket, // ".[" for array reads
    Colon,
    ColonColon,
    NotColon, // ~:
    Assign,   // :=
    Eq,
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Arrow,    // -->
    IffArrow, // <->
    Amp,
    Bar,
    Tilde,
    Plus,
    Minus,
    Star,
    Backslash,
    Percent,
    FunArrow, // => (types)
    Eof,
}

struct Lexed {
    tok: Tok,
    pos: usize,
}

fn lex(input: &str) -> Result<Vec<Lexed>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let tok = match c {
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '{' => {
                i += 1;
                Tok::LBrace
            }
            '}' => {
                i += 1;
                Tok::RBrace
            }
            '[' => {
                i += 1;
                Tok::LBracket
            }
            ']' => {
                i += 1;
                Tok::RBracket
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            '+' => {
                i += 1;
                Tok::Plus
            }
            '*' => {
                i += 1;
                Tok::Star
            }
            '\\' => {
                i += 1;
                Tok::Backslash
            }
            '%' => {
                i += 1;
                Tok::Percent
            }
            '&' => {
                i += 1;
                Tok::Amp
            }
            '|' => {
                i += 1;
                Tok::Bar
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    i += 2;
                    Tok::DotDot
                } else if bytes.get(i + 1) == Some(&b'[') {
                    i += 2;
                    Tok::DotBracket
                } else {
                    i += 1;
                    Tok::Dot
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b':') {
                    i += 2;
                    Tok::ColonColon
                } else if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Assign
                } else {
                    i += 1;
                    Tok::Colon
                }
            }
            '~' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Neq
                } else if bytes.get(i + 1) == Some(&b':') {
                    i += 2;
                    Tok::NotColon
                } else {
                    i += 1;
                    Tok::Tilde
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    Tok::FunArrow
                } else {
                    i += 1;
                    Tok::Eq
                }
            }
            '<' => {
                if input[i..].starts_with("<->") {
                    i += 3;
                    Tok::IffArrow
                } else if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::LtEq
                } else {
                    i += 1;
                    Tok::Lt
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::GtEq
                } else {
                    i += 1;
                    Tok::Gt
                }
            }
            '-' => {
                if input[i..].starts_with("-->") {
                    i += 3;
                    Tok::Arrow
                } else {
                    i += 1;
                    Tok::Minus
                }
            }
            '\'' => {
                // String literal delimited by two single quotes on each side: ''label''.
                if !input[i..].starts_with("''") {
                    return Err(ParseError {
                        message: "expected string literal starting with ''".into(),
                        position: i,
                    });
                }
                let rest = &input[i + 2..];
                match rest.find("''") {
                    Some(end) => {
                        let lit = rest[..end].to_string();
                        i += 2 + end + 2;
                        Tok::StrLit(lit)
                    }
                    None => {
                        return Err(ParseError {
                            message: "unterminated string literal".into(),
                            position: i,
                        })
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let n: i64 = input[i..j].parse().map_err(|_| ParseError {
                    message: "integer literal out of range".into(),
                    position: i,
                })?;
                i = j;
                Tok::Int(n)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_alphanumeric() || cj == '_' || cj == '$' {
                        j += 1;
                    } else if cj == '.'
                        && j + 1 < bytes.len()
                        && ((bytes[j + 1] as char).is_ascii_alphabetic() || bytes[j + 1] == b'_')
                        && bytes.get(j + 1) != Some(&b'.')
                        // ".." must remain a dereference token
                        && bytes.get(j.wrapping_sub(1)) != Some(&b'.')
                    {
                        // Qualified identifier such as `Node.next`; a single dot followed by
                        // a letter continues the identifier.
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = input[i..j].to_string();
                i = j;
                Tok::Ident(word)
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    position: i,
                })
            }
        };
        out.push(Lexed { tok, pos: start });
    }
    out.push(Lexed {
        tok: Tok::Eof,
        pos: input.len(),
    });
    Ok(out)
}

// ------------------------------------------------------------------------------ parser

struct Parser {
    tokens: Vec<Lexed>,
    pos: usize,
    next_tyvar: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        if self.pos + 1 < self.tokens.len() {
            &self.tokens[self.pos + 1].tok
        } else {
            &Tok::Eof
        }
    }

    fn here(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            position: self.here(),
        }
    }

    fn fresh_tyvar(&mut self) -> Type {
        self.next_tyvar += 1;
        Type::Var(self.next_tyvar)
    }

    // -- formulas ------------------------------------------------------------------

    fn parse_formula(&mut self) -> Result<Form, ParseError> {
        self.parse_iff()
    }

    fn parse_iff(&mut self) -> Result<Form, ParseError> {
        let mut lhs = self.parse_impl()?;
        while self.eat(&Tok::IffArrow) {
            let rhs = self.parse_impl()?;
            lhs = Form::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_impl(&mut self) -> Result<Form, ParseError> {
        let lhs = self.parse_or()?;
        if self.eat(&Tok::Arrow) {
            let rhs = self.parse_impl()?; // right associative
            Ok(Form::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Form, ParseError> {
        let mut parts = vec![self.parse_and()?];
        while self.eat(&Tok::Bar) {
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Form::or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<Form, ParseError> {
        let mut parts = vec![self.parse_not()?];
        while self.eat(&Tok::Amp) {
            parts.push(self.parse_not()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Form::and(parts)
        })
    }

    fn parse_not(&mut self) -> Result<Form, ParseError> {
        if self.eat(&Tok::Tilde) {
            Ok(Form::not(self.parse_not()?))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Form, ParseError> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Tok::Eq => Some(Ok(Const::Eq)),
            Tok::Neq => Some(Err(Const::Eq)),
            Tok::Lt => Some(Ok(Const::Lt)),
            Tok::LtEq => Some(Ok(Const::LtEq)),
            Tok::Gt => Some(Ok(Const::Gt)),
            Tok::GtEq => Some(Ok(Const::GtEq)),
            Tok::Colon => Some(Ok(Const::Elem)),
            Tok::NotColon => Some(Err(Const::Elem)),
            Tok::Ident(w) if w == "subseteq" => Some(Ok(Const::SubsetEq)),
            Tok::Ident(w) if w == "subset" => Some(Ok(Const::Subset)),
            _ => None,
        };
        match op {
            None => Ok(lhs),
            Some(signed) => {
                self.bump();
                let rhs = self.parse_additive()?;
                Ok(match signed {
                    Ok(c) => Form::app(Form::Const(c), vec![lhs, rhs]),
                    Err(c) => Form::not(Form::app(Form::Const(c), vec![lhs, rhs])),
                })
            }
        }
    }

    fn parse_additive(&mut self) -> Result<Form, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let c = match self.peek() {
                Tok::Plus => Const::Plus,
                Tok::Minus => Const::Minus,
                Tok::Backslash => Const::Diff,
                Tok::Ident(w) if w == "Un" => Const::Union,
                Tok::Ident(w) if w == "Int" => Const::Inter,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Form::app(Form::Const(c), vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Form, ParseError> {
        let mut lhs = self.parse_unary_minus()?;
        loop {
            let c = match self.peek() {
                Tok::Star => Const::Times,
                Tok::Ident(w) if w == "div" => Const::Div,
                Tok::Ident(w) if w == "mod" => Const::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary_minus()?;
            lhs = Form::app(Form::Const(c), vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn parse_unary_minus(&mut self) -> Result<Form, ParseError> {
        if self.eat(&Tok::Minus) {
            let operand = self.parse_unary_minus()?;
            Ok(match operand {
                Form::Const(Const::IntLit(n)) => Form::int(-n),
                other => Form::app(Form::Const(Const::UMinus), vec![other]),
            })
        } else {
            self.parse_application()
        }
    }

    /// Application by juxtaposition, plus function-update suffixes `f(x := v)`.
    fn parse_application(&mut self) -> Result<Form, ParseError> {
        let mut head = self.parse_postfix()?;
        // Special form: `tree [f1, ..., fn]`.
        if head == Form::Const(Const::Tree) && *self.peek() == Tok::LBracket {
            self.bump();
            let mut fields = Vec::new();
            if *self.peek() != Tok::RBracket {
                loop {
                    fields.push(self.parse_formula()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Tok::RBracket, "]")?;
            return Ok(Form::tree(fields));
        }
        loop {
            match self.peek() {
                // Function update or parenthesised argument.
                Tok::LParen => {
                    self.bump();
                    let first = self.parse_formula()?;
                    match self.peek() {
                        Tok::Assign => {
                            self.bump();
                            let value = self.parse_formula()?;
                            self.expect(&Tok::RParen, ")")?;
                            head = Form::field_write(head, first, value);
                        }
                        Tok::Comma => {
                            let mut comps = vec![first];
                            while self.eat(&Tok::Comma) {
                                comps.push(self.parse_formula()?);
                            }
                            self.expect(&Tok::RParen, ")")?;
                            let arg = self.parse_postfix_suffixes(Form::tuple(comps))?;
                            head = Form::app(head, vec![arg]);
                        }
                        _ => {
                            self.expect(&Tok::RParen, ")")?;
                            let arg = self.parse_postfix_suffixes(first)?;
                            head = Form::app(head, vec![arg]);
                        }
                    }
                }
                // Juxtaposed argument.
                t if starts_atom(t) => {
                    let arg = self.parse_postfix()?;
                    head = Form::app(head, vec![arg]);
                }
                _ => break,
            }
        }
        Ok(head)
    }

    /// Parses an atom followed by postfix `..field` and `.[index]` suffixes.
    fn parse_postfix(&mut self) -> Result<Form, ParseError> {
        let atom = self.parse_atom()?;
        self.parse_postfix_suffixes(atom)
    }

    fn parse_postfix_suffixes(&mut self, mut head: Form) -> Result<Form, ParseError> {
        loop {
            match self.peek() {
                Tok::DotDot => {
                    self.bump();
                    let field = match self.bump() {
                        Tok::Ident(name) => name,
                        other => {
                            return Err(self
                                .error(format!("expected field name after '..', found {other:?}")))
                        }
                    };
                    head = Form::field_read(Form::var(field), head);
                }
                Tok::DotBracket => {
                    self.bump();
                    let index = self.parse_formula()?;
                    self.expect(&Tok::RBracket, "]")?;
                    head = Form::array_read(Form::var("arrayState"), head, index);
                }
                _ => break,
            }
        }
        Ok(head)
    }

    fn parse_atom(&mut self) -> Result<Form, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Form::int(n))
            }
            Tok::StrLit(_) => Err(self
                .error("string literals may only appear immediately after `comment`".to_string())),
            Tok::Percent => {
                self.bump();
                let vars = self.parse_binder_vars()?;
                let body = self.parse_formula()?;
                Ok(Form::lambda(vars, body))
            }
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Err(self.error("empty parentheses".to_string()));
                }
                let first = self.parse_formula()?;
                if self.eat(&Tok::Comma) {
                    let mut comps = vec![first];
                    loop {
                        comps.push(self.parse_formula()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen, ")")?;
                    Ok(Form::tuple(comps))
                } else if self.eat(&Tok::ColonColon) {
                    let ty = self.parse_type()?;
                    self.expect(&Tok::RParen, ")")?;
                    Ok(Form::Typed(Box::new(first), ty))
                } else {
                    self.expect(&Tok::RParen, ")")?;
                    Ok(first)
                }
            }
            Tok::LBrace => {
                self.bump();
                self.parse_set_braces()
            }
            Tok::Ident(word) => {
                self.bump();
                self.parse_ident_atom(word)
            }
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }

    fn parse_ident_atom(&mut self, word: String) -> Result<Form, ParseError> {
        Ok(match word.as_str() {
            "ALL" => {
                let vars = self.parse_binder_vars()?;
                let body = self.parse_formula()?;
                Form::forall_many(vars, body)
            }
            "EX" => {
                let vars = self.parse_binder_vars()?;
                let body = self.parse_formula()?;
                Form::exists_many(vars, body)
            }
            "True" => Form::tt(),
            "False" => Form::ff(),
            "null" => Form::null(),
            "UNIV" => Form::Const(Const::UnivSet),
            "card" | "cardinality" => Form::Const(Const::Card),
            "old" => Form::Const(Const::Old),
            "tree" => Form::Const(Const::Tree),
            "rtrancl_pt" => Form::Const(Const::Rtrancl),
            "fieldWrite" => Form::Const(Const::FieldWrite),
            "fieldRead" => Form::Const(Const::FieldRead),
            "arrayRead" => Form::Const(Const::ArrayRead),
            "arrayWrite" => Form::Const(Const::ArrayWrite),
            "ite" => Form::Const(Const::Ite),
            "objlocs" => Form::Const(Const::ObjLocs),
            "theinv" => {
                // `theinv name` is a frontend-level shorthand; keep it as a marked
                // application so the resolver can expand it.
                match self.bump() {
                    Tok::Ident(name) => Form::app(Form::var("theinv"), vec![Form::var(name)]),
                    other => {
                        return Err(self.error(format!(
                            "expected invariant name after theinv, found {other:?}"
                        )))
                    }
                }
            }
            "comment" => {
                let label = match self.bump() {
                    Tok::StrLit(l) => l,
                    other => {
                        return Err(self
                            .error(format!("expected ''label'' after comment, found {other:?}")))
                    }
                };
                let body = self.parse_postfix()?;
                Form::comment(label, body)
            }
            _ => Form::var(word),
        })
    }

    /// Parses the contents of `{...}`: empty set, finite set display, or comprehension.
    fn parse_set_braces(&mut self) -> Result<Form, ParseError> {
        if self.eat(&Tok::RBrace) {
            return Ok(Form::empty_set());
        }
        // Comprehension `{x. F}`: a single identifier followed by a single dot.
        if let (Tok::Ident(v), Tok::Dot) = (self.peek().clone(), self.peek2().clone()) {
            self.bump();
            self.bump();
            let body = self.parse_formula()?;
            self.expect(&Tok::RBrace, "}")?;
            let ty = self.fresh_tyvar();
            return Ok(Form::comprehension(vec![(v, ty)], body));
        }
        // Comprehension over a tuple `{(x, y). F}`: lookahead for `). `.
        if *self.peek() == Tok::LParen {
            if let Some(vars) = self.try_parse_tuple_pattern() {
                let body = self.parse_formula()?;
                self.expect(&Tok::RBrace, "}")?;
                let vars = vars
                    .into_iter()
                    .map(|v| (v, self.fresh_tyvar()))
                    .collect::<Vec<_>>();
                return Ok(Form::comprehension(vars, body));
            }
        }
        // Finite set display.
        let mut elems = vec![self.parse_formula()?];
        while self.eat(&Tok::Comma) {
            elems.push(self.parse_formula()?);
        }
        self.expect(&Tok::RBrace, "}")?;
        Ok(Form::finite_set(elems))
    }

    /// Attempts to parse `(x, y, ...).` as a comprehension binder pattern. On failure the
    /// parser position is restored and `None` is returned.
    fn try_parse_tuple_pattern(&mut self) -> Option<Vec<Ident>> {
        let save = self.pos;
        if !self.eat(&Tok::LParen) {
            return None;
        }
        let mut names = Vec::new();
        loop {
            match self.bump() {
                Tok::Ident(v) => names.push(v),
                _ => {
                    self.pos = save;
                    return None;
                }
            }
            match self.bump() {
                Tok::Comma => continue,
                Tok::RParen => break,
                _ => {
                    self.pos = save;
                    return None;
                }
            }
        }
        if names.len() >= 2 && self.eat(&Tok::Dot) {
            Some(names)
        } else {
            self.pos = save;
            None
        }
    }

    /// Parses binder variables up to and including the terminating dot:
    /// `x y z.`, `x::obj.`, `(x::obj) (y::int).`
    fn parse_binder_vars(&mut self) -> Result<Vec<(Ident, Type)>, ParseError> {
        let mut vars = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::Ident(v) => {
                    self.bump();
                    if self.eat(&Tok::ColonColon) {
                        let ty = self.parse_type_atom_seq()?;
                        vars.push((v, ty));
                    } else {
                        let ty = self.fresh_tyvar();
                        vars.push((v, ty));
                    }
                }
                Tok::LParen => {
                    self.bump();
                    let name = match self.bump() {
                        Tok::Ident(v) => v,
                        other => {
                            return Err(
                                self.error(format!("expected binder variable, found {other:?}"))
                            )
                        }
                    };
                    self.expect(&Tok::ColonColon, "::")?;
                    let ty = self.parse_type()?;
                    self.expect(&Tok::RParen, ")")?;
                    vars.push((name, ty));
                }
                Tok::Dot => {
                    self.bump();
                    break;
                }
                other => {
                    return Err(
                        self.error(format!("expected binder variable or '.', found {other:?}"))
                    )
                }
            }
            if self.eat(&Tok::Dot) {
                break;
            }
        }
        if vars.is_empty() {
            return Err(self.error("binder with no variables".to_string()));
        }
        Ok(vars)
    }

    // -- types ---------------------------------------------------------------------

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        // Function types are right associative and have the lowest precedence.
        let lhs = self.parse_type_prod()?;
        if self.eat(&Tok::FunArrow) {
            let rhs = self.parse_type()?;
            Ok(Type::fun(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_type_prod(&mut self) -> Result<Type, ParseError> {
        let mut parts = vec![self.parse_type_postfix()?];
        while self.eat(&Tok::Star) {
            parts.push(self.parse_type_postfix()?);
        }
        Ok(Type::prod(parts))
    }

    fn parse_type_postfix(&mut self) -> Result<Type, ParseError> {
        let mut t = self.parse_type_atom()?;
        loop {
            match self.peek() {
                Tok::Ident(w) if w == "set" => {
                    self.bump();
                    t = Type::set(t);
                }
                _ => break,
            }
        }
        Ok(t)
    }

    /// Parses a type for binder annotations without parentheses, e.g. `ALL x::obj set. F`.
    fn parse_type_atom_seq(&mut self) -> Result<Type, ParseError> {
        self.parse_type_postfix()
    }

    fn parse_type_atom(&mut self) -> Result<Type, ParseError> {
        match self.bump() {
            Tok::Ident(w) => match w.as_str() {
                "bool" => Ok(Type::Bool),
                "int" => Ok(Type::Int),
                "obj" => Ok(Type::Obj),
                "objset" => Ok(Type::obj_set()),
                other => Err(self.error(format!("unknown type name {other:?}"))),
            },
            Tok::LParen => {
                let t = self.parse_type()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(t)
            }
            other => Err(self.error(format!("expected a type, found {other:?}"))),
        }
    }
}

/// Tokens that may begin an atomic expression (used to detect juxtaposed application
/// arguments). Identifier-spelled infix operators must not be mistaken for arguments.
fn starts_atom(t: &Tok) -> bool {
    match t {
        Tok::Int(_) | Tok::LBrace | Tok::Percent => true,
        Tok::Ident(w) => !matches!(
            w.as_str(),
            "Un" | "Int" | "div" | "mod" | "subset" | "subseteq" | "set"
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form::{Binder, Form};

    fn roundtrip(s: &str) -> String {
        parse_form(s)
            .unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
            .to_string()
    }

    #[test]
    fn parses_propositional_structure() {
        assert_eq!(roundtrip("p & q --> r | ~p"), "p & q --> r | ~p");
        assert_eq!(roundtrip("p <-> q & r"), "p <-> q & r");
        assert_eq!(roundtrip("~(p & q)"), "~(p & q)");
    }

    #[test]
    fn implication_is_right_associative() {
        let f = parse_form("p --> q --> r").expect("parses");
        let (_, rhs) = f.as_implication().expect("impl");
        assert!(rhs.as_implication().is_some());
    }

    #[test]
    fn parses_quantifiers_and_field_deref() {
        assert_eq!(
            roundtrip("ALL x. x : Node & x ~= null --> x..next ~= x"),
            "ALL x. x : Node & ~(x = null) --> ~(next x = x)"
        );
    }

    #[test]
    fn parses_assoc_list_postcondition() {
        let s = "content = old content - {(k0, result)} Un {(k0, v0)} & \
                 (result = null --> ~(EX v. (k0, v) : old content)) & \
                 (result ~= null --> (k0, result) : old content)";
        let f = parse_form(s).expect("parses");
        assert_eq!(f.conjuncts().len(), 3);
        assert!(f.contains_const(&Const::Old));
    }

    #[test]
    fn parses_cnt_invariant() {
        let s = "ALL x. x : Node & x : alloc & x ~= null --> \
                 x..cnt = {(x..key, x..value)} Un x..next..cnt & \
                 (ALL v. (x..key, v) ~: x..next..cnt)";
        let f = parse_form(s).expect("parses");
        assert!(f.contains_binder(Binder::Forall));
        assert!(f.contains_const(&Const::Union));
    }

    #[test]
    fn parses_comprehensions_and_rtrancl() {
        let s = "nodes = {n. n ~= null & rtrancl_pt (% u v. u..next = v) root n}";
        let f = parse_form(s).expect("parses");
        assert!(f.contains_const(&Const::Rtrancl));
        assert!(f.contains_binder(Binder::Comprehension));
        assert!(f.contains_binder(Binder::Lambda));
    }

    #[test]
    fn parses_pair_comprehension() {
        let f = parse_form("content = {(k, v). (k, v) : raw}").expect("parses");
        match f.as_eq() {
            Some((_, rhs)) => match rhs {
                Form::Binder(Binder::Comprehension, vars, _) => assert_eq!(vars.len(), 2),
                other => panic!("expected comprehension, got {other}"),
            },
            None => panic!("expected equality"),
        }
    }

    #[test]
    fn parses_cardinality_and_tree() {
        assert_eq!(roundtrip("size = card content"), "size = card content");
        let f = parse_form("tree [List.next]").expect("parses");
        assert_eq!(f, Form::tree(vec![Form::var("List.next")]));
        let f2 = parse_form("tree [Node.left, Node.right]").expect("parses");
        assert_eq!(
            f2,
            Form::tree(vec![Form::var("Node.left"), Form::var("Node.right")])
        );
    }

    #[test]
    fn parses_function_update() {
        let f = parse_form("next(x := y)").expect("parses");
        assert_eq!(
            f,
            Form::field_write(Form::var("next"), Form::var("x"), Form::var("y"))
        );
        let g = parse_form("cnt = (old cnt)(n1 := {x} Un old content)").expect("parses");
        assert!(g.contains_const(&Const::FieldWrite));
    }

    #[test]
    fn parses_array_reads() {
        let f = parse_form("a.[i] = null").expect("parses");
        let (lhs, _) = f.as_eq().expect("eq");
        assert!(lhs.as_app_of(&Const::ArrayRead).is_some());
    }

    #[test]
    fn parses_comment_labels() {
        let f = parse_form("comment ''xFresh'' (x ~: content)").expect("parses");
        let (labels, inner) = f.strip_comments();
        assert_eq!(labels, vec!["xFresh"]);
        assert!(inner.as_negation().is_some());
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        assert_eq!(roundtrip("a + b * c - 2"), "a + b * c - 2");
        assert_eq!(roundtrip("size = old size + 1"), "size = old size + 1");
        assert_eq!(roundtrip("-x < 3"), "uminus x < 3");
        assert_eq!(roundtrip("i mod 2 = 0"), "i mod 2 = 0");
    }

    #[test]
    fn parses_typed_binders() {
        let f = parse_form("ALL x::obj. x : alloc").expect("parses");
        match &f {
            Form::Binder(Binder::Forall, vars, _) => assert_eq!(vars[0].1, Type::Obj),
            other => panic!("unexpected {other:?}"),
        }
        let g = parse_form("ALL (s::obj set) x. x : s | x ~: s").expect("parses");
        match &g {
            Form::Binder(Binder::Forall, vars, _) => {
                assert_eq!(vars[0].1, Type::obj_set());
                assert_eq!(vars.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_qualified_identifiers() {
        let f = parse_form("List.root ~= null").expect("parses");
        assert!(matches!(
            f.as_negation().and_then(Form::as_eq),
            Some((Form::Var(v), _)) if v == "List.root"
        ));
    }

    #[test]
    fn parses_types() {
        assert_eq!(parse_type("obj").expect("t"), Type::Obj);
        assert_eq!(parse_type("(obj * obj) set").expect("t"), Type::obj_rel());
        assert_eq!(parse_type("obj => obj").expect("t"), Type::obj_field());
        assert_eq!(parse_type("objset").expect("t"), Type::obj_set());
        assert_eq!(
            parse_type("obj => int => obj").expect("t"),
            Type::obj_array_state()
        );
        assert_eq!(
            parse_type("obj => obj => bool").expect("t"),
            Type::fun_n(&[Type::Obj, Type::Obj], Type::Bool)
        );
    }

    #[test]
    fn reports_errors_with_position() {
        let err = parse_form("p &").expect_err("should fail");
        assert!(err.position >= 2);
        assert!(parse_form("ALL . p").is_err());
        assert!(parse_form("{x. }").is_err());
        assert!(parse_type("obj =>").is_err());
    }

    #[test]
    fn set_difference_and_union_have_equal_precedence() {
        // `old content - {(k0, result)} Un {(k0, v0)}` parses left to right.
        let f = parse_form("old content - {(k0, result)} Un {(k0, v0)}").expect("parses");
        assert!(f.as_app_of(&Const::Union).is_some());
    }
}
