//! Cheap syntactic feature extraction for prover routing (§5.2).
//!
//! The premise of the integrated reasoning system is that each specialized logic has a
//! *syntactically recognizable* fragment: cardinality and set-algebra atoms belong to
//! BAPA, monadic membership/reachability shape to MONA/WS1S, ground equality and
//! arithmetic to the SMT prover, general quantifier structure to first-order
//! resolution. This module collects those syntactic signals in **one traversal** of a
//! sequent, so a dispatcher can order (and prune) its prover cascade per obligation
//! instead of using one fixed global order.
//!
//! The extraction is deliberately shallow — counts of constants and binders, no
//! typechecking and no normalisation — because it runs on the hot path in front of
//! every prover attempt. Everything here is advisory: a router built on these counts
//! must keep the pruned provers as a fallback, since the features over-approximate
//! what each prover can actually discharge.

use crate::form::{Binder, Const, Form};
use crate::sequent::Sequent;

/// Syntactic features of one sequent, collected in a single traversal of its
/// assumptions and goal by [`SequentFeatures::of`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentFeatures {
    /// `card` applications — the signature atom of the BAPA fragment.
    pub card_atoms: usize,
    /// Set-algebra constants: `Un`, `Int`, `\`, subset relations, set displays, `{}`,
    /// `UNIV` and memberships (membership is counted here *and* in
    /// [`memberships`](Self::memberships)).
    pub set_atoms: usize,
    /// Membership atoms `x : S` alone — the atom shared by the monadic (MONA) and
    /// set-algebra (BAPA) fragments.
    pub memberships: usize,
    /// Arithmetic constants: `+`, `-`, `*`, `div`, `mod`, unary minus, integer
    /// comparisons and integer literals.
    pub arith_atoms: usize,
    /// Equality applications (`=` over any type).
    pub equalities: usize,
    /// Reachability and shape atoms: `rtrancl_pt` and `tree [...]` — MONA's specialty.
    pub reachability_atoms: usize,
    /// `ALL`/`EX` binders.
    pub quantifiers: usize,
    /// Higher-order binders (lambdas and set comprehensions) — outside every
    /// first-order fragment until the approximation pass rewrites them.
    pub lambdas: usize,
    /// Tuple constructions — relational (non-monadic) state such as
    /// `(k, v) : content`.
    pub tuples: usize,
    /// Field/array state operators: `fieldRead`/`fieldWrite`/`arrayRead`/`arrayWrite`.
    pub field_ops: usize,
    /// Total node count of the sequent (assumptions + goal).
    pub size: usize,
}

impl SequentFeatures {
    /// Collects the features of `sequent` in one pass over its assumptions and goal.
    pub fn of(sequent: &Sequent) -> SequentFeatures {
        let mut features = SequentFeatures::default();
        for assumption in &sequent.assumptions {
            features.visit(assumption);
        }
        features.visit(&sequent.goal);
        features
    }

    /// Collects the features of a single formula (used by tests and by callers that
    /// score goals separately from assumptions).
    pub fn of_form(form: &Form) -> SequentFeatures {
        let mut features = SequentFeatures::default();
        features.visit(form);
        features
    }

    /// `true` when the sequent is pure propositional/equational structure: no sets,
    /// no arithmetic, no quantifiers, no reachability, no field state.
    pub fn is_propositional(&self) -> bool {
        self.card_atoms == 0
            && self.set_atoms == 0
            && self.arith_atoms == 0
            && self.reachability_atoms == 0
            && self.quantifiers == 0
            && self.lambdas == 0
            && self.field_ops == 0
    }

    /// `true` when the sequent has no quantifiers or higher-order binders — the ground
    /// fragment the SMT prover decides without instantiation heuristics.
    pub fn is_ground(&self) -> bool {
        self.quantifiers == 0 && self.lambdas == 0
    }

    /// The coarse discrete [`FeatureBucket`] this sequent's features fall into — the
    /// key the measured cost model aggregates attempt outcomes under.
    pub fn bucket(&self) -> FeatureBucket {
        let mut bits = 0u8;
        if self.card_atoms > 0 {
            bits |= FeatureBucket::CARD;
        }
        if self.set_atoms > 0 {
            bits |= FeatureBucket::SETS;
        }
        if self.arith_atoms > 0 {
            bits |= FeatureBucket::ARITH;
        }
        if self.reachability_atoms > 0 {
            bits |= FeatureBucket::REACH;
        }
        if self.quantifiers > 0 {
            bits |= FeatureBucket::QUANT;
        }
        if self.lambdas + self.tuples > 0 {
            bits |= FeatureBucket::HIGHER;
        }
        FeatureBucket::from_bits(bits)
    }

    fn visit(&mut self, form: &Form) {
        self.size += 1;
        match form {
            Form::Var(_) => {}
            Form::Const(c) => self.visit_const(c),
            Form::App(fun, args) => {
                self.visit(fun);
                for a in args {
                    self.visit(a);
                }
            }
            Form::Binder(binder, vars, body) => {
                self.size += vars.len();
                match binder {
                    Binder::Forall | Binder::Exists => self.quantifiers += 1,
                    Binder::Lambda | Binder::Comprehension => self.lambdas += 1,
                }
                self.visit(body);
            }
            Form::Typed(inner, _) => {
                // `size` counts the ascription node itself; the payload is recursive.
                self.visit(inner);
            }
        }
    }

    fn visit_const(&mut self, c: &Const) {
        match c {
            Const::Card => self.card_atoms += 1,
            Const::Elem => {
                self.memberships += 1;
                self.set_atoms += 1;
            }
            Const::Union
            | Const::Inter
            | Const::Diff
            | Const::Subset
            | Const::SubsetEq
            | Const::FiniteSet
            | Const::EmptySet
            | Const::UnivSet => self.set_atoms += 1,
            Const::Plus
            | Const::Minus
            | Const::Times
            | Const::Div
            | Const::Mod
            | Const::UMinus
            | Const::Lt
            | Const::LtEq
            | Const::Gt
            | Const::GtEq
            | Const::IntLit(_) => self.arith_atoms += 1,
            Const::Eq => self.equalities += 1,
            Const::Rtrancl | Const::Tree => self.reachability_atoms += 1,
            Const::Tuple => self.tuples += 1,
            Const::FieldRead | Const::FieldWrite | Const::ArrayRead | Const::ArrayWrite => {
                self.field_ops += 1
            }
            _ => {}
        }
    }
}

/// A coarse discretisation of [`SequentFeatures`] used as the aggregation key of the
/// dispatcher's measured cost model: six presence bits (cardinality, set algebra,
/// arithmetic, reachability, quantifiers, higher-order/relational structure) give 64
/// buckets — fine enough to separate the fragments the routing decision actually
/// hinges on, coarse enough that a few suite runs calibrate every bucket that occurs.
///
/// Buckets have a stable, human-readable tag (`card+set+arith`, `plain` for the empty
/// bucket) that round-trips through [`FeatureBucket::from_tag`] so the cost model can
/// persist them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureBucket(u8);

impl FeatureBucket {
    /// Sequent contains `card` atoms.
    pub const CARD: u8 = 1 << 0;
    /// Sequent contains set-algebra atoms (unions, memberships, displays…).
    pub const SETS: u8 = 1 << 1;
    /// Sequent contains arithmetic atoms.
    pub const ARITH: u8 = 1 << 2;
    /// Sequent contains reachability/shape atoms (`rtrancl_pt`, `tree`).
    pub const REACH: u8 = 1 << 3;
    /// Sequent contains `ALL`/`EX` binders.
    pub const QUANT: u8 = 1 << 4;
    /// Sequent contains lambdas, comprehensions or tuples.
    pub const HIGHER: u8 = 1 << 5;

    const ALL: u8 =
        Self::CARD | Self::SETS | Self::ARITH | Self::REACH | Self::QUANT | Self::HIGHER;
    const NAMES: [(u8, &'static str); 6] = [
        (Self::CARD, "card"),
        (Self::SETS, "set"),
        (Self::ARITH, "arith"),
        (Self::REACH, "reach"),
        (Self::QUANT, "quant"),
        (Self::HIGHER, "ho"),
    ];

    /// Builds a bucket from raw presence bits; bits outside the six defined signals
    /// are masked off, so every `u8` maps to a valid bucket.
    pub fn from_bits(bits: u8) -> FeatureBucket {
        FeatureBucket(bits & Self::ALL)
    }

    /// The raw presence bits.
    pub fn bits(&self) -> u8 {
        self.0
    }

    /// The stable textual tag: `+`-joined signal names in declaration order, or
    /// `plain` for the empty bucket (a propositional/equational sequent).
    pub fn tag(&self) -> String {
        let names: Vec<&str> = Self::NAMES
            .iter()
            .filter(|(bit, _)| self.0 & bit != 0)
            .map(|(_, name)| *name)
            .collect();
        if names.is_empty() {
            "plain".to_string()
        } else {
            names.join("+")
        }
    }

    /// Parses a tag produced by [`FeatureBucket::tag`]. Returns `None` for unknown
    /// signal names, so persisted cost models from future bucket schemas are rejected
    /// rather than silently misfiled.
    pub fn from_tag(tag: &str) -> Option<FeatureBucket> {
        if tag == "plain" {
            return Some(FeatureBucket(0));
        }
        let mut bits = 0u8;
        for part in tag.split('+') {
            let (bit, _) = Self::NAMES.iter().find(|(_, name)| *name == part)?;
            bits |= bit;
        }
        Some(FeatureBucket(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn seq(assumptions: &[&str], goal: &str) -> Sequent {
        Sequent::new(
            assumptions
                .iter()
                .map(|a| parse_form(a).expect("parse"))
                .collect(),
            parse_form(goal).expect("parse"),
        )
    }

    #[test]
    fn cardinality_sequent_shows_bapa_signals() {
        let f = SequentFeatures::of(&seq(
            &["size = card content", "x ~: content"],
            "size + 1 = card (content Un {x})",
        ));
        assert_eq!(f.card_atoms, 2);
        assert!(f.set_atoms >= 2, "membership + union + display: {f:?}");
        assert!(f.arith_atoms >= 1);
        assert!(f.is_ground());
        assert!(!f.is_propositional());
    }

    #[test]
    fn monadic_sequent_shows_membership_and_quantifier_signals() {
        let f = SequentFeatures::of(&seq(
            &["ALL x. x : nodes --> x : alloc", "n : nodes"],
            "n : alloc",
        ));
        assert_eq!(f.quantifiers, 1);
        assert_eq!(f.memberships, 4);
        assert_eq!(f.card_atoms, 0);
        assert_eq!(f.arith_atoms, 0);
        assert_eq!(f.tuples, 0);
    }

    #[test]
    fn relational_membership_counts_tuples() {
        let f = SequentFeatures::of(&seq(&[], "(k, v) : content"));
        assert_eq!(f.tuples, 1);
        assert_eq!(f.memberships, 1);
    }

    #[test]
    fn ground_arith_is_ground_and_arithmetical() {
        let f = SequentFeatures::of(&seq(&["x = y + 1", "0 <= y"], "1 <= x"));
        assert!(f.is_ground());
        assert!(f.arith_atoms >= 3, "{f:?}");
        assert_eq!(f.set_atoms, 0);
        assert_eq!(f.card_atoms, 0);
    }

    #[test]
    fn propositional_sequent_is_propositional() {
        let f = SequentFeatures::of(&seq(&["p & q"], "q"));
        assert!(f.is_propositional());
        assert!(f.is_ground());
    }

    #[test]
    fn reachability_and_comprehension_are_detected() {
        let f = SequentFeatures::of(&seq(
            &["rtrancl_pt (% x y. x..next = y) root n"],
            "n : {z. z : nodes}",
        ));
        assert_eq!(f.reachability_atoms, 1);
        assert!(f.lambdas >= 2, "lambda + comprehension: {f:?}");
        assert!(!f.is_ground());
    }

    #[test]
    fn buckets_separate_the_fragments() {
        let card = SequentFeatures::of(&seq(&["size = card content"], "size >= 0")).bucket();
        let reach =
            SequentFeatures::of(&seq(&["rtrancl_pt (% x y. x..next = y) root n"], "p")).bucket();
        let plain = SequentFeatures::of(&seq(&["p & q"], "q")).bucket();
        assert_ne!(card, reach);
        assert_ne!(card, plain);
        assert_eq!(plain, FeatureBucket::from_bits(0));
        assert_ne!(card.bits() & FeatureBucket::CARD, 0);
        assert_ne!(reach.bits() & FeatureBucket::REACH, 0);
    }

    #[test]
    fn bucket_tags_round_trip() {
        for bits in 0u8..64 {
            let bucket = FeatureBucket::from_bits(bits);
            assert_eq!(
                FeatureBucket::from_tag(&bucket.tag()),
                Some(bucket),
                "tag {:?} failed to round-trip",
                bucket.tag()
            );
        }
        assert_eq!(FeatureBucket::from_bits(0).tag(), "plain");
        assert_eq!(FeatureBucket::from_tag("no-such-signal"), None);
        assert_eq!(FeatureBucket::from_tag("card+bogus"), None);
    }

    #[test]
    fn out_of_range_bits_are_masked() {
        assert_eq!(
            FeatureBucket::from_bits(0xFF),
            FeatureBucket::from_bits(0x3F)
        );
    }

    #[test]
    fn size_grows_with_the_sequent() {
        let small = SequentFeatures::of(&seq(&[], "p"));
        let large = SequentFeatures::of(&seq(&["p & q & r", "s | t"], "p & s"));
        assert!(small.size < large.size);
    }
}
