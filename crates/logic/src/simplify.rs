//! Logical simplification and normal forms.
//!
//! The verification-condition generator produces large formulas with many trivially true
//! or redundant parts; the splitter and the syntactic prover (§6.1) rely on the
//! simplifications here. The provers use [`nnf`] (negation normal form) as the first step
//! of their translations.

use crate::form::{Binder, Const, Form};
use crate::subst::beta_reduce;

/// Simplifies a formula bottom-up: folds boolean constants, removes double negations,
/// collapses trivial equalities and set operations with neutral elements, reduces
/// if-then-else with constant conditions, and beta-reduces lambda redexes.
///
/// The result is logically equivalent to the input.
pub fn simplify(form: &Form) -> Form {
    let f = beta_reduce(form);
    simp(&f)
}

fn simp(form: &Form) -> Form {
    match form {
        Form::Var(_) | Form::Const(_) => form.clone(),
        Form::Typed(f, t) => Form::Typed(Box::new(simp(f)), t.clone()),
        Form::Binder(b, vars, body) => {
            let body = simp(body);
            match b {
                Binder::Forall => Form::forall_many(vars.clone(), body),
                Binder::Exists => Form::exists_many(vars.clone(), body),
                _ => Form::Binder(*b, vars.clone(), Box::new(body)),
            }
        }
        Form::App(fun, args) => {
            let fun = simp(fun);
            let args: Vec<Form> = args.iter().map(simp).collect();
            simp_app(fun, args)
        }
    }
}

fn simp_app(fun: Form, args: Vec<Form>) -> Form {
    if let Form::Const(c) = &fun {
        match (c, args.as_slice()) {
            (Const::And, _) => return Form::and(args),
            (Const::Or, _) => return Form::or(args),
            (Const::Not, [f]) => return Form::not(f.clone()),
            (Const::Impl, [l, r]) => return Form::implies(l.clone(), r.clone()),
            (Const::Iff, [l, r]) => {
                if l == r {
                    return Form::tt();
                }
                if l.is_true() {
                    return r.clone();
                }
                if r.is_true() {
                    return l.clone();
                }
                if l.is_false() {
                    return Form::not(r.clone());
                }
                if r.is_false() {
                    return Form::not(l.clone());
                }
            }
            (Const::Eq, [l, r]) if l == r => return Form::tt(),
            (Const::Eq, [Form::Const(Const::IntLit(a)), Form::Const(Const::IntLit(b))]) => {
                return Form::Const(Const::BoolLit(a == b));
            }
            // Boolean equality with a literal collapses to the formula (or its negation):
            // `f = True` is `f`, `f = False` is `~f`.
            (Const::Eq, [f, Form::Const(Const::BoolLit(true))])
            | (Const::Eq, [Form::Const(Const::BoolLit(true)), f]) => return f.clone(),
            (Const::Eq, [f, Form::Const(Const::BoolLit(false))])
            | (Const::Eq, [Form::Const(Const::BoolLit(false)), f]) => return Form::not(f.clone()),
            // HOL equality between boolean-valued (formula-shaped) operands is a
            // bi-implication; normalising it to `<->` lets the propositional machinery of
            // the provers see through it.
            (Const::Eq, [l, r]) if is_formula_shaped(l) || is_formula_shaped(r) => {
                return simp_app(Form::Const(Const::Iff), vec![l.clone(), r.clone()]);
            }
            (Const::Eq, [Form::Const(Const::Null), Form::Const(Const::Null)]) => {
                return Form::tt();
            }
            (Const::Lt, [Form::Const(Const::IntLit(a)), Form::Const(Const::IntLit(b))]) => {
                return Form::Const(Const::BoolLit(a < b));
            }
            (Const::LtEq, [Form::Const(Const::IntLit(a)), Form::Const(Const::IntLit(b))]) => {
                return Form::Const(Const::BoolLit(a <= b));
            }
            (Const::Gt, [Form::Const(Const::IntLit(a)), Form::Const(Const::IntLit(b))]) => {
                return Form::Const(Const::BoolLit(a > b));
            }
            (Const::GtEq, [Form::Const(Const::IntLit(a)), Form::Const(Const::IntLit(b))]) => {
                return Form::Const(Const::BoolLit(a >= b));
            }
            (Const::Plus, [Form::Const(Const::IntLit(a)), Form::Const(Const::IntLit(b))]) => {
                return Form::int(a + b);
            }
            (Const::Minus, [Form::Const(Const::IntLit(a)), Form::Const(Const::IntLit(b))]) => {
                return Form::int(a - b);
            }
            (Const::Plus, [x, Form::Const(Const::IntLit(0))]) => return x.clone(),
            (Const::Plus, [Form::Const(Const::IntLit(0)), x]) => return x.clone(),
            (Const::Minus, [x, Form::Const(Const::IntLit(0))]) => return x.clone(),
            (Const::Ite, [c, t, e]) => {
                if c.is_true() {
                    return t.clone();
                }
                if c.is_false() {
                    return e.clone();
                }
                if t == e {
                    return t.clone();
                }
            }
            (Const::Elem, [_, Form::Const(Const::EmptySet)]) => return Form::ff(),
            (Const::Elem, [_, Form::Const(Const::UnivSet)]) => return Form::tt(),
            (Const::Elem, [x, s]) => {
                if let Some(elems) = s.as_app_of(&Const::FiniteSet) {
                    // x : {a} simplifies to x = a (and similarly for larger displays).
                    return Form::or(
                        elems
                            .iter()
                            .map(|e| Form::eq(x.clone(), e.clone()))
                            .collect(),
                    );
                }
            }
            (Const::Union, [Form::Const(Const::EmptySet), x]) => return x.clone(),
            (Const::Union, [x, Form::Const(Const::EmptySet)]) => return x.clone(),
            (Const::Inter, [Form::Const(Const::EmptySet), _]) => return Form::empty_set(),
            (Const::Inter, [_, Form::Const(Const::EmptySet)]) => return Form::empty_set(),
            (Const::Diff, [x, Form::Const(Const::EmptySet)]) => return x.clone(),
            (Const::Union, [x, y]) | (Const::Inter, [x, y]) if x == y => return x.clone(),
            (Const::SubsetEq, [Form::Const(Const::EmptySet), _]) => return Form::tt(),
            (Const::SubsetEq, [x, y]) if x == y => return Form::tt(),
            (Const::Comment(_), [f]) if f.is_true() => return Form::tt(),
            _ => {}
        }
    }
    Form::app(fun, args)
}

/// Returns `true` for expressions that are syntactically boolean-valued formulas:
/// propositional connectives, comparisons, membership/subset atoms, equalities,
/// quantified formulas and boolean literals.
pub fn is_formula_shaped(f: &Form) -> bool {
    match f {
        Form::Const(Const::BoolLit(_)) => true,
        Form::Binder(Binder::Forall | Binder::Exists, _, _) => true,
        Form::Typed(inner, t) => *t == crate::types::Type::Bool || is_formula_shaped(inner),
        Form::App(head, _) => matches!(
            head.as_ref(),
            Form::Const(
                Const::And
                    | Const::Or
                    | Const::Not
                    | Const::Impl
                    | Const::Iff
                    | Const::Eq
                    | Const::Lt
                    | Const::LtEq
                    | Const::Gt
                    | Const::GtEq
                    | Const::Elem
                    | Const::Subset
                    | Const::SubsetEq
                    | Const::Rtrancl
                    | Const::Tree
            )
        ),
        _ => false,
    }
}

/// Converts a formula to negation normal form: negations pushed to atoms, implications
/// and bi-implications expanded, `ite` over booleans expanded. Quantifiers are preserved
/// (and dualised under negation).
pub fn nnf(form: &Form) -> Form {
    nnf_pos(&simplify(form))
}

fn nnf_pos(form: &Form) -> Form {
    match form {
        Form::App(fun, args) => {
            if let Form::Const(c) = fun.as_ref() {
                match (c, args.as_slice()) {
                    (Const::Not, [f]) => return nnf_neg(f),
                    (Const::And, _) => return Form::and(args.iter().map(nnf_pos).collect()),
                    (Const::Or, _) => return Form::or(args.iter().map(nnf_pos).collect()),
                    (Const::Impl, [l, r]) => {
                        return Form::or(vec![nnf_neg(l), nnf_pos(r)]);
                    }
                    (Const::Iff, [l, r]) => {
                        return Form::and(vec![
                            Form::or(vec![nnf_neg(l), nnf_pos(r)]),
                            Form::or(vec![nnf_pos(l), nnf_neg(r)]),
                        ]);
                    }
                    (Const::Comment(_), [f]) => return nnf_pos(f),
                    _ => {}
                }
            }
            form.clone()
        }
        Form::Binder(Binder::Forall, vars, body) => Form::forall_many(vars.clone(), nnf_pos(body)),
        Form::Binder(Binder::Exists, vars, body) => Form::exists_many(vars.clone(), nnf_pos(body)),
        _ => form.clone(),
    }
}

fn nnf_neg(form: &Form) -> Form {
    match form {
        Form::Const(Const::BoolLit(b)) => Form::Const(Const::BoolLit(!b)),
        Form::App(fun, args) => {
            if let Form::Const(c) = fun.as_ref() {
                match (c, args.as_slice()) {
                    (Const::Not, [f]) => return nnf_pos(f),
                    (Const::And, _) => return Form::or(args.iter().map(nnf_neg).collect()),
                    (Const::Or, _) => return Form::and(args.iter().map(nnf_neg).collect()),
                    (Const::Impl, [l, r]) => {
                        return Form::and(vec![nnf_pos(l), nnf_neg(r)]);
                    }
                    (Const::Iff, [l, r]) => {
                        return Form::or(vec![
                            Form::and(vec![nnf_pos(l), nnf_neg(r)]),
                            Form::and(vec![nnf_neg(l), nnf_pos(r)]),
                        ]);
                    }
                    (Const::Comment(_), [f]) => return nnf_neg(f),
                    _ => {}
                }
            }
            Form::not(form.clone())
        }
        Form::Binder(Binder::Forall, vars, body) => Form::exists_many(vars.clone(), nnf_neg(body)),
        Form::Binder(Binder::Exists, vars, body) => Form::forall_many(vars.clone(), nnf_neg(body)),
        _ => Form::not(form.clone()),
    }
}

/// Removes all `comment` labels (deeply), keeping the labelled formulas.
pub fn strip_comments_deep(form: &Form) -> Form {
    match form {
        Form::Var(_) | Form::Const(_) => form.clone(),
        Form::Typed(f, t) => Form::Typed(Box::new(strip_comments_deep(f)), t.clone()),
        Form::Binder(b, vars, body) => {
            Form::Binder(*b, vars.clone(), Box::new(strip_comments_deep(body)))
        }
        Form::App(fun, args) => {
            if let Form::Const(Const::Comment(_)) = fun.as_ref() {
                if args.len() == 1 {
                    return strip_comments_deep(&args[0]);
                }
            }
            Form::App(
                Box::new(strip_comments_deep(fun)),
                args.iter().map(strip_comments_deep).collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn s(input: &str) -> String {
        simplify(&parse_form(input).expect("parse")).to_string()
    }

    #[test]
    fn folds_boolean_constants() {
        assert_eq!(s("True & p"), "p");
        assert_eq!(s("p | True"), "True");
        assert_eq!(s("False --> p"), "True");
        assert_eq!(s("~~p"), "p");
        assert_eq!(s("p <-> p"), "True");
    }

    #[test]
    fn folds_arithmetic_and_comparisons() {
        assert_eq!(s("1 + 2 = 3"), "True");
        assert_eq!(s("2 < 1"), "False");
        assert_eq!(s("x + 0 = x"), "True");
    }

    #[test]
    fn simplifies_set_operations() {
        assert_eq!(s("x : {}"), "False");
        assert_eq!(s("x : {a, b}"), "x = a | x = b");
        assert_eq!(s("s Un {} = s"), "True");
        assert_eq!(s("{} Int s = {}"), "True");
    }

    #[test]
    fn collapses_boolean_equalities() {
        assert_eq!(s("(first = null) = True"), "first = null");
        assert_eq!(s("result = False"), "~result");
        assert_eq!(s("True = (x : s)"), "x : s");
        // Equality between two formulas becomes a bi-implication.
        assert_eq!(
            s("(size = 0) = (card content = 0)"),
            "size = 0 <-> card content = 0"
        );
        // Plain term equalities are untouched.
        assert_eq!(s("x = y"), "x = y");
    }

    #[test]
    fn simplifies_ite() {
        assert_eq!(s("ite True x y = x"), "True");
        assert_eq!(s("ite p x x = x"), "True");
    }

    #[test]
    fn beta_reduces_during_simplification() {
        assert_eq!(s("(% x. x + 0) 5 = 5"), "True");
    }

    #[test]
    fn nnf_pushes_negations_inward() {
        let f = parse_form("~(p & (q --> r))").expect("parse");
        assert_eq!(nnf(&f).to_string(), "~p | q & ~r");
    }

    #[test]
    fn nnf_dualises_quantifiers() {
        let f = parse_form("~(ALL x. x : s)").expect("parse");
        assert_eq!(nnf(&f).to_string(), "EX x. ~(x : s)");
        let g = parse_form("~(EX x. p x)").expect("parse");
        assert_eq!(nnf(&g).to_string(), "ALL x. ~(p x)");
    }

    #[test]
    fn nnf_expands_iff() {
        let f = parse_form("p <-> q").expect("parse");
        assert_eq!(nnf(&f).to_string(), "(~p | q) & (p | ~q)");
    }

    #[test]
    fn strips_comments() {
        let f = parse_form("comment ''lbl'' (p & q)").expect("parse");
        assert_eq!(strip_comments_deep(&f).to_string(), "p & q");
    }
}
