//! Simple types for the Jahob specification logic.
//!
//! The logic is simply typed (following Isabelle/HOL as used by Jahob, §3.1 of the
//! paper) with ground types `bool`, `int` and `obj`, and type constructors for sets,
//! tuples and total functions. Type variables are used only internally during
//! inference ([`crate::typecheck`]).

use std::fmt;

/// A type of the specification logic.
///
/// # Examples
///
/// ```
/// use jahob_logic::types::Type;
/// let t = Type::fun(Type::Obj, Type::set(Type::Obj));
/// assert_eq!(t.to_string(), "obj => obj set");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// Boolean values.
    Bool,
    /// Unbounded mathematical integers (§4.1: Jahob models `int` as unbounded).
    Int,
    /// Object identifiers; the semantic domain `obj` of §2.1.
    Obj,
    /// `t set`: sets of elements of the given type.
    Set(Box<Type>),
    /// `t1 * t2 * ...`: tuples.
    Prod(Vec<Type>),
    /// `t1 => t2`: total functions.
    Fun(Box<Type>, Box<Type>),
    /// Inference variable; never appears in fully elaborated formulas.
    Var(u32),
}

impl Type {
    /// Builds a set type over `elem`.
    pub fn set(elem: Type) -> Type {
        Type::Set(Box::new(elem))
    }

    /// Builds a function type `from => to`.
    pub fn fun(from: Type, to: Type) -> Type {
        Type::Fun(Box::new(from), Box::new(to))
    }

    /// Builds an n-ary curried function type `args... => to`.
    pub fn fun_n(args: &[Type], to: Type) -> Type {
        args.iter()
            .rev()
            .fold(to, |acc, a| Type::fun(a.clone(), acc))
    }

    /// Builds a product (tuple) type. A singleton product collapses to its component.
    pub fn prod(components: Vec<Type>) -> Type {
        if components.len() == 1 {
            components.into_iter().next().expect("len checked")
        } else {
            Type::Prod(components)
        }
    }

    /// The type of object sets, `obj set`.
    pub fn obj_set() -> Type {
        Type::set(Type::Obj)
    }

    /// The type of object relations, `(obj * obj) set`.
    pub fn obj_rel() -> Type {
        Type::set(Type::prod(vec![Type::Obj, Type::Obj]))
    }

    /// The type of reference fields, `obj => obj`.
    pub fn obj_field() -> Type {
        Type::fun(Type::Obj, Type::Obj)
    }

    /// The type of integer fields, `obj => int`.
    pub fn int_field() -> Type {
        Type::fun(Type::Obj, Type::Int)
    }

    /// The type of object arrays, `obj => int => obj` (§4.1).
    pub fn obj_array_state() -> Type {
        Type::fun(Type::Obj, Type::fun(Type::Int, Type::Obj))
    }

    /// Returns `true` if the type contains no inference variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Type::Bool | Type::Int | Type::Obj => true,
            Type::Set(t) => t.is_ground(),
            Type::Prod(ts) => ts.iter().all(Type::is_ground),
            Type::Fun(a, b) => a.is_ground() && b.is_ground(),
            Type::Var(_) => false,
        }
    }

    /// Returns `true` if this is a function type.
    pub fn is_fun(&self) -> bool {
        matches!(self, Type::Fun(_, _))
    }

    /// Returns `true` if this is a set type.
    pub fn is_set(&self) -> bool {
        matches!(self, Type::Set(_))
    }

    /// The element type if this is a set type.
    pub fn set_elem(&self) -> Option<&Type> {
        match self {
            Type::Set(t) => Some(t),
            _ => None,
        }
    }

    /// Decomposes a curried function type into argument types and the final result.
    pub fn uncurry(&self) -> (Vec<&Type>, &Type) {
        let mut args = Vec::new();
        let mut cur = self;
        while let Type::Fun(a, b) = cur {
            args.push(a.as_ref());
            cur = b.as_ref();
        }
        (args, cur)
    }

    /// Collects the inference variables occurring in the type.
    pub fn type_vars(&self, acc: &mut Vec<u32>) {
        match self {
            Type::Bool | Type::Int | Type::Obj => {}
            Type::Set(t) => t.type_vars(acc),
            Type::Prod(ts) => ts.iter().for_each(|t| t.type_vars(acc)),
            Type::Fun(a, b) => {
                a.type_vars(acc);
                b.type_vars(acc);
            }
            Type::Var(v) => {
                if !acc.contains(v) {
                    acc.push(*v);
                }
            }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: Fun (lowest, right assoc) < Prod < Set (postfix) < atoms.
        fn go(t: &Type, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match t {
                Type::Bool => write!(f, "bool"),
                Type::Int => write!(f, "int"),
                Type::Obj => write!(f, "obj"),
                Type::Var(v) => write!(f, "?t{v}"),
                Type::Set(e) => {
                    go(e, f, 3)?;
                    write!(f, " set")
                }
                Type::Prod(ts) => {
                    let open = prec > 1;
                    if open {
                        write!(f, "(")?;
                    }
                    for (i, t) in ts.iter().enumerate() {
                        if i > 0 {
                            write!(f, " * ")?;
                        }
                        go(t, f, 2)?;
                    }
                    if open {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Type::Fun(a, b) => {
                    let open = prec > 0;
                    if open {
                        write!(f, "(")?;
                    }
                    go(a, f, 1)?;
                    write!(f, " => ")?;
                    go(b, f, 0)?;
                    if open {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_ground_types() {
        assert_eq!(Type::Bool.to_string(), "bool");
        assert_eq!(Type::obj_set().to_string(), "obj set");
        assert_eq!(Type::obj_rel().to_string(), "(obj * obj) set");
        assert_eq!(Type::obj_field().to_string(), "obj => obj");
        assert_eq!(Type::obj_array_state().to_string(), "obj => int => obj");
    }

    #[test]
    fn fun_n_builds_curried_type() {
        let t = Type::fun_n(&[Type::Obj, Type::Int], Type::Bool);
        let (args, res) = t.uncurry();
        assert_eq!(args.len(), 2);
        assert_eq!(*res, Type::Bool);
    }

    #[test]
    fn prod_singleton_collapses() {
        assert_eq!(Type::prod(vec![Type::Int]), Type::Int);
    }

    #[test]
    fn groundness() {
        assert!(Type::obj_rel().is_ground());
        assert!(!Type::set(Type::Var(0)).is_ground());
    }

    #[test]
    fn type_vars_collected_once() {
        let t = Type::fun(Type::Var(1), Type::set(Type::Var(1)));
        let mut vs = Vec::new();
        t.type_vars(&mut vs);
        assert_eq!(vs, vec![1]);
    }
}
