//! Rewrites used by formula approximation (§5.3).
//!
//! Before handing a sequent to a specialised prover, Jahob rewrites it: definitions of
//! specification variables are substituted, beta reduction is applied, equalities over
//! complex types (sets, functions, tuples) are expanded into first-order form, and set
//! operations are expressed with quantification. This module provides those rewrites in a
//! prover-independent form; the per-prover interfaces in `jahob-provers` choose which ones
//! to apply.

use crate::form::{Binder, Const, Form, Ident};
use crate::subst::{beta_reduce, free_vars, fresh_name, substitute, Subst};
use crate::types::Type;
use std::collections::BTreeMap;

/// Applies a bottom-up rewriting function until the formula no longer changes (with an
/// iteration bound to guarantee termination on non-confluent rewrite functions).
pub fn rewrite_fixpoint(form: &Form, rewrite: &dyn Fn(&Form) -> Option<Form>) -> Form {
    let mut current = form.clone();
    for _ in 0..64 {
        let next = rewrite_bottom_up(&current, rewrite);
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

/// One bottom-up pass of a rewriting function over the formula.
pub fn rewrite_bottom_up(form: &Form, rewrite: &dyn Fn(&Form) -> Option<Form>) -> Form {
    let rebuilt = match form {
        Form::Var(_) | Form::Const(_) => form.clone(),
        Form::Typed(f, t) => Form::Typed(Box::new(rewrite_bottom_up(f, rewrite)), t.clone()),
        Form::Binder(b, vars, body) => {
            Form::Binder(*b, vars.clone(), Box::new(rewrite_bottom_up(body, rewrite)))
        }
        Form::App(f, args) => Form::app(
            rewrite_bottom_up(f, rewrite),
            args.iter().map(|a| rewrite_bottom_up(a, rewrite)).collect(),
        ),
    };
    rewrite(&rebuilt).unwrap_or(rebuilt)
}

/// Substitutes the definitions of *defined* specification variables (§3.2). Definitions
/// must be acyclic; the function repeatedly substitutes until no defined variable remains
/// (bounded by the number of definitions).
pub fn unfold_definitions(form: &Form, defs: &BTreeMap<Ident, Form>) -> Form {
    if defs.is_empty() {
        return form.clone();
    }
    let sub: Subst = defs.clone();
    let mut current = form.clone();
    for _ in 0..=defs.len() {
        let fv = free_vars(&current);
        if !fv.iter().any(|v| defs.contains_key(v)) {
            break;
        }
        current = beta_reduce(&substitute(&current, &sub));
    }
    current
}

/// Expands membership in set-algebraic expressions into propositional structure:
///
/// * `x : A Un B`   becomes `x : A | x : B`
/// * `x : A Int B`  becomes `x : A & x : B`
/// * `x : A \ B` and `x : A - B` become `x : A & ~(x : B)`
/// * `x : {a, b}`   becomes `x = a | x = b`
/// * `x : {}` / `x : UNIV` become `False` / `True`
/// * `x : {y. F}`   becomes `F[y := x]` (via beta reduction)
/// * `x : fieldWrite f y v` style terms are left untouched.
pub fn expand_set_membership(form: &Form) -> Form {
    rewrite_fixpoint(&beta_reduce(form), &|f| {
        let args = f.as_app_of(&Const::Elem)?;
        let [x, s] = args else { return None };
        if let Some(parts) = s.as_app_of(&Const::Union) {
            return Some(Form::or(
                parts
                    .iter()
                    .map(|p| Form::elem(x.clone(), p.clone()))
                    .collect(),
            ));
        }
        if let Some(parts) = s.as_app_of(&Const::Inter) {
            return Some(Form::and(
                parts
                    .iter()
                    .map(|p| Form::elem(x.clone(), p.clone()))
                    .collect(),
            ));
        }
        if let Some([a, b]) = s
            .as_app_of(&Const::Diff)
            .or_else(|| s.as_app_of(&Const::Minus))
        {
            return Some(Form::and(vec![
                Form::elem(x.clone(), a.clone()),
                Form::not(Form::elem(x.clone(), b.clone())),
            ]));
        }
        if let Some(elems) = s.as_app_of(&Const::FiniteSet) {
            return Some(Form::or(
                elems
                    .iter()
                    .map(|e| Form::eq(x.clone(), e.clone()))
                    .collect(),
            ));
        }
        if matches!(s, Form::Const(Const::EmptySet)) {
            return Some(Form::ff());
        }
        if matches!(s, Form::Const(Const::UnivSet)) {
            return Some(Form::tt());
        }
        if let Form::Binder(Binder::Comprehension, _, _) = s {
            // beta_reduce handles well-formed comprehension membership; reaching this
            // point means the element/tuple arity did not match, so leave it alone.
            return None;
        }
        None
    })
}

/// Expands equalities and subset relations over set-typed expressions into universally
/// quantified membership formulas (extensionality), and tuple equalities into
/// component-wise equalities. `set_typed` decides whether an expression denotes a set;
/// callers that have run type inference can supply a precise predicate, while a
/// syntactic heuristic ([`looks_like_set`]) is adequate for the VC shapes Jahob produces.
pub fn expand_complex_equalities(form: &Form, set_typed: &dyn Fn(&Form) -> bool) -> Form {
    rewrite_fixpoint(form, &|f| {
        if let Some([l, r]) = f.as_app_of(&Const::Eq) {
            // Tuple equality.
            if let (Some(ls), Some(rs)) = (l.as_app_of(&Const::Tuple), r.as_app_of(&Const::Tuple)) {
                if ls.len() == rs.len() {
                    return Some(Form::and(
                        ls.iter()
                            .zip(rs.iter())
                            .map(|(a, b)| Form::eq(a.clone(), b.clone()))
                            .collect(),
                    ));
                }
            }
            // Set extensionality.
            if set_typed(l) || set_typed(r) {
                let avoid = free_vars(f);
                let v = fresh_name("elt", &avoid);
                return Some(Form::forall(
                    v.clone(),
                    Type::Obj,
                    Form::iff(
                        Form::elem(Form::var(v.clone()), l.clone()),
                        Form::elem(Form::var(v), r.clone()),
                    ),
                ));
            }
        }
        if let Some([l, r]) = f.as_app_of(&Const::SubsetEq) {
            let avoid = free_vars(f);
            let v = fresh_name("elt", &avoid);
            return Some(Form::forall(
                v.clone(),
                Type::Obj,
                Form::implies(
                    Form::elem(Form::var(v.clone()), l.clone()),
                    Form::elem(Form::var(v), r.clone()),
                ),
            ));
        }
        None
    })
}

/// A syntactic heuristic for "this expression denotes a set": set constants, set
/// operations, comprehensions and variables with conventional set names.
pub fn looks_like_set(f: &Form) -> bool {
    match f {
        Form::Const(Const::EmptySet) | Form::Const(Const::UnivSet) => true,
        Form::Binder(Binder::Comprehension, _, _) => true,
        Form::App(fun, _) => matches!(
            fun.as_ref(),
            Form::Const(Const::Union)
                | Form::Const(Const::Inter)
                | Form::Const(Const::Diff)
                | Form::Const(Const::FiniteSet)
        ),
        Form::Typed(inner, t) => t.is_set() || looks_like_set(inner),
        _ => false,
    }
}

/// Expands applications of function updates: `(fieldWrite f x v) y` becomes
/// `ite (y = x) v (f y)`, and (after simplification by the caller) the `ite` can be lifted
/// by [`lift_ite`] for provers without if-then-else.
pub fn expand_field_write_applications(form: &Form) -> Form {
    rewrite_fixpoint(form, &|f| {
        if let Form::App(fun, args) = f {
            // Applications are kept flattened, so `(fieldWrite f x v) y` appears as
            // `App(fieldWrite, [f, x, v, y, ...])`.
            if let Form::Const(Const::FieldWrite) = fun.as_ref() {
                if args.len() >= 4 {
                    let (base, at, val, arg) = (&args[0], &args[1], &args[2], &args[3]);
                    let applied = Form::ite(
                        Form::eq(arg.clone(), at.clone()),
                        val.clone(),
                        Form::app(base.clone(), vec![arg.clone()]),
                    );
                    let rest: Vec<Form> = args[4..].to_vec();
                    return Some(Form::app(applied, rest));
                }
            }
            if let Some(parts) = fun.as_app_of(&Const::FieldWrite) {
                if parts.len() == 3 && args.len() == 1 {
                    let (base, at, val) = (&parts[0], &parts[1], &parts[2]);
                    let arg = &args[0];
                    return Some(Form::ite(
                        Form::eq(arg.clone(), at.clone()),
                        val.clone(),
                        Form::app(base.clone(), vec![arg.clone()]),
                    ));
                }
            }
            // arrayRead (arrayWrite st a i v) b j
            if let Form::Const(Const::ArrayRead) = fun.as_ref() {
                if args.len() == 3 {
                    if let Some(w) = args[0].as_app_of(&Const::ArrayWrite) {
                        if w.len() == 4 {
                            let (st, a, i, v) = (&w[0], &w[1], &w[2], &w[3]);
                            let (b, j) = (&args[1], &args[2]);
                            return Some(Form::ite(
                                Form::and(vec![
                                    Form::eq(b.clone(), a.clone()),
                                    Form::eq(j.clone(), i.clone()),
                                ]),
                                v.clone(),
                                Form::array_read(st.clone(), b.clone(), j.clone()),
                            ));
                        }
                    }
                }
            }
        }
        None
    })
}

/// Lifts `ite` terms appearing under atoms into propositional case splits:
/// `P(ite c t e)` becomes `(c --> P(t)) & (~c --> P(e))` for atoms `P` (equalities,
/// comparisons, membership). Runs to a fixpoint so nested `ite`s are fully removed.
pub fn lift_ite(form: &Form) -> Form {
    rewrite_fixpoint(form, &|f| {
        let (c, head_const) = match f {
            Form::App(fun, _) => match fun.as_ref() {
                Form::Const(
                    c2 @ (Const::Eq
                    | Const::Lt
                    | Const::LtEq
                    | Const::Gt
                    | Const::GtEq
                    | Const::Elem
                    | Const::SubsetEq),
                ) => (f, c2.clone()),
                _ => return None,
            },
            _ => return None,
        };
        let args = c.as_app_of(&head_const)?;
        for (idx, a) in args.iter().enumerate() {
            if let Some([cond, then, els]) = a.as_app_of(&Const::Ite) {
                let mut then_args = args.to_vec();
                then_args[idx] = then.clone();
                let mut else_args = args.to_vec();
                else_args[idx] = els.clone();
                return Some(Form::and(vec![
                    Form::implies(
                        cond.clone(),
                        Form::app(Form::Const(head_const.clone()), then_args),
                    ),
                    Form::implies(
                        Form::not(cond.clone()),
                        Form::app(Form::Const(head_const.clone()), else_args),
                    ),
                ]));
            }
        }
        None
    })
}

/// Replaces every `old e` with `e` after substituting pre-state variable snapshots: each
/// free variable `v` of `e` that appears in `snapshot` is replaced by its snapshot name.
/// This is how the VC generator resolves two-state postconditions.
pub fn resolve_old(form: &Form, snapshot: &BTreeMap<Ident, Ident>) -> Form {
    rewrite_fixpoint(form, &|f| {
        let args = f.as_app_of(&Const::Old)?;
        let [inner] = args else { return None };
        let mut sub = Subst::new();
        for v in free_vars(inner) {
            if let Some(pre) = snapshot.get(&v) {
                sub.insert(v.clone(), Form::var(pre.clone()));
            }
        }
        Some(substitute(inner, &sub))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn p(s: &str) -> Form {
        parse_form(s).expect("parse")
    }

    #[test]
    fn unfolds_defined_specvars() {
        let mut defs = BTreeMap::new();
        defs.insert("content".to_string(), p("cnt first"));
        defs.insert("inrange".to_string(), p("% i. 0 <= i & i < size"));
        let f = p("x : content & inrange 3");
        let g = unfold_definitions(&f, &defs);
        assert_eq!(g.to_string(), "x : cnt first & 0 <= 3 & 3 < size");
    }

    #[test]
    fn unfolds_chained_definitions() {
        let mut defs = BTreeMap::new();
        defs.insert("a".to_string(), p("b Un {x}"));
        defs.insert("b".to_string(), p("c"));
        let f = p("y : a");
        assert_eq!(unfold_definitions(&f, &defs).to_string(), "y : c Un {x}");
    }

    #[test]
    fn expands_membership_in_set_algebra() {
        let f = p("x : (a Un b) Int (c - {d})");
        let g = expand_set_membership(&f);
        assert_eq!(g.to_string(), "(x : a | x : b) & x : c & ~(x = d)");
    }

    #[test]
    fn expands_membership_in_comprehension() {
        let f = p("z : {n. n ~= null & n : nodes}");
        let g = expand_set_membership(&f);
        assert_eq!(g.to_string(), "~(z = null) & z : nodes");
    }

    #[test]
    fn expands_set_equality_to_extensionality() {
        let f = p("content = old_content Un {x}");
        let g = expand_complex_equalities(&f, &looks_like_set);
        assert!(g.to_string().starts_with("ALL elt."));
        assert!(g.contains_const(&Const::Iff));
    }

    #[test]
    fn expands_tuple_equality_componentwise() {
        let f = p("(a, b) = (c, d)");
        let g = expand_complex_equalities(&f, &|_| false);
        assert_eq!(g.to_string(), "a = c & b = d");
    }

    #[test]
    fn expands_field_write_applications() {
        let f = p("(next(x := y)) z = w");
        let g = expand_field_write_applications(&f);
        assert_eq!(g.to_string(), "ite (z = x) y (next z) = w");
        let lifted = lift_ite(&g);
        assert_eq!(
            lifted.to_string(),
            "(z = x --> y = w) & (~(z = x) --> next z = w)"
        );
    }

    #[test]
    fn expands_array_write_reads() {
        let f = p("arrayRead (arrayWrite arrayState a i v) a j = null");
        let g = lift_ite(&expand_field_write_applications(&f));
        assert!(g.to_string().contains("-->"));
        assert!(g.contains_const(&Const::ArrayRead));
    }

    #[test]
    fn resolves_old_expressions() {
        let mut snap = BTreeMap::new();
        snap.insert("content".to_string(), "content_pre".to_string());
        let f = p("content = old content Un {x}");
        assert_eq!(
            resolve_old(&f, &snap).to_string(),
            "content = content_pre Un {x}"
        );
    }

    #[test]
    fn rewrite_fixpoint_terminates_on_identity() {
        let f = p("p & q");
        assert_eq!(rewrite_fixpoint(&f, &|_| None), f);
    }
}
