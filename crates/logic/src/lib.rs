//! # jahob-logic
//!
//! The specification logic of the Jahob verification system, as described in
//! *Full Functional Verification of Linked Data Structures* (Zee, Kuncak, Rinard,
//! PLDI 2008), §3.
//!
//! Formulas are terms of a simply typed higher-order logic with:
//!
//! * ground types `bool`, `int`, `obj` and constructors for sets, tuples and functions,
//! * the usual connectives and quantifiers,
//! * lambda abstraction and set comprehension,
//! * reflexive transitive closure (`rtrancl_pt`), the `tree [f...]` backbone predicate,
//!   and finite-set cardinality (`card`),
//! * specification plumbing: `old`, formula labels (`comment ''l'' F`), function update
//!   (`f(x := v)`) and array state access.
//!
//! The crate provides the abstract syntax ([`form`]), concrete-syntax parsing
//! ([`parser`]), pretty printing, substitution and beta reduction ([`subst`]), type
//! inference ([`typecheck`]), logical simplification and normal forms ([`simplify`]),
//! sequents ([`sequent`]), the prover-independent rewrites used by formula approximation
//! ([`rewrite`]), the polarity-based approximation scheme of Figure 14 ([`approx`]),
//! and the one-pass syntactic feature extraction behind per-sequent prover routing
//! ([`features`]).
//!
//! # Example
//!
//! ```
//! use jahob_logic::{parser::parse_form, typecheck::{check_bool, TypeEnv}, types::Type};
//!
//! let mut env = TypeEnv::standard();
//! env.insert("content", Type::obj_set());
//! env.insert("size", Type::Int);
//! let inv = parse_form("size = card content").expect("syntax");
//! check_bool(&inv, &env).expect("well-typed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod features;
pub mod form;
pub mod norm;
pub mod parser;
pub mod rewrite;
pub mod sequent;
pub mod simplify;
pub mod subst;
pub mod typecheck;
pub mod types;

pub use features::{FeatureBucket, SequentFeatures};
pub use form::{Binder, Const, Form, Ident};
pub use parser::{parse_form, parse_type, ParseError};
pub use sequent::Sequent;
pub use typecheck::{TypeEnv, TypeError};
pub use types::Type;
