//! Parser for the MiniJava+spec surface syntax.
//!
//! The input format follows the paper's examples (Figures 2–6): Java classes whose
//! specifications live in `/*: ... */` and `//: ...` comments. Specification *formulas*
//! appear as string literals inside those comments and are parsed by
//! [`jahob_logic::parse_form`]; everything else (classes, fields, method signatures,
//! statements) is a small Java subset. [`parse_program`] lowers the source text directly
//! into the program model of [`crate::ast`], which the translator (`crate::translate`)
//! then turns into verification tasks.
//!
//! Supported class-level specification items:
//!
//! * `public|private [static] ghost specvar name :: "type" [= "init"];`
//! * `public|private [static] specvar name :: "type";` followed by
//!   `vardefs "name == definition";`
//! * `[public] invariant Name: "formula";`
//! * `claimedby ClassName` (accepted and recorded nowhere — the representation-ownership
//!   check it expresses is enforced structurally by the programmatic model)
//!
//! Supported method-level items: `requires`, `modifies`, `ensures` contracts, loop
//! invariants (`while /*: inv "..." */ (...)`), ghost assignments (`x := "formula";`),
//! `assert` / `assume` / `note` (with optional labels and `by` hints) and
//! `havoc x suchThat "..."`.

use crate::ast::{
    ClassDef, Contract, Expr, FieldDef, Hint, Invariant, JavaType, Lvalue, MethodDef, Program,
    SpecVarDef, SpecVarKind, Stmt,
};
use crate::lexer::{lex, LexError, Spanned, Token};
use jahob_logic::form::Form;
use jahob_logic::types::Type;
use std::collections::BTreeSet;
use std::fmt;

/// A parse error with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError {
    /// Line on which the error was detected.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SourceError {}

impl From<LexError> for SourceError {
    fn from(e: LexError) -> Self {
        SourceError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parses a MiniJava+spec source file into a [`Program`].
///
/// # Errors
///
/// Returns a [`SourceError`] describing the first lexical, syntactic, or
/// specification-formula error encountered.
///
/// # Examples
///
/// ```
/// let src = r#"
///     class Cell {
///         private static Object value;
///         /*: public static ghost specvar content :: "obj set";
///             invariant valueTracked: "value = null | value : content"; */
///
///         public static void set(Object x)
///         /*: requires "x ~= null" modifies content ensures "content = {x}" */
///         {
///             value = x;
///             //: content := "{x}";
///         }
///     }
/// "#;
/// let program = jahob_frontend::parse_program(src).unwrap();
/// assert_eq!(program.classes.len(), 1);
/// assert_eq!(program.classes[0].methods.len(), 1);
/// ```
pub fn parse_program(source: &str) -> Result<Program, SourceError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        locals: BTreeSet::new(),
    };
    let mut classes = Vec::new();
    while !parser.at_end() {
        classes.push(parser.class()?);
    }
    Ok(Program::new(classes))
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Local variables (parameters and declarations) of the method currently being
    /// parsed; identifiers outside this set resolve to static/class-level names.
    locals: BTreeSet<String>,
}

impl Parser {
    // ------------------------------------------------------------------ token plumbing

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> SourceError {
        SourceError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.check_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn check_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Token::Sym(s)) if *s == sym)
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), SourceError> {
        if self.check_sym(sym) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{sym}`, found {}",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn check_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SourceError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{kw}`, found {}",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, SourceError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error(format!(
                "expected an identifier, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn expect_string(&mut self) -> Result<String, SourceError> {
        match self.bump() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(self.error(format!(
                "expected a quoted specification string, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn formula(&mut self) -> Result<Form, SourceError> {
        let line = self.line();
        let text = self.expect_string()?;
        jahob_logic::parse_form(&text).map_err(|e| SourceError {
            line,
            message: format!("specification formula error in {text:?}: {e}"),
        })
    }

    fn spec_type(&mut self) -> Result<Type, SourceError> {
        let line = self.line();
        let text = self.expect_string()?;
        jahob_logic::parse_type(&text).map_err(|e| SourceError {
            line,
            message: format!("specification type error in {text:?}: {e}"),
        })
    }

    fn check_spec_open(&self) -> bool {
        self.peek() == Some(&Token::SpecOpen)
    }

    fn check_spec_close(&self) -> bool {
        self.peek() == Some(&Token::SpecClose)
    }

    // ------------------------------------------------------------------ classes

    fn class(&mut self) -> Result<ClassDef, SourceError> {
        // Modifiers (and an optional `/*: claimedby C */` annotation) before `class`.
        loop {
            if self.eat_keyword("public")
                || self.eat_keyword("private")
                || self.eat_keyword("final")
            {
                continue;
            }
            if self.check_spec_open() {
                self.bump();
                self.expect_keyword("claimedby")?;
                let _owner = self.expect_ident()?;
                if !self.check_spec_close() {
                    return Err(self.error("expected `*/` after claimedby annotation"));
                }
                self.bump();
                continue;
            }
            break;
        }
        self.expect_keyword("class")?;
        let name = self.expect_ident()?;
        self.expect_sym("{")?;
        let mut class = ClassDef::new(name);
        while !self.check_sym("}") {
            if self.check_spec_open() {
                self.class_spec_block(&mut class)?;
            } else {
                self.member(&mut class)?;
            }
        }
        self.expect_sym("}")?;
        Ok(class)
    }

    /// A class-level specification block: specvar declarations, vardefs, invariants.
    fn class_spec_block(&mut self, class: &mut ClassDef) -> Result<(), SourceError> {
        self.bump(); // SpecOpen
        while !self.check_spec_close() {
            if self.at_end() {
                return Err(self.error("unterminated specification block"));
            }
            self.class_spec_item(class)?;
        }
        self.bump(); // SpecClose
        Ok(())
    }

    fn class_spec_item(&mut self, class: &mut ClassDef) -> Result<(), SourceError> {
        let mut is_public = false;
        let mut is_static = false;
        let mut is_ghost = false;
        loop {
            if self.eat_keyword("public") {
                is_public = true;
            } else if self.eat_keyword("private") {
                is_public = false;
            } else if self.eat_keyword("static") {
                is_static = true;
            } else if self.eat_keyword("ghost") {
                is_ghost = true;
            } else {
                break;
            }
        }
        if self.eat_keyword("specvar") {
            let name = self.expect_ident()?;
            self.expect_sym("::")?;
            let declared = self.spec_type()?;
            // Optional initial value (recorded by Jahob as the variable's value at
            // allocation; the programmatic model initialises ghost state in constructors
            // instead, so the text is accepted and dropped).
            if self.eat_sym("=") {
                let _ = self.expect_string()?;
            }
            let _ = self.eat_sym(";");
            let ty = if is_static {
                declared
            } else {
                Type::fun(Type::Obj, declared)
            };
            class.spec_vars.push(SpecVarDef {
                name,
                ty,
                kind: if is_ghost {
                    SpecVarKind::Ghost
                } else {
                    // The definition is attached by a later `vardefs` item.
                    SpecVarKind::Ghost
                },
                is_public,
                is_static,
            });
            return Ok(());
        }
        if self.eat_keyword("vardefs") {
            let line = self.line();
            let text = self.expect_string()?;
            let _ = self.eat_sym(";");
            let Some((name, definition)) = text.split_once("==") else {
                return Err(SourceError {
                    line,
                    message: format!(
                        "vardefs entry {text:?} must have the form \"name == definition\""
                    ),
                });
            };
            let name = name.trim();
            let definition =
                jahob_logic::parse_form(definition.trim()).map_err(|e| SourceError {
                    line,
                    message: format!("vardefs definition error: {e}"),
                })?;
            let Some(var) = class.spec_vars.iter_mut().find(|v| v.name == name) else {
                return Err(SourceError {
                    line,
                    message: format!("vardefs for undeclared specification variable {name}"),
                });
            };
            var.kind = SpecVarKind::Defined(definition);
            return Ok(());
        }
        if self.eat_keyword("invariant") {
            let name = self.expect_ident()?;
            self.expect_sym(":")?;
            let form = self.formula()?;
            let _ = self.eat_sym(";");
            class.invariants.push(Invariant {
                name,
                form,
                is_public,
            });
            return Ok(());
        }
        Err(self.error(format!(
            "expected a specification item (specvar, vardefs, invariant), found {}",
            self.peek()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "end of input".into())
        )))
    }

    // ------------------------------------------------------------------ members

    fn member(&mut self, class: &mut ClassDef) -> Result<(), SourceError> {
        let mut is_public = false;
        let mut is_static = false;
        loop {
            if self.eat_keyword("public") {
                is_public = true;
            } else if self.eat_keyword("private") {
                is_public = false;
            } else if self.eat_keyword("static") {
                is_static = true;
            } else if self.eat_keyword("final") {
                continue;
            } else {
                break;
            }
        }
        let is_void = self.check_keyword("void");
        let ty = if is_void {
            self.bump();
            None
        } else {
            Some(self.java_type()?)
        };
        let name = self.expect_ident()?;
        if self.check_sym("(") {
            let method = self.method(name, is_public, is_static, ty)?;
            class.methods.push(method);
        } else {
            self.expect_sym(";")?;
            let ty = ty.ok_or_else(|| self.error("fields cannot have type void"))?;
            class.fields.push(FieldDef {
                name,
                ty,
                is_static,
            });
        }
        Ok(())
    }

    fn java_type(&mut self) -> Result<JavaType, SourceError> {
        let name = self.expect_ident()?;
        let base = match name.as_str() {
            "int" => JavaType::Int,
            "boolean" => JavaType::Bool,
            other => JavaType::Ref(other.to_string()),
        };
        if self.check_sym("[") && self.peek_at(1) == Some(&Token::Sym("]")) {
            self.bump();
            self.bump();
            return Ok(JavaType::ObjArray);
        }
        Ok(base)
    }

    fn method(
        &mut self,
        name: String,
        is_public: bool,
        is_static: bool,
        return_type: Option<JavaType>,
    ) -> Result<MethodDef, SourceError> {
        self.expect_sym("(")?;
        let mut params = Vec::new();
        while !self.check_sym(")") {
            if !params.is_empty() {
                self.expect_sym(",")?;
            }
            let ty = self.java_type()?;
            let pname = self.expect_ident()?;
            params.push((pname, ty));
        }
        self.expect_sym(")")?;
        let contract = if self.check_spec_open() {
            self.contract()?
        } else {
            Contract::default()
        };
        self.locals = params.iter().map(|(p, _)| p.clone()).collect();
        self.locals.insert("this".to_string());
        let body = self.block()?;
        self.locals.clear();
        Ok(MethodDef {
            name,
            is_public,
            is_static,
            params,
            return_type,
            contract,
            body,
        })
    }

    fn contract(&mut self) -> Result<Contract, SourceError> {
        self.bump(); // SpecOpen
        let mut contract = Contract::default();
        while !self.check_spec_close() {
            if self.eat_keyword("requires") {
                contract.requires = self.formula()?;
            } else if self.eat_keyword("ensures") {
                contract.ensures = self.formula()?;
            } else if self.eat_keyword("modifies") {
                loop {
                    contract.modifies.push(self.expect_ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            } else {
                return Err(self.error(format!(
                    "expected requires/modifies/ensures, found {}",
                    self.peek()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                )));
            }
        }
        self.bump(); // SpecClose
        Ok(contract)
    }

    // ------------------------------------------------------------------ statements

    fn block(&mut self) -> Result<Vec<Stmt>, SourceError> {
        self.expect_sym("{")?;
        let mut out = Vec::new();
        while !self.check_sym("}") {
            if self.at_end() {
                return Err(self.error("unterminated block"));
            }
            out.extend(self.statement()?);
        }
        self.expect_sym("}")?;
        Ok(out)
    }

    fn statement(&mut self) -> Result<Vec<Stmt>, SourceError> {
        if self.check_spec_open() {
            return self.spec_statements();
        }
        if self.eat_keyword("if") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let then_branch = self.block()?;
            let else_branch = if self.eat_keyword("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(vec![Stmt::If {
                cond,
                then_branch,
                else_branch,
            }]);
        }
        if self.eat_keyword("while") {
            let invariant = if self.check_spec_open() {
                self.bump();
                self.expect_keyword("inv")
                    .or_else(|_| self.expect_keyword("invariant"))?;
                let form = self.formula()?;
                if !self.check_spec_close() {
                    return Err(self.error("expected `*/` after the loop invariant"));
                }
                self.bump();
                form
            } else {
                Form::tt()
            };
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let body = self.block()?;
            return Ok(vec![Stmt::While {
                invariant,
                cond,
                body,
            }]);
        }
        if self.eat_keyword("return") {
            let value = if self.check_sym(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_sym(";")?;
            return Ok(vec![Stmt::Return(value)]);
        }
        // Local declaration: `Type name [= init];` — recognised by the Ident Ident
        // pattern (or a builtin type keyword followed by an identifier).
        if self.is_local_declaration() {
            let ty = self.java_type()?;
            let name = self.expect_ident()?;
            self.locals.insert(name.clone());
            let mut out = Vec::new();
            if self.eat_sym("=") {
                if self.check_keyword("new") {
                    out.push(Stmt::Local {
                        name: name.clone(),
                        ty,
                        init: None,
                    });
                    out.push(self.allocation(Lvalue::Local(name))?);
                } else {
                    let init = self.expr()?;
                    out.push(Stmt::Local {
                        name,
                        ty,
                        init: Some(init),
                    });
                }
            } else {
                out.push(Stmt::Local {
                    name,
                    ty,
                    init: None,
                });
            }
            self.expect_sym(";")?;
            return Ok(out);
        }
        // Assignment.
        let target = self.expr()?;
        let lvalue = self.as_lvalue(target)?;
        self.expect_sym("=")?;
        let stmt = if self.check_keyword("new") {
            self.allocation(lvalue)?
        } else {
            Stmt::Assign(lvalue, self.expr()?)
        };
        self.expect_sym(";")?;
        Ok(vec![stmt])
    }

    fn is_local_declaration(&self) -> bool {
        let first_is_type = matches!(
            self.peek(),
            Some(Token::Ident(s)) if s == "int" || s == "boolean" || !self.locals.contains(s)
        );
        if !first_is_type {
            return false;
        }
        match (self.peek_at(1), self.peek_at(2), self.peek_at(3)) {
            // `Type name ...`
            (Some(Token::Ident(_)), _, _) => true,
            // `Object[] name ...`
            (Some(Token::Sym("[")), Some(Token::Sym("]")), Some(Token::Ident(_))) => true,
            _ => false,
        }
    }

    fn allocation(&mut self, target: Lvalue) -> Result<Stmt, SourceError> {
        self.expect_keyword("new")?;
        let class = self.expect_ident()?;
        if self.check_sym("[") {
            self.bump();
            let length = self.expr()?;
            self.expect_sym("]")?;
            return Ok(Stmt::NewArray { target, length });
        }
        self.expect_sym("(")?;
        self.expect_sym(")")?;
        Ok(Stmt::New { target, class })
    }

    fn as_lvalue(&self, e: Expr) -> Result<Lvalue, SourceError> {
        match e {
            Expr::Local(x) => Ok(Lvalue::Local(x)),
            Expr::Static(x) => Ok(Lvalue::Static(x)),
            Expr::Field(obj, f) => Ok(Lvalue::Field(*obj, f)),
            Expr::ArrayElem(a, i) => Ok(Lvalue::ArrayElem(*a, *i)),
            other => Err(self.error(format!("{other:?} is not assignable"))),
        }
    }

    /// One specification comment inside a method body; it may contain several
    /// specification statements.
    fn spec_statements(&mut self) -> Result<Vec<Stmt>, SourceError> {
        self.bump(); // SpecOpen
        let mut out = Vec::new();
        while !self.check_spec_close() {
            if self.at_end() {
                return Err(self.error("unterminated specification comment"));
            }
            out.push(self.spec_statement()?);
        }
        self.bump(); // SpecClose
        Ok(out)
    }

    fn spec_statement(&mut self) -> Result<Stmt, SourceError> {
        if self.eat_keyword("assert") {
            let (label, form, hints) = self.labelled_formula_with_hints()?;
            return Ok(Stmt::SpecAssert { label, form, hints });
        }
        if self.eat_keyword("assume") {
            let (label, form, _) = self.labelled_formula_with_hints()?;
            return Ok(Stmt::SpecAssume { label, form });
        }
        if self.eat_keyword("note") {
            let (label, form, hints) = self.labelled_formula_with_hints()?;
            return Ok(Stmt::SpecNote { label, form, hints });
        }
        if self.eat_keyword("havoc") {
            let mut vars = vec![self.expect_ident()?];
            while self.eat_sym(",") {
                vars.push(self.expect_ident()?);
            }
            let such_that = if self.eat_keyword("suchThat") {
                Some(self.formula()?)
            } else {
                None
            };
            let _ = self.eat_sym(";");
            return Ok(Stmt::SpecHavoc { vars, such_that });
        }
        // Ghost assignment `target := "formula"` or `receiver..field := "formula"`.
        let first = self.expect_ident()?;
        let (receiver, target) = if self.eat_sym(".") {
            self.expect_sym(".").ok();
            (Some(self.resolve_ident(&first)), self.expect_ident()?)
        } else {
            (None, first)
        };
        self.expect_sym(":=")?;
        let value = self.formula()?;
        let _ = self.eat_sym(";");
        Ok(Stmt::GhostAssign {
            target,
            receiver,
            value,
        })
    }

    fn labelled_formula_with_hints(
        &mut self,
    ) -> Result<(Option<String>, Form, Vec<Hint>), SourceError> {
        // Optional `label:` before the quoted formula.
        let label = match (self.peek(), self.peek_at(1)) {
            (Some(Token::Ident(l)), Some(Token::Sym(":"))) => {
                let l = l.clone();
                self.bump();
                self.bump();
                Some(l)
            }
            _ => None,
        };
        let form = self.formula()?;
        let mut hints = Vec::new();
        if self.eat_keyword("by") {
            hints.push(self.hint()?);
            while self.eat_sym(",") {
                hints.push(self.hint()?);
            }
        }
        // One witness per variable: a second `inst` for the same variable is almost
        // certainly a typo (the first instantiation would silently win otherwise).
        let mut instantiated: BTreeSet<&str> = BTreeSet::new();
        for hint in &hints {
            if let Hint::Inst { var, .. } = hint {
                if !instantiated.insert(var.as_str()) {
                    return Err(self.error(format!(
                        "duplicate instantiation of `{var}` in `by` hints \
                         (each variable may be instantiated once per assertion)"
                    )));
                }
            }
        }
        let _ = self.eat_sym(";");
        Ok((label, form, hints))
    }

    /// One `by` hint: an assumption label, `lemma Name` naming an interactively proven
    /// lemma from the library (injected as an extra assumption of the hinted sequent),
    /// or `inst x := "witness"` supplying a quantifier instantiation (the dispatcher
    /// specialises universal assumptions binding `x` at the witness term).
    ///
    /// `lemma` acts as a keyword only when the following token could actually be a
    /// lemma name: an identifier that does not itself start a new spec statement
    /// (hint terminators are optional, so after `by lemma` an `assert`/`assume`/
    /// `note`/`havoc` keyword or a ghost assignment target must belong to the *next*
    /// statement). An assumption label literally named `lemma` therefore keeps its
    /// pre-existing meaning in every form that parsed before the `by lemma` syntax.
    ///
    /// `inst` acts as a keyword whenever it is followed by `ident :=` — the shape of
    /// an instantiation. This takes precedence over reading `inst` as a label hint
    /// followed by a ghost assignment statement; terminate the hint list with `;`
    /// (`by inst; x := "...";`) to force the label reading.
    fn hint(&mut self) -> Result<Hint, SourceError> {
        if let (Some(Token::Ident(kw)), Some(Token::Ident(next))) = (self.peek(), self.peek_at(1)) {
            if kw == "inst" && self.peek_at(2) == Some(&Token::Sym(":=")) {
                self.bump();
                let var = self.expect_ident()?;
                self.expect_sym(":=")?;
                let line = self.line();
                let witness = self.formula()?;
                // Reject witnesses that cannot be consistently typed at all (e.g.
                // `card 3`): such a hint could never instantiate anything, and the
                // error is far easier to act on here, with a source line, than as a
                // silently ignored hint at dispatch time.
                if let Err(e) = jahob_logic::typecheck::infer(
                    &witness,
                    &jahob_logic::typecheck::TypeEnv::standard(),
                ) {
                    return Err(SourceError {
                        line,
                        message: format!("ill-typed instantiation witness for `{var}`: {e}"),
                    });
                }
                return Ok(Hint::Inst { var, witness });
            }
            let starts_statement = matches!(next.as_str(), "assert" | "assume" | "note" | "havoc")
                || matches!(self.peek_at(2), Some(Token::Sym(s)) if *s == ":=" || *s == ".");
            if kw == "lemma" && !starts_statement {
                self.bump();
                let name = self.expect_ident()?;
                return Ok(Hint::Lemma(name));
            }
        }
        Ok(Hint::Label(self.expect_ident()?))
    }

    // ------------------------------------------------------------------ expressions

    fn resolve_ident(&self, name: &str) -> Expr {
        if self.locals.contains(name) {
            Expr::Local(name.to_string())
        } else {
            Expr::Static(name.to_string())
        }
    }

    fn expr(&mut self) -> Result<Expr, SourceError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SourceError> {
        let mut lhs = self.and_expr()?;
        while self.eat_sym("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SourceError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_sym("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, SourceError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Sym(s @ ("==" | "!=" | "<" | "<=" | ">" | ">="))) => *s,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(match op {
            "==" => Expr::Eq(Box::new(lhs), Box::new(rhs)),
            "!=" => Expr::Neq(Box::new(lhs), Box::new(rhs)),
            "<" => Expr::Lt(Box::new(lhs), Box::new(rhs)),
            "<=" => Expr::Le(Box::new(lhs), Box::new(rhs)),
            ">" => Expr::Lt(Box::new(rhs), Box::new(lhs)),
            _ => Expr::Le(Box::new(rhs), Box::new(lhs)),
        })
    }

    fn add_expr(&mut self) -> Result<Expr, SourceError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_sym("+") {
                lhs = Expr::Plus(Box::new(lhs), Box::new(self.mul_expr()?));
            } else if self.eat_sym("-") {
                lhs = Expr::Minus(Box::new(lhs), Box::new(self.mul_expr()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, SourceError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_sym("*") {
                lhs = Expr::Times(Box::new(lhs), Box::new(self.unary_expr()?));
            } else if self.eat_sym("/") {
                lhs = Expr::Div(Box::new(lhs), Box::new(self.unary_expr()?));
            } else if self.eat_sym("%") {
                lhs = Expr::Mod(Box::new(lhs), Box::new(self.unary_expr()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, SourceError> {
        if self.eat_sym("!") {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, SourceError> {
        let mut e = self.primary_expr()?;
        loop {
            if self.check_sym(".") {
                self.bump();
                let field = self.expect_ident()?;
                if field == "length" {
                    e = Expr::ArrayLength(Box::new(e));
                } else {
                    e = Expr::Field(Box::new(e), field);
                }
            } else if self.check_sym("[") {
                self.bump();
                let index = self.expr()?;
                self.expect_sym("]")?;
                e = Expr::ArrayElem(Box::new(e), Box::new(index));
            } else {
                return Ok(e);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, SourceError> {
        match self.bump() {
            Some(Token::Int(n)) => Ok(Expr::IntLit(n)),
            Some(Token::Ident(s)) => match s.as_str() {
                "null" => Ok(Expr::Null),
                "true" => Ok(Expr::BoolLit(true)),
                "false" => Ok(Expr::BoolLit(false)),
                _ => Ok(self.resolve_ident(&s)),
            },
            Some(Token::Sym("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            other => Err(self.error(format!(
                "expected an expression, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZED_LIST: &str = r#"
        public class List {
            private List next;
            private Object data;
            private static List root;
            private static int size;

            /*: private static ghost specvar nodes :: "obj set" = "{}";
                public static ghost specvar content :: "obj set" = "{}";
                invariant sizeInv: "size = card content";
                invariant rootNodes: "root = null | root : nodes"; */

            public static void addNew(Object x)
            /*: requires "comment ''xFresh'' (x ~: content) & x ~= null"
                modifies content
                ensures "content = old content Un {x}" */
            {
                List n1 = new List();
                n1.next = root;
                n1.data = x;
                root = n1;
                size = size + 1;
                //: nodes := "{n1} Un nodes";
                //: content := "{x} Un content";
                //: note sizeStep: "size = old size + 1 & content = old content Un {x}";
            }

            public static boolean isEmpty()
            /*: ensures "(result = True) = (card content = 0)" */
            {
                return size == 0;
            }
        }
    "#;

    #[test]
    fn parses_the_sized_list_of_figure_6() {
        let program = parse_program(SIZED_LIST).expect("parse");
        assert_eq!(program.classes.len(), 1);
        let list = &program.classes[0];
        assert_eq!(list.name, "List");
        assert_eq!(list.fields.len(), 4);
        assert_eq!(list.spec_vars.len(), 2);
        assert_eq!(list.invariants.len(), 2);
        assert_eq!(list.methods.len(), 2);
        let add = &list.methods[0];
        assert_eq!(add.name, "addNew");
        assert!(add.is_static && add.is_public);
        assert_eq!(add.contract.modifies, vec!["content".to_string()]);
        // Body: local, new, two field writes, two static writes, two ghost assignments,
        // one note.
        assert!(add.body.len() >= 8);
        assert!(add
            .body
            .iter()
            .any(|s| matches!(s, Stmt::GhostAssign { target, .. } if target == "content")));
        assert!(add
            .body
            .iter()
            .any(|s| matches!(s, Stmt::SpecNote { label: Some(l), .. } if l == "sizeStep")));
    }

    #[test]
    fn parsed_program_produces_obligations() {
        let program = parse_program(SIZED_LIST).expect("parse");
        let tasks = crate::program_tasks(&program);
        assert_eq!(tasks.len(), 2);
        for task in &tasks {
            assert!(!task.obligations().is_empty());
        }
    }

    #[test]
    fn parses_lemma_hints_alongside_label_hints() {
        let src = r#"
            class List {
                private static int size;
                public static void touch()
                /*: ensures "True" */
                {
                    //: assert step: "0 <= size" by sizeInv, lemma cardNonNeg;
                    //: assert last: "0 <= size" by lemma;
                    /*: assert a: "0 <= size" by lemma
                        assert b: "0 <= size" by lemma
                        size := "size"; */
                }
            }
        "#;
        let program = parse_program(src).expect("parse");
        let touch = &program.classes[0].methods[0];
        let hints: Vec<Vec<Hint>> = touch
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::SpecAssert { hints, .. } => Some(hints.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            hints[0],
            vec![Hint::label("sizeInv"), Hint::lemma("cardNonNeg")]
        );
        // A hint that is literally the label `lemma` stays a plain label hint: with a
        // `;` terminator, and — since hint terminators are optional — when the next
        // token opens another spec statement (`assert ...`) or a ghost assignment
        // (`size := ...`).
        assert_eq!(hints[1], vec![Hint::label("lemma")]);
        assert_eq!(hints[2], vec![Hint::label("lemma")]);
        assert_eq!(hints[3], vec![Hint::label("lemma")]);
        assert!(touch
            .body
            .iter()
            .any(|s| matches!(s, Stmt::GhostAssign { target, .. } if target == "size")));
    }

    #[test]
    fn parses_inst_hints_alongside_labels_and_lemmas() {
        let src = r#"
            class Table {
                private static int used;
                public static void check()
                /*: ensures "True" */
                {
                    //: assert b1: "card (content Int m) <= used" by inst s := "content Int m";
                    /*: assert b2: "True" by capBound, inst s := "content Un {(k0, v0)}", lemma cardNonNeg
                        assert b3: "True" by inst;
                        used := "used"; */
                }
            }
        "#;
        let program = parse_program(src).expect("parse");
        let hints: Vec<Vec<Hint>> = program.classes[0].methods[0]
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::SpecAssert { hints, .. } => Some(hints.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            hints[0],
            vec![Hint::inst(
                "s",
                jahob_logic::parse_form("content Int m").unwrap()
            )]
        );
        // `inst` composes with label and lemma hints in one list; the tuple witness
        // (containing a comma) parses as one hint.
        assert_eq!(
            hints[1],
            vec![
                Hint::label("capBound"),
                Hint::inst(
                    "s",
                    jahob_logic::parse_form("content Un {(k0, v0)}").unwrap()
                ),
                Hint::lemma("cardNonNeg"),
            ]
        );
        // With an explicit `;` terminator `inst` stays an ordinary label hint (the
        // documented way to disambiguate from a following ghost assignment), and the
        // ghost assignment still parses.
        assert_eq!(hints[2], vec![Hint::label("inst")]);
        assert!(program.classes[0].methods[0]
            .body
            .iter()
            .any(|s| matches!(s, Stmt::GhostAssign { target, .. } if target == "used")));
    }

    #[test]
    fn inst_hint_errors_carry_lines_and_name_the_problem() {
        // Unparsable witness formula.
        let bad_witness = r#"
            class A {
                public static void m()
                /*: ensures "True" */
                {
                    //: assert g: "True" by inst s := "x ==== y";
                }
            }
        "#;
        let err = parse_program(bad_witness).unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.message.contains("formula"), "{err}");

        // Ill-typed witness: internally inconsistent, rejected with the variable name.
        let ill_typed = r#"
            class A {
                public static void m()
                /*: ensures "True" */
                {
                    //: assert g: "True" by inst s := "card 3";
                }
            }
        "#;
        let err = parse_program(ill_typed).unwrap_err();
        assert_eq!(err.line, 6);
        assert!(
            err.message
                .contains("ill-typed instantiation witness for `s`"),
            "{err}"
        );

        // Duplicate instantiation of the same variable in one hint list.
        let duplicate = r#"
            class A {
                public static void m()
                /*: ensures "True" */
                {
                    //: assert g: "True" by inst s := "alloc", inst s := "{}";
                }
            }
        "#;
        let err = parse_program(duplicate).unwrap_err();
        assert!(
            err.message.contains("duplicate instantiation of `s`"),
            "{err}"
        );

        // Missing witness after `:=`.
        let missing = r#"
            class A {
                public static void m()
                /*: ensures "True" */
                {
                    //: assert g: "True" by inst s := ;
                }
            }
        "#;
        let err = parse_program(missing).unwrap_err();
        assert!(
            err.message
                .contains("expected a quoted specification string"),
            "{err}"
        );
    }

    #[test]
    fn parses_defined_specvars_via_vardefs() {
        let src = r#"
            class Registry {
                private static Object first;
                /*: public static ghost specvar nodes :: "obj set";
                    public static specvar nonempty :: "bool";
                    vardefs "nonempty == nodes ~= {}"; */
                public static void touch()
                /*: ensures "True" */
                { return; }
            }
        "#;
        let program = parse_program(src).expect("parse");
        let class = &program.classes[0];
        let nonempty = class
            .spec_vars
            .iter()
            .find(|v| v.name == "nonempty")
            .unwrap();
        assert!(matches!(nonempty.kind, SpecVarKind::Defined(_)));
    }

    #[test]
    fn parses_control_flow_arrays_and_loop_invariants() {
        let src = r#"
            class Buffer {
                private static Object[] elems;
                private static int count;
                /*: invariant countNonNeg: "0 <= count"; */
                public static void compactTo(int n)
                /*: requires "0 <= n & n <= count" modifies count ensures "count = n" */
                {
                    while /*: inv "n <= count" */ (n < count) {
                        count = count - 1;
                    }
                    if (count > n) {
                        count = n;
                    } else {
                        elems[0] = null;
                    }
                }
            }
        "#;
        let program = parse_program(src).expect("parse");
        let body = &program.classes[0].methods[0].body;
        assert!(body.iter().any(|s| matches!(s, Stmt::While { .. })));
        assert!(body.iter().any(|s| matches!(s, Stmt::If { .. })));
        let task = &crate::program_tasks(&program)[0];
        let labels: Vec<String> = task
            .obligations()
            .iter()
            .flat_map(|o| o.sequent.labels.clone())
            .collect();
        assert!(labels.iter().any(|l| l == "loop_inv_initial"));
        assert!(labels.iter().any(|l| l == "bounds_check"));
    }

    #[test]
    fn claimedby_annotations_are_accepted() {
        let src = r#"
            public /*: claimedby AssocList */ class Node {
                public Object key;
                public Node next;
            }
        "#;
        let program = parse_program(src).expect("parse");
        assert_eq!(program.classes[0].fields.len(), 2);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let missing_brace = "class A {\n int x;\n";
        let err = parse_program(missing_brace).unwrap_err();
        assert!(err.line >= 2);

        let bad_formula = "class A {\n /*: invariant i: \"x ==== y\"; */\n}";
        let err = parse_program(bad_formula).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("formula"));

        let vardefs_without_decl = "class A {\n /*: vardefs \"ghostless == {}\"; */\n}";
        assert!(parse_program(vardefs_without_decl).is_err());
    }

    #[test]
    fn greater_than_flips_to_less_than() {
        let src = r#"
            class C {
                private static int n;
                public static boolean positive()
                /*: ensures "True" */
                { return n > 0; }
            }
        "#;
        let program = parse_program(src).expect("parse");
        let body = &program.classes[0].methods[0].body;
        assert!(matches!(
            &body[0],
            Stmt::Return(Some(Expr::Lt(a, b)))
                if matches!(**a, Expr::IntLit(0)) && matches!(**b, Expr::Static(_))
        ));
    }
}
