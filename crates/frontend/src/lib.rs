//! # jahob-frontend
//!
//! The frontend of the Jahob reproduction: the program model for annotated Java-subset
//! classes (fields, ghost and defined specification variables, class invariants, method
//! contracts, loop invariants and in-body proof commands — §2–§3 of *Full Functional
//! Verification of Linked Data Structures*, PLDI 2008) and its translation into extended
//! guarded commands (§4.2).
//!
//! Specification formulas are written in the Isabelle-style concrete syntax of
//! `jahob-logic`. Program structure can be given in two equivalent ways:
//!
//! * as a programmatic AST built with [`ClassDef`] / [`MethodBuilder`] (see DESIGN.md for
//!   the substitution rationale), or
//! * as MiniJava+spec source text — Java classes whose specifications live in
//!   `/*: ... */` and `//: ...` comments, as in the paper's Figures 2–6 — parsed by
//!   [`parse_program`].
//!
//! The translation inserts null-dereference and array-bounds assertions, models field and
//! array updates with `fieldWrite`/`arrayWrite`, snapshots the pre-state for `old`, and
//! weaves preconditions, postconditions, class invariants and frame conditions into the
//! command stream, exactly as §4.2–§4.4 describe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod translate;

pub use ast::{
    ClassDef, Contract, Expr, FieldDef, Hint, Invariant, JavaType, Lvalue, MethodBuilder,
    MethodDef, Program, SpecVarDef, SpecVarKind, Stmt,
};
pub use parser::{parse_program, SourceError};
pub use translate::{method_task, program_tasks, MethodTask};
