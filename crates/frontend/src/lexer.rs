//! Lexer for the MiniJava+spec surface syntax.
//!
//! Jahob programs are Java source files whose specifications live in special comments of
//! the form `/*: ... */` or `//: ...` (§2.1 of the paper), so that standard Java
//! compilers can ignore them. The lexer therefore distinguishes three kinds of comments:
//!
//! * ordinary comments (`/* ... */`, `// ...`) are skipped;
//! * specification comments are lexed *through*: the lexer emits a [`Token::SpecOpen`]
//!   marker, then tokenises the interior (where specification formulas appear as string
//!   literals), then emits [`Token::SpecClose`];
//! * string literals carry the text of specification formulas, which the parser hands to
//!   [`jahob_logic::parse_form`].

use std::fmt;

/// A lexical token of the MiniJava+spec language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (the text between the quotes, used for specification formulas).
    Str(String),
    /// Start of a specification comment (`/*:` or `//:`).
    SpecOpen,
    /// End of a specification comment (`*/` or the end of the `//:` line).
    SpecClose,
    /// A punctuation or operator symbol (`{`, `==`, `:=`, ...).
    Sym(&'static str),
}

impl Token {
    /// Returns the identifier text if the token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::SpecOpen => write!(f, "/*:"),
            Token::SpecClose => write!(f, "*/"),
            Token::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// A lexical error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Line on which the error occurred.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// A token paired with the line it started on (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// Tokenises MiniJava+spec source text.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated comments or string literals and on characters
/// outside the language.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Spanned>,
    /// Are we currently inside a `//:` spec comment (closed at end of line)?
    in_line_spec: bool,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            out: Vec::new(),
            in_line_spec: false,
            source,
        }
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<char> {
        self.chars.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, token: Token) {
        self.out.push(Spanned {
            token,
            line: self.line,
        });
    }

    fn run(mut self) -> Result<Vec<Spanned>, LexError> {
        let _ = self.source;
        while let Some(c) = self.peek() {
            if c == '\n' && self.in_line_spec {
                self.in_line_spec = false;
                self.push(Token::SpecClose);
                self.bump();
                continue;
            }
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            // Comments and specification comments.
            if c == '/' && self.peek2() == Some('*') {
                if self.peek3() == Some(':') {
                    self.bump();
                    self.bump();
                    self.bump();
                    self.push(Token::SpecOpen);
                    continue;
                }
                self.skip_block_comment()?;
                continue;
            }
            if c == '*' && self.peek2() == Some('/') {
                // Closing a `/*:` specification comment.
                self.bump();
                self.bump();
                self.push(Token::SpecClose);
                continue;
            }
            if c == '/' && self.peek2() == Some('/') {
                if self.peek3() == Some(':') {
                    self.bump();
                    self.bump();
                    self.bump();
                    self.in_line_spec = true;
                    self.push(Token::SpecOpen);
                    continue;
                }
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
                continue;
            }
            if c == '"' {
                self.lex_string()?;
                continue;
            }
            if c.is_ascii_digit() {
                self.lex_number();
                continue;
            }
            if c.is_alphabetic() || c == '_' || c == '$' {
                self.lex_ident();
                continue;
            }
            self.lex_symbol()?;
        }
        if self.in_line_spec {
            self.push(Token::SpecClose);
        }
        Ok(self.out)
    }

    fn skip_block_comment(&mut self) -> Result<(), LexError> {
        // Consume "/*".
        self.bump();
        self.bump();
        loop {
            match self.peek() {
                Some('*') if self.peek2() == Some('/') => {
                    self.bump();
                    self.bump();
                    return Ok(());
                }
                Some(_) => {
                    self.bump();
                }
                None => return Err(self.error("unterminated comment")),
            }
        }
    }

    fn lex_string(&mut self) -> Result<(), LexError> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some(c) => text.push(c),
                    None => return Err(self.error("unterminated string literal")),
                },
                Some(c) => text.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
        self.push(Token::Str(text));
        Ok(())
    }

    fn lex_number(&mut self) {
        let mut n: i64 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n * 10 + i64::from(d);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Token::Int(n));
    }

    fn lex_ident(&mut self) {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '$' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Token::Ident(s));
    }

    fn lex_symbol(&mut self) -> Result<(), LexError> {
        let c = self.peek().expect("symbol start");
        let two: Option<&'static str> = match (c, self.peek2()) {
            ('=', Some('=')) => Some("=="),
            ('!', Some('=')) => Some("!="),
            ('<', Some('=')) => Some("<="),
            ('>', Some('=')) => Some(">="),
            ('&', Some('&')) => Some("&&"),
            ('|', Some('|')) => Some("||"),
            (':', Some('=')) => Some(":="),
            (':', Some(':')) => Some("::"),
            _ => None,
        };
        if let Some(sym) = two {
            self.bump();
            self.bump();
            self.push(Token::Sym(sym));
            return Ok(());
        }
        let one: Option<&'static str> = match c {
            '{' => Some("{"),
            '}' => Some("}"),
            '(' => Some("("),
            ')' => Some(")"),
            '[' => Some("["),
            ']' => Some("]"),
            ';' => Some(";"),
            ',' => Some(","),
            '.' => Some("."),
            '=' => Some("="),
            '<' => Some("<"),
            '>' => Some(">"),
            '+' => Some("+"),
            '-' => Some("-"),
            '*' => Some("*"),
            '/' => Some("/"),
            '%' => Some("%"),
            '!' => Some("!"),
            ':' => Some(":"),
            _ => None,
        };
        match one {
            Some(sym) => {
                self.bump();
                self.push(Token::Sym(sym));
                Ok(())
            }
            None => Err(self.error(format!("unexpected character {c:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src)
            .expect("lex")
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn lexes_java_tokens() {
        assert_eq!(
            toks("class List { int size; }"),
            vec![
                Token::Ident("class".into()),
                Token::Ident("List".into()),
                Token::Sym("{"),
                Token::Ident("int".into()),
                Token::Ident("size".into()),
                Token::Sym(";"),
                Token::Sym("}"),
            ]
        );
    }

    #[test]
    fn distinguishes_spec_comments_from_ordinary_comments() {
        let ts = toks("/* ignored */ //: content := \"{}\";\nx = 1; // also ignored");
        assert_eq!(ts[0], Token::SpecOpen);
        assert!(ts.contains(&Token::Sym(":=")));
        assert!(ts.contains(&Token::Str("{}".into())));
        assert!(ts.contains(&Token::SpecClose));
        assert!(ts.contains(&Token::Ident("x".into())));
        assert!(!ts
            .iter()
            .any(|t| matches!(t, Token::Ident(s) if s == "ignored" || s == "also")));
    }

    #[test]
    fn block_spec_comments_are_lexed_through() {
        let ts = toks("/*: requires \"x ~= null\" ensures \"True\" */");
        assert_eq!(ts.first(), Some(&Token::SpecOpen));
        assert_eq!(ts.last(), Some(&Token::SpecClose));
        assert!(ts.contains(&Token::Ident("requires".into())));
        assert!(ts.contains(&Token::Str("x ~= null".into())));
    }

    #[test]
    fn lexes_operators_and_numbers() {
        let ts = toks("i <= 10 && a[i] != null");
        assert!(ts.contains(&Token::Sym("<=")));
        assert!(ts.contains(&Token::Int(10)));
        assert!(ts.contains(&Token::Sym("&&")));
        assert!(ts.contains(&Token::Sym("[")));
        assert!(ts.contains(&Token::Sym("!=")));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let spanned = lex("class A {\n int x;\n}").expect("lex");
        let x = spanned
            .iter()
            .find(|s| s.token == Token::Ident("x".into()))
            .unwrap();
        assert_eq!(x.line, 2);
    }

    #[test]
    fn reports_unterminated_constructs() {
        assert!(lex("/* never closed").is_err());
        assert!(lex("\"never closed").is_err());
        assert!(lex("int x = `bad`;").is_err());
    }
}
