//! The program model: annotated Java classes, fields, specification variables,
//! invariants, method contracts and method bodies.
//!
//! The paper's Jahob consumes Java source files whose specifications live in `/*: ... */`
//! comments. This reproduction substitutes a *programmatic* abstract syntax for the Java
//! surface syntax (see DESIGN.md): the same constructs — classes, instance and static
//! fields, ghost and defined specification variables, class invariants, `requires` /
//! `modifies` / `ensures` contracts, loop invariants and in-body proof commands — are
//! built with Rust constructors, while every specification *formula* is still written in
//! the Isabelle-style concrete syntax and parsed by `jahob-logic`. The verification
//! pipeline downstream of parsing (translation to guarded commands, VC generation,
//! splitting, integrated reasoning) is exercised exactly as in the paper.

use jahob_logic::form::Form;
use jahob_logic::parse_form;
use jahob_logic::types::Type;

pub use jahob_vcgen::Hint;

/// A Java-level type (the subset the suite uses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JavaType {
    /// A reference to an object of the named class.
    Ref(String),
    /// A mathematical integer (§4.1).
    Int,
    /// A boolean.
    Bool,
    /// An array of object references.
    ObjArray,
}

impl JavaType {
    /// The logical type used for variables of this Java type.
    pub fn logical(&self) -> Type {
        match self {
            JavaType::Ref(_) | JavaType::ObjArray => Type::Obj,
            JavaType::Int => Type::Int,
            JavaType::Bool => Type::Bool,
        }
    }
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (unqualified).
    pub name: String,
    /// Field type.
    pub ty: JavaType,
    /// `true` for static fields (one global cell), `false` for instance fields (a
    /// function from objects).
    pub is_static: bool,
}

/// The kind of a specification variable (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecVarKind {
    /// A ghost variable, updated by explicit specification assignments.
    Ghost,
    /// A defined variable with its definition.
    Defined(Form),
}

/// A specification variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecVarDef {
    /// Name (unqualified).
    pub name: String,
    /// Logical type.
    pub ty: Type,
    /// Ghost or defined.
    pub kind: SpecVarKind,
    /// Whether clients may mention the variable.
    pub is_public: bool,
    /// Whether the variable is static (class-level) or per-object (lifted to a function
    /// type by the frontend, §3.2).
    pub is_static: bool,
}

/// A named class invariant (§3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct Invariant {
    /// The label used in `by` hints and error messages.
    pub name: String,
    /// The invariant formula.
    pub form: Form,
    /// Public invariants are visible to (and guaranteed for) clients.
    pub is_public: bool,
}

/// A method contract (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Contract {
    /// Precondition.
    pub requires: Form,
    /// Names of the public state components the method may change.
    pub modifies: Vec<String>,
    /// Postcondition (may mention `old`).
    pub ensures: Form,
}

impl Default for Contract {
    fn default() -> Self {
        Contract {
            requires: Form::tt(),
            modifies: Vec::new(),
            ensures: Form::tt(),
        }
    }
}

/// An l-value: the target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum Lvalue {
    /// A local variable or parameter.
    Local(String),
    /// A static field or static specification variable of the enclosing class.
    Static(String),
    /// An instance field of the object denoted by the expression.
    Field(Expr, String),
    /// An element of an array.
    ArrayElem(Expr, Expr),
}

/// A side-effect-free expression of the Java subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A local variable, parameter, or `this`.
    Local(String),
    /// A static field of the enclosing class.
    Static(String),
    /// `null`.
    Null,
    /// Integer literal.
    IntLit(i64),
    /// Boolean literal.
    BoolLit(bool),
    /// Instance field access `e.f`.
    Field(Box<Expr>, String),
    /// Array element `a[i]`.
    ArrayElem(Box<Expr>, Box<Expr>),
    /// Array length `a.length`.
    ArrayLength(Box<Expr>),
    /// Equality `e1 == e2`.
    Eq(Box<Expr>, Box<Expr>),
    /// Disequality `e1 != e2`.
    Neq(Box<Expr>, Box<Expr>),
    /// Integer comparison `e1 < e2`.
    Lt(Box<Expr>, Box<Expr>),
    /// Integer comparison `e1 <= e2`.
    Le(Box<Expr>, Box<Expr>),
    /// Addition.
    Plus(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Minus(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Times(Box<Expr>, Box<Expr>),
    /// Integer division.
    Div(Box<Expr>, Box<Expr>),
    /// Remainder.
    Mod(Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Short-circuit conjunction (pure, so plain conjunction logically).
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit disjunction.
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for `e.f`.
    pub fn field(e: Expr, f: impl Into<String>) -> Expr {
        Expr::Field(Box::new(e), f.into())
    }

    /// Convenience constructor for a local variable.
    pub fn local(name: impl Into<String>) -> Expr {
        Expr::Local(name.into())
    }

    /// Convenience constructor for equality with `null`.
    pub fn is_null(e: Expr) -> Expr {
        Expr::Eq(Box::new(e), Box::new(Expr::Null))
    }
}

/// A statement of the Java subset plus the specification statements of §3.5.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Declaration of a local variable with an optional initialiser.
    Local {
        /// Variable name.
        name: String,
        /// Variable type.
        ty: JavaType,
        /// Optional initial value.
        init: Option<Expr>,
    },
    /// Assignment to an l-value.
    Assign(Lvalue, Expr),
    /// Allocation `target = new Class()`.
    New {
        /// The local or static variable receiving the fresh object.
        target: Lvalue,
        /// The class being instantiated.
        class: String,
    },
    /// Allocation of an object array `target = new Object[len]`.
    NewArray {
        /// The variable receiving the fresh array.
        target: Lvalue,
        /// The length expression.
        length: Expr,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_branch: Vec<Stmt>,
        /// Else-branch.
        else_branch: Vec<Stmt>,
    },
    /// While loop with a loop invariant (§3.5); the invariant formula is written in
    /// specification syntax.
    While {
        /// Loop invariant.
        invariant: Form,
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Return from the method (with a value for non-void methods).
    Return(Option<Expr>),
    /// Specification assignment to a ghost variable: `x := "formula"` or
    /// `x..f := "formula"` (per-object ghost field update).
    GhostAssign {
        /// The ghost variable (static) or ghost field name.
        target: String,
        /// Optional receiver for per-object ghost fields.
        receiver: Option<Expr>,
        /// The new value.
        value: Form,
    },
    /// `assert F [by hints]` (statically checked, §3.5).
    SpecAssert {
        /// Optional label.
        label: Option<String>,
        /// The asserted formula.
        form: Form,
        /// Proof hints: assumption labels, `lemma Name` injections, and
        /// `inst x := "w"` quantifier instantiations (see [`Hint`]).
        hints: Vec<Hint>,
    },
    /// `assume F` (trusted; emits a warning in reports).
    SpecAssume {
        /// Optional label.
        label: Option<String>,
        /// The assumed formula.
        form: Form,
    },
    /// `note F by hints`: prove and then use as a lemma.
    SpecNote {
        /// Optional label.
        label: Option<String>,
        /// The noted formula.
        form: Form,
        /// Proof hints (labels, lemmas, instantiations — see [`Hint`]).
        hints: Vec<Hint>,
    },
    /// `havoc x suchThat F`.
    SpecHavoc {
        /// The changed variables.
        vars: Vec<String>,
        /// Constraint on the new values.
        such_that: Option<Form>,
    },
}

/// A method definition.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDef {
    /// Method name.
    pub name: String,
    /// `true` for public methods (which get the class invariants woven into their
    /// contract automatically, §3.4).
    pub is_public: bool,
    /// `true` for static methods (no receiver).
    pub is_static: bool,
    /// Parameters.
    pub params: Vec<(String, JavaType)>,
    /// Return type (`None` for void).
    pub return_type: Option<JavaType>,
    /// The contract.
    pub contract: Contract,
    /// The body.
    pub body: Vec<Stmt>,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Fields.
    pub fields: Vec<FieldDef>,
    /// Specification variables.
    pub spec_vars: Vec<SpecVarDef>,
    /// Class invariants.
    pub invariants: Vec<Invariant>,
    /// Methods.
    pub methods: Vec<MethodDef>,
}

impl ClassDef {
    /// Creates an empty class.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            fields: Vec::new(),
            spec_vars: Vec::new(),
            invariants: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Adds an instance field.
    pub fn field(mut self, name: &str, ty: JavaType) -> Self {
        self.fields.push(FieldDef {
            name: name.to_string(),
            ty,
            is_static: false,
        });
        self
    }

    /// Adds a static field.
    pub fn static_field(mut self, name: &str, ty: JavaType) -> Self {
        self.fields.push(FieldDef {
            name: name.to_string(),
            ty,
            is_static: true,
        });
        self
    }

    /// Adds a static ghost specification variable.
    pub fn ghost_var(mut self, name: &str, ty: &str, public: bool) -> Self {
        self.spec_vars.push(SpecVarDef {
            name: name.to_string(),
            ty: jahob_logic::parse_type(ty).expect("spec variable type"),
            kind: SpecVarKind::Ghost,
            is_public: public,
            is_static: true,
        });
        self
    }

    /// Adds a per-object ghost specification variable (lifted to a function from
    /// objects).
    pub fn ghost_field(mut self, name: &str, ty: &str) -> Self {
        let value = jahob_logic::parse_type(ty).expect("spec variable type");
        self.spec_vars.push(SpecVarDef {
            name: name.to_string(),
            ty: Type::fun(Type::Obj, value),
            kind: SpecVarKind::Ghost,
            is_public: false,
            is_static: false,
        });
        self
    }

    /// Adds a static defined specification variable (a `vardefs` entry).
    pub fn defined_var(mut self, name: &str, ty: &str, definition: &str, public: bool) -> Self {
        self.spec_vars.push(SpecVarDef {
            name: name.to_string(),
            ty: jahob_logic::parse_type(ty).expect("spec variable type"),
            kind: SpecVarKind::Defined(parse_form(definition).expect("spec variable definition")),
            is_public: public,
            is_static: true,
        });
        self
    }

    /// Adds a (private) class invariant.
    pub fn invariant(mut self, name: &str, form: &str) -> Self {
        self.invariants.push(Invariant {
            name: name.to_string(),
            form: parse_form(form).expect("invariant formula"),
            is_public: false,
        });
        self
    }

    /// Adds a public class invariant.
    pub fn public_invariant(mut self, name: &str, form: &str) -> Self {
        self.invariants.push(Invariant {
            name: name.to_string(),
            form: parse_form(form).expect("invariant formula"),
            is_public: true,
        });
        self
    }

    /// Adds a method.
    pub fn method(mut self, m: MethodDef) -> Self {
        self.methods.push(m);
        self
    }
}

/// A whole program: the class under verification plus any auxiliary (node) classes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The classes of the program.
    pub classes: Vec<ClassDef>,
}

impl Program {
    /// Creates a program from classes.
    pub fn new(classes: Vec<ClassDef>) -> Self {
        Program { classes }
    }

    /// Finds a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Iterates over `(class, method)` pairs.
    pub fn methods(&self) -> impl Iterator<Item = (&ClassDef, &MethodDef)> {
        self.classes
            .iter()
            .flat_map(|c| c.methods.iter().map(move |m| (c, m)))
    }
}

/// Builder for methods.
#[derive(Debug, Clone)]
pub struct MethodBuilder {
    def: MethodDef,
}

impl MethodBuilder {
    /// Starts a public method.
    pub fn public(name: &str) -> Self {
        MethodBuilder {
            def: MethodDef {
                name: name.to_string(),
                is_public: true,
                is_static: false,
                params: Vec::new(),
                return_type: None,
                contract: Contract::default(),
                body: Vec::new(),
            },
        }
    }

    /// Marks the method static.
    pub fn static_method(mut self) -> Self {
        self.def.is_static = true;
        self
    }

    /// Marks the method private (class invariants are not woven in).
    pub fn private(mut self) -> Self {
        self.def.is_public = false;
        self
    }

    /// Adds a parameter.
    pub fn param(mut self, name: &str, ty: JavaType) -> Self {
        self.def.params.push((name.to_string(), ty));
        self
    }

    /// Sets the return type.
    pub fn returns(mut self, ty: JavaType) -> Self {
        self.def.return_type = Some(ty);
        self
    }

    /// Sets the precondition.
    pub fn requires(mut self, form: &str) -> Self {
        self.def.contract.requires = parse_form(form).expect("requires clause");
        self
    }

    /// Sets the frame (modifies clause).
    pub fn modifies(mut self, vars: &[&str]) -> Self {
        self.def.contract.modifies = vars.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Sets the postcondition.
    pub fn ensures(mut self, form: &str) -> Self {
        self.def.contract.ensures = parse_form(form).expect("ensures clause");
        self
    }

    /// Sets the body.
    pub fn body(mut self, stmts: Vec<Stmt>) -> Self {
        self.def.body = stmts;
        self
    }

    /// Finishes the method.
    pub fn build(self) -> MethodDef {
        self.def
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_builder_collects_members() {
        let class = ClassDef::new("List")
            .static_field("root", JavaType::Ref("List".into()))
            .field("next", JavaType::Ref("List".into()))
            .ghost_var("content", "obj set", true)
            .defined_var("nonempty", "bool", "content ~= {}", false)
            .invariant("rootAlloc", "root : alloc")
            .method(MethodBuilder::public("clear").static_method().build());
        assert_eq!(class.fields.len(), 2);
        assert_eq!(class.spec_vars.len(), 2);
        assert_eq!(class.invariants.len(), 1);
        assert_eq!(class.methods.len(), 1);
    }

    #[test]
    fn java_types_map_to_logical_types() {
        assert_eq!(JavaType::Int.logical(), Type::Int);
        assert_eq!(JavaType::Ref("Node".into()).logical(), Type::Obj);
        assert_eq!(JavaType::ObjArray.logical(), Type::Obj);
    }

    #[test]
    fn method_builder_sets_contract() {
        let m = MethodBuilder::public("add")
            .static_method()
            .param("x", JavaType::Ref("Object".into()))
            .requires("x ~= null")
            .modifies(&["content"])
            .ensures("content = old content Un {x}")
            .build();
        assert!(m.is_static && m.is_public);
        assert_eq!(m.contract.modifies, vec!["content".to_string()]);
        assert!(m.contract.ensures.contains_const(&jahob_logic::Const::Old));
    }

    #[test]
    fn program_lookup() {
        let p = Program::new(vec![ClassDef::new("A"), ClassDef::new("B")]);
        assert!(p.class("A").is_some());
        assert!(p.class("C").is_none());
        assert_eq!(p.methods().count(), 0);
    }
}
