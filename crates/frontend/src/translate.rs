//! Translation from the program model to extended guarded commands (§4.2).
//!
//! For every method the translator produces a command sequence that
//!
//! 1. assumes the background class axioms (typing of parameters, receivers and fields,
//!    allocation facts),
//! 2. assumes the method precondition and the class invariants (assume/guarantee, §3.3),
//! 3. snapshots the pre-state so `old` expressions in the postcondition can be resolved,
//! 4. translates the body, inserting null-dereference and array-bounds assertions and
//!    modelling field updates with `fieldWrite`, and
//! 5. at every exit point asserts the postcondition, the class invariants and the frame
//!    condition for public state not listed in the `modifies` clause.
//!
//! The resulting commands are desugared and turned into proof obligations by
//! `jahob-vcgen`.

use crate::ast::{ClassDef, Expr, Hint, JavaType, Lvalue, MethodDef, Program, SpecVarKind, Stmt};
use jahob_logic::form::{Const, Form, Ident};
use jahob_logic::rewrite::resolve_old;
use jahob_logic::types::Type;
use jahob_logic::TypeEnv;
use jahob_provers::{LemmaLibrary, ProverContext};
use jahob_vcgen::{desugar, verification_conditions, Command, DesugarEnv, ProofObligation};
use std::collections::{BTreeMap, BTreeSet};

/// Everything needed to verify one method.
#[derive(Debug, Clone)]
pub struct MethodTask {
    /// The class name.
    pub class: String,
    /// The method name.
    pub method: String,
    /// The extended guarded commands of the verification task.
    pub commands: Vec<Command>,
    /// The desugaring environment (definitions of defined specification variables and
    /// variable types).
    pub env: DesugarEnv,
    /// The logical types of all global variables (used by prover interfaces).
    pub type_env: TypeEnv,
}

impl MethodTask {
    /// The proof obligations of this method (desugar, weakest precondition, split).
    pub fn obligations(&self) -> Vec<ProofObligation> {
        let simple = desugar(&self.commands, &self.env);
        verification_conditions(&simple, Form::tt(), &self.env)
    }

    /// Names of set-typed global variables (for prover approximation options).
    pub fn set_vars(&self) -> BTreeSet<String> {
        self.type_env
            .iter()
            .filter(|(_, t)| t.is_set() || matches!(t, Type::Fun(_, b) if b.is_set()))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Names of function-typed (field-like) global variables.
    pub fn fun_vars(&self) -> BTreeSet<String> {
        self.type_env
            .iter()
            .filter(|(_, t)| matches!(t, Type::Fun(_, b) if !b.is_set()))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// A display name `Class.method`.
    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.class, self.method)
    }

    /// The prover context of this method: the set/function classification of its global
    /// variables plus the (shared) lemma library — everything the prover interfaces
    /// need alongside each obligation. This is the single construction point batching
    /// layers and tools build their per-method contexts from.
    pub fn prover_context(&self, lemmas: &LemmaLibrary) -> ProverContext {
        ProverContext {
            set_vars: self.set_vars(),
            fun_vars: self.fun_vars(),
            lemmas: lemmas.clone(),
        }
    }
}

/// Builds the verification task for `class.method`.
///
/// # Panics
///
/// Panics if the method does not exist in the class.
pub fn method_task(program: &Program, class: &ClassDef, method: &MethodDef) -> MethodTask {
    let mut tx = Translator::new(program, class, method);
    let commands = tx.build();
    MethodTask {
        class: class.name.clone(),
        method: method.name.clone(),
        commands,
        env: tx.env,
        type_env: tx.type_env,
    }
}

/// Builds verification tasks for every method of every class in the program.
pub fn program_tasks(program: &Program) -> Vec<MethodTask> {
    program
        .methods()
        .map(|(c, m)| method_task(program, c, m))
        .collect()
}

struct Translator<'a> {
    program: &'a Program,
    class: &'a ClassDef,
    method: &'a MethodDef,
    env: DesugarEnv,
    type_env: TypeEnv,
    fresh: u32,
    /// Commands asserted at every exit point (postcondition, invariants, frame).
    exit_checks: Vec<Command>,
    /// Pre-state snapshot names (`v ↦ old$v`), used to resolve `old` expressions both in
    /// the postcondition and in specification constructs inside the body.
    snapshot: BTreeMap<Ident, Ident>,
}

impl<'a> Translator<'a> {
    fn new(program: &'a Program, class: &'a ClassDef, method: &'a MethodDef) -> Self {
        let mut type_env = TypeEnv::standard();
        let mut env = DesugarEnv::default();
        // Declare classes, fields and specification variables of the whole program.
        for c in &program.classes {
            type_env.insert(c.name.clone(), Type::obj_set());
            for f in &c.fields {
                let ty = if f.is_static {
                    f.ty.logical()
                } else {
                    Type::fun(Type::Obj, f.ty.logical())
                };
                type_env.insert(f.name.clone(), ty.clone());
                env.var_types.insert(f.name.clone(), ty);
            }
            for sv in &c.spec_vars {
                type_env.insert(sv.name.clone(), sv.ty.clone());
                env.var_types.insert(sv.name.clone(), sv.ty.clone());
                if let SpecVarKind::Defined(def) = &sv.kind {
                    env.definitions.insert(sv.name.clone(), def.clone());
                }
            }
        }
        env.var_types.insert("alloc".into(), Type::obj_set());
        env.var_types
            .insert("arrayState".into(), Type::obj_array_state());
        // Parameters and receiver.
        for (p, ty) in &method.params {
            type_env.insert(p.clone(), ty.logical());
            env.var_types.insert(p.clone(), ty.logical());
        }
        if !method.is_static {
            type_env.insert("this", Type::Obj);
            env.var_types.insert("this".into(), Type::Obj);
        }
        if let Some(rt) = &method.return_type {
            type_env.insert("result", rt.logical());
            env.var_types.insert("result".into(), rt.logical());
        }
        Translator {
            program,
            class,
            method,
            env,
            type_env,
            fresh: 0,
            exit_checks: Vec::new(),
            snapshot: BTreeMap::new(),
        }
    }

    /// Resolves `old e` expressions in a body specification formula against the pre-state
    /// snapshot taken at method entry.
    fn resolve_spec_old(&self, form: &Form) -> Form {
        resolve_old(form, &self.snapshot)
    }

    /// Resolves `old` inside instantiation witnesses: `by inst s := "old content"` must
    /// substitute the pre-state snapshot variable, exactly like the spec formula the
    /// hint is attached to. Label and lemma hints carry no formulas and pass through.
    fn resolve_spec_hints(&self, hints: &[Hint]) -> Vec<Hint> {
        hints
            .iter()
            .map(|h| match h {
                Hint::Inst { var, witness } => Hint::Inst {
                    var: var.clone(),
                    witness: self.resolve_spec_old(witness),
                },
                other => other.clone(),
            })
            .collect()
    }

    fn fresh_var(&mut self, base: &str, ty: Type) -> Ident {
        self.fresh += 1;
        let name = format!("{base}${}", self.fresh);
        self.env.var_types.insert(name.clone(), ty);
        name
    }

    /// All class-level state variables (fields, static fields, specification variables)
    /// of the whole program, used for pre-state snapshots and frame conditions.
    fn global_state_vars(&self) -> Vec<(Ident, Type)> {
        let mut out: Vec<(Ident, Type)> = Vec::new();
        for c in &self.program.classes {
            for f in &c.fields {
                let ty = if f.is_static {
                    f.ty.logical()
                } else {
                    Type::fun(Type::Obj, f.ty.logical())
                };
                out.push((f.name.clone(), ty));
            }
            for sv in &c.spec_vars {
                out.push((sv.name.clone(), sv.ty.clone()));
            }
        }
        out.push(("alloc".into(), Type::obj_set()));
        out.push(("arrayState".into(), Type::obj_array_state()));
        out
    }

    fn build(&mut self) -> Vec<Command> {
        let mut out = Vec::new();
        self.background_assumptions(&mut out);
        // Precondition and invariants.
        out.push(Command::Assume {
            label: Some("pre".into()),
            form: self.method.contract.requires.clone(),
        });
        if self.method.is_public {
            for inv in &self.class.invariants {
                out.push(Command::Assume {
                    label: Some(inv.name.clone()),
                    form: inv.form.clone(),
                });
            }
        }
        // Pre-state snapshot for `old`.
        let mut snapshot: BTreeMap<Ident, Ident> = BTreeMap::new();
        for (v, ty) in self.global_state_vars() {
            let pre = format!("old${v}");
            self.env.var_types.insert(pre.clone(), ty.clone());
            self.type_env.insert(pre.clone(), ty);
            out.push(Command::Assume {
                label: None,
                form: Form::eq(Form::var(pre.clone()), Form::var(v.clone())),
            });
            snapshot.insert(v, pre);
        }
        self.snapshot = snapshot;
        // Exit checks: postcondition (with `old` resolved), invariants, frame condition.
        let ensures = resolve_old(&self.method.contract.ensures, &self.snapshot);
        let mut exit = vec![Command::Assert {
            label: Some("post".into()),
            form: ensures,
            hints: Vec::new(),
        }];
        if self.method.is_public {
            for inv in &self.class.invariants {
                exit.push(Command::Assert {
                    label: Some(format!("theinv_{}", inv.name)),
                    form: inv.form.clone(),
                    hints: Vec::new(),
                });
            }
            // Frame: public specification variables not in the modifies clause are
            // unchanged (§3.3; private representation changes are not exposed).
            for c in &self.program.classes {
                for sv in &c.spec_vars {
                    if sv.is_public && !self.method.contract.modifies.contains(&sv.name) {
                        exit.push(Command::Assert {
                            label: Some(format!("frame_{}", sv.name)),
                            form: Form::eq(
                                Form::var(sv.name.clone()),
                                Form::var(format!("old${}", sv.name)),
                            ),
                            hints: Vec::new(),
                        });
                    }
                }
            }
        }
        self.exit_checks = exit;

        // The body, followed by the exit checks for the fall-through path.
        let body = self.method.body.clone();
        let mut body_cmds = self.statements(&body);
        out.append(&mut body_cmds);
        out.extend(self.exit_checks.clone());
        out
    }

    /// Class axioms: parameter/receiver typing, field typing, null is unallocated.
    fn background_assumptions(&mut self, out: &mut Vec<Command>) {
        // null is never an element of a class or of alloc.
        for c in &self.program.classes {
            out.push(Command::Assume {
                label: Some(format!("axiom_nullNotIn{}", c.name)),
                form: jahob_logic::parse_form(&format!("null ~: {}", c.name)).expect("axiom"),
            });
        }
        out.push(Command::Assume {
            label: Some("axiom_nullNotAlloc".into()),
            form: jahob_logic::parse_form("null ~: alloc").expect("axiom"),
        });
        // Field typing: reference fields of allocated objects point to allocated objects
        // of the right class (or null).
        for c in &self.program.classes {
            for f in &c.fields {
                if f.is_static {
                    continue;
                }
                if let JavaType::Ref(target) = &f.ty {
                    let axiom = format!(
                        "ALL x. x : {cls} & x : alloc --> x..{fld} = null | (x..{fld} : {target} & x..{fld} : alloc)",
                        cls = c.name,
                        fld = f.name,
                        target = target
                    );
                    out.push(Command::Assume {
                        label: Some(format!("axiom_fieldType_{}", f.name)),
                        form: jahob_logic::parse_form(&axiom).expect("axiom"),
                    });
                }
            }
        }
        // Receiver and parameters.
        if !self.method.is_static {
            out.push(Command::Assume {
                label: Some("axiom_this".into()),
                form: jahob_logic::parse_form(&format!(
                    "this ~= null & this : {} & this : alloc",
                    self.class.name
                ))
                .expect("axiom"),
            });
        }
        for (p, ty) in &self.method.params {
            if let JavaType::Ref(cls) = ty {
                if self.program.class(cls).is_some() || cls == "Object" {
                    let dom = if cls == "Object" {
                        "alloc".to_string()
                    } else {
                        format!("{cls} Int alloc")
                    };
                    out.push(Command::Assume {
                        label: Some(format!("axiom_param_{p}")),
                        form: jahob_logic::parse_form(&format!("{p} = null | {p} : {dom}"))
                            .expect("axiom"),
                    });
                }
            }
        }
    }

    fn statements(&mut self, stmts: &[Stmt]) -> Vec<Command> {
        let mut out = Vec::new();
        for (i, s) in stmts.iter().enumerate() {
            match s {
                Stmt::Return(value) => {
                    if let Some(e) = value {
                        let (mut pre, form) = self.expr(e);
                        out.append(&mut pre);
                        out.push(Command::Assign {
                            var: "result".into(),
                            value: form,
                        });
                    }
                    out.extend(self.exit_checks.clone());
                    // Cut this path; statements after a return are unreachable.
                    out.push(Command::Assume {
                        label: None,
                        form: Form::ff(),
                    });
                    if i + 1 < stmts.len() {
                        // Unreachable trailing statements are still translated so their
                        // proof text is checked, but behind `assume False` they cannot
                        // contribute obligations.
                        continue;
                    }
                }
                other => out.extend(self.statement(other)),
            }
        }
        out
    }

    fn statement(&mut self, stmt: &Stmt) -> Vec<Command> {
        match stmt {
            Stmt::Local { name, ty, init } => {
                self.env.var_types.insert(name.clone(), ty.logical());
                self.type_env.insert(name.clone(), ty.logical());
                match init {
                    Some(e) => {
                        let (mut pre, form) = self.expr(e);
                        pre.push(Command::Assign {
                            var: name.clone(),
                            value: form,
                        });
                        pre
                    }
                    None => vec![Command::Havoc {
                        vars: vec![name.clone()],
                        such_that: None,
                    }],
                }
            }
            Stmt::Assign(lhs, rhs) => {
                let (mut pre, value) = self.expr(rhs);
                pre.extend(self.assign(lhs, value));
                pre
            }
            Stmt::New { target, class } => {
                let tmp = self.fresh_var("fresh", Type::Obj);
                let mut out = vec![
                    Command::Havoc {
                        vars: vec![tmp.clone()],
                        such_that: None,
                    },
                    // Allocation always succeeds (§1.7): the fresh object is new,
                    // non-null, of the right class, and its fields start out null/zero.
                    Command::Assume {
                        label: Some("alloc_fresh".into()),
                        form: jahob_logic::parse_form(&format!(
                            "{tmp} ~= null & {tmp} ~: old$alloc & {tmp} : {class}"
                        ))
                        .expect("allocation assumption"),
                    },
                ];
                if let Some(cd) = self.program.class(class) {
                    for f in &cd.fields {
                        if f.is_static {
                            continue;
                        }
                        let default = match f.ty {
                            JavaType::Int => "0",
                            JavaType::Bool => "False",
                            _ => "null",
                        };
                        out.push(Command::Assume {
                            label: None,
                            form: jahob_logic::parse_form(&format!(
                                "{tmp}..{} = {default}",
                                f.name
                            ))
                            .expect("field default"),
                        });
                    }
                    for sv in &cd.spec_vars {
                        if !sv.is_static {
                            if let SpecVarKind::Ghost = sv.kind {
                                // Per-object ghost variables start out empty/default; the
                                // suite's specifications initialise them explicitly when
                                // needed, so only record set-typed defaults.
                                if matches!(&sv.ty, Type::Fun(_, b) if b.is_set()) {
                                    out.push(Command::Assume {
                                        label: None,
                                        form: jahob_logic::parse_form(&format!(
                                            "{tmp}..{} = {{}}",
                                            sv.name
                                        ))
                                        .expect("ghost default"),
                                    });
                                }
                            }
                        }
                    }
                }
                out.push(Command::Assign {
                    var: "alloc".into(),
                    value: Form::union(Form::var("alloc"), Form::singleton(Form::var(tmp.clone()))),
                });
                out.extend(self.assign(target, Form::var(tmp)));
                out
            }
            Stmt::NewArray { target, length } => {
                let (mut out, len) = self.expr(length);
                let tmp = self.fresh_var("freshArray", Type::Obj);
                out.push(Command::Havoc {
                    vars: vec![tmp.clone()],
                    such_that: None,
                });
                out.push(Command::Assume {
                    label: Some("alloc_fresh_array".into()),
                    form: Form::and(vec![
                        Form::neq(Form::var(tmp.clone()), Form::null()),
                        Form::not_elem(Form::var(tmp.clone()), Form::var("old$alloc")),
                        Form::eq(
                            Form::app(Form::var("Array.length"), vec![Form::var(tmp.clone())]),
                            len,
                        ),
                        Form::forall(
                            "i",
                            Type::Int,
                            Form::eq(
                                Form::array_read(
                                    Form::var("arrayState"),
                                    Form::var(tmp.clone()),
                                    Form::var("i"),
                                ),
                                Form::null(),
                            ),
                        ),
                    ]),
                });
                out.push(Command::Assign {
                    var: "alloc".into(),
                    value: Form::union(Form::var("alloc"), Form::singleton(Form::var(tmp.clone()))),
                });
                out.extend(self.assign(target, Form::var(tmp)));
                out
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let (mut pre, c) = self.expr(cond);
                let t = self.statements(then_branch);
                let e = self.statements(else_branch);
                pre.push(Command::If {
                    cond: c,
                    then_branch: t,
                    else_branch: e,
                });
                pre
            }
            Stmt::While {
                invariant,
                cond,
                body,
            } => {
                let (pre, c) = self.expr(cond);
                let b = self.statements(body);
                vec![Command::Loop {
                    invariant: self.resolve_spec_old(invariant),
                    pre_test: pre,
                    cond: c,
                    post_test: b,
                }]
            }
            Stmt::Return(_) => unreachable!("handled in statements()"),
            Stmt::GhostAssign {
                target,
                receiver,
                value,
            } => {
                let value = self.resolve_spec_old(value);
                match receiver {
                    None => vec![Command::Assign {
                        var: target.clone(),
                        value,
                    }],
                    Some(recv) => {
                        let (mut pre, r) = self.expr(recv);
                        pre.push(Command::Assign {
                            var: target.clone(),
                            value: Form::field_write(Form::var(target.clone()), r, value),
                        });
                        pre
                    }
                }
            }
            Stmt::SpecAssert { label, form, hints } => vec![Command::Assert {
                label: label.clone(),
                form: self.resolve_spec_old(form),
                hints: self.resolve_spec_hints(hints),
            }],
            Stmt::SpecAssume { label, form } => vec![Command::Assume {
                label: label.clone(),
                form: self.resolve_spec_old(form),
            }],
            Stmt::SpecNote { label, form, hints } => vec![Command::Note {
                label: label.clone(),
                form: self.resolve_spec_old(form),
                hints: self.resolve_spec_hints(hints),
            }],
            Stmt::SpecHavoc { vars, such_that } => vec![Command::Havoc {
                vars: vars.clone(),
                such_that: such_that.as_ref().map(|f| self.resolve_spec_old(f)),
            }],
        }
    }

    fn assign(&mut self, lhs: &Lvalue, value: Form) -> Vec<Command> {
        match lhs {
            Lvalue::Local(x) | Lvalue::Static(x) => vec![Command::Assign {
                var: x.clone(),
                value,
            }],
            Lvalue::Field(obj, field) => {
                let (mut pre, o) = self.expr(obj);
                pre.push(Command::Assert {
                    label: Some("null_check".into()),
                    form: Form::neq(o.clone(), Form::null()),
                    hints: Vec::new(),
                });
                pre.push(Command::Assign {
                    var: field.clone(),
                    value: Form::field_write(Form::var(field.clone()), o, value),
                });
                pre
            }
            Lvalue::ArrayElem(array, index) => {
                let (mut pre, a) = self.expr(array);
                let (pre2, i) = self.expr(index);
                pre.extend(pre2);
                pre.push(Command::Assert {
                    label: Some("null_check".into()),
                    form: Form::neq(a.clone(), Form::null()),
                    hints: Vec::new(),
                });
                pre.push(Command::Assert {
                    label: Some("bounds_check".into()),
                    form: Form::and(vec![
                        Form::cmp(Const::LtEq, Form::int(0), i.clone()),
                        Form::cmp(
                            Const::Lt,
                            i.clone(),
                            Form::app(Form::var("Array.length"), vec![a.clone()]),
                        ),
                    ]),
                    hints: Vec::new(),
                });
                pre.push(Command::Assign {
                    var: "arrayState".into(),
                    value: Form::array_write(Form::var("arrayState"), a, i, value),
                });
                pre
            }
        }
    }

    /// Translates an expression, returning the assertions its evaluation requires
    /// (null-dereference and array-bounds checks) and its value as a formula.
    fn expr(&mut self, e: &Expr) -> (Vec<Command>, Form) {
        match e {
            Expr::Local(x) => (Vec::new(), Form::var(x.clone())),
            Expr::Static(x) => (Vec::new(), Form::var(x.clone())),
            Expr::Null => (Vec::new(), Form::null()),
            Expr::IntLit(n) => (Vec::new(), Form::int(*n)),
            Expr::BoolLit(b) => (Vec::new(), Form::Const(Const::BoolLit(*b))),
            Expr::Field(obj, field) => {
                let (mut pre, o) = self.expr(obj);
                pre.push(Command::Assert {
                    label: Some("null_check".into()),
                    form: Form::neq(o.clone(), Form::null()),
                    hints: Vec::new(),
                });
                (pre, Form::field_read(Form::var(field.clone()), o))
            }
            Expr::ArrayElem(array, index) => {
                let (mut pre, a) = self.expr(array);
                let (pre2, i) = self.expr(index);
                pre.extend(pre2);
                pre.push(Command::Assert {
                    label: Some("null_check".into()),
                    form: Form::neq(a.clone(), Form::null()),
                    hints: Vec::new(),
                });
                pre.push(Command::Assert {
                    label: Some("bounds_check".into()),
                    form: Form::and(vec![
                        Form::cmp(Const::LtEq, Form::int(0), i.clone()),
                        Form::cmp(
                            Const::Lt,
                            i.clone(),
                            Form::app(Form::var("Array.length"), vec![a.clone()]),
                        ),
                    ]),
                    hints: Vec::new(),
                });
                (pre, Form::array_read(Form::var("arrayState"), a, i))
            }
            Expr::ArrayLength(array) => {
                let (mut pre, a) = self.expr(array);
                pre.push(Command::Assert {
                    label: Some("null_check".into()),
                    form: Form::neq(a.clone(), Form::null()),
                    hints: Vec::new(),
                });
                (pre, Form::app(Form::var("Array.length"), vec![a]))
            }
            Expr::Eq(l, r) => self.binary(l, r, Form::eq),
            Expr::Neq(l, r) => self.binary(l, r, Form::neq),
            Expr::Lt(l, r) => self.binary(l, r, |a, b| Form::cmp(Const::Lt, a, b)),
            Expr::Le(l, r) => self.binary(l, r, |a, b| Form::cmp(Const::LtEq, a, b)),
            Expr::Plus(l, r) => self.binary(l, r, Form::plus),
            Expr::Minus(l, r) => self.binary(l, r, Form::minus),
            Expr::Times(l, r) => self.binary(l, r, |a, b| {
                Form::app(Form::Const(Const::Times), vec![a, b])
            }),
            Expr::Div(l, r) => {
                self.binary(l, r, |a, b| Form::app(Form::Const(Const::Div), vec![a, b]))
            }
            Expr::Mod(l, r) => {
                self.binary(l, r, |a, b| Form::app(Form::Const(Const::Mod), vec![a, b]))
            }
            Expr::Not(a) => {
                let (pre, f) = self.expr(a);
                (pre, Form::not(f))
            }
            Expr::And(l, r) => self.binary(l, r, |a, b| Form::and(vec![a, b])),
            Expr::Or(l, r) => self.binary(l, r, |a, b| Form::or(vec![a, b])),
        }
    }

    fn binary(
        &mut self,
        l: &Expr,
        r: &Expr,
        combine: impl Fn(Form, Form) -> Form,
    ) -> (Vec<Command>, Form) {
        let (mut pre, lf) = self.expr(l);
        let (pre2, rf) = self.expr(r);
        pre.extend(pre2);
        (pre, combine(lf, rf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ClassDef, MethodBuilder};

    /// The Figure 6 sized list, reduced to its `addNew` method.
    fn sized_list_program() -> Program {
        let list = ClassDef::new("List")
            .field("next", JavaType::Ref("List".into()))
            .field("data", JavaType::Ref("Object".into()))
            .static_field("root", JavaType::Ref("List".into()))
            .static_field("size", JavaType::Int)
            .ghost_var("nodes", "obj set", false)
            .ghost_var("content", "obj set", true)
            .invariant("contentDef", "content = {x. EX n. x = n..data & n : nodes}")
            .invariant("sizeInv", "size = card content")
            .method(
                MethodBuilder::public("addNew")
                    .static_method()
                    .param("x", JavaType::Ref("Object".into()))
                    .requires("comment ''xFresh'' (x ~: content)")
                    .modifies(&["content"])
                    .ensures("content = old content Un {x}")
                    .body(vec![
                        Stmt::Local {
                            name: "n1".into(),
                            ty: JavaType::Ref("List".into()),
                            init: None,
                        },
                        Stmt::New {
                            target: Lvalue::Local("n1".into()),
                            class: "List".into(),
                        },
                        Stmt::Assign(
                            Lvalue::Field(Expr::local("n1"), "next".into()),
                            Expr::Static("root".into()),
                        ),
                        Stmt::Assign(
                            Lvalue::Field(Expr::local("n1"), "data".into()),
                            Expr::local("x"),
                        ),
                        Stmt::Assign(Lvalue::Static("root".into()), Expr::local("n1")),
                        Stmt::Assign(
                            Lvalue::Static("size".into()),
                            Expr::Plus(
                                Box::new(Expr::Static("size".into())),
                                Box::new(Expr::IntLit(1)),
                            ),
                        ),
                        Stmt::GhostAssign {
                            target: "nodes".into(),
                            receiver: None,
                            value: jahob_logic::parse_form("{n1} Un nodes").expect("ghost"),
                        },
                        Stmt::GhostAssign {
                            target: "content".into(),
                            receiver: None,
                            value: jahob_logic::parse_form("{x} Un content").expect("ghost"),
                        },
                    ])
                    .build(),
            );
        Program::new(vec![list])
    }

    #[test]
    fn task_collects_types_and_definitions() {
        let program = sized_list_program();
        let class = program.class("List").expect("class");
        let task = method_task(&program, class, &class.methods[0]);
        assert_eq!(task.qualified_name(), "List.addNew");
        assert_eq!(task.type_env.get("next"), Some(&Type::obj_field()));
        assert_eq!(task.type_env.get("size"), Some(&Type::Int));
        assert!(task.set_vars().contains("content"));
        assert!(task.fun_vars().contains("next"));
    }

    #[test]
    fn obligations_cover_nullchecks_postcondition_and_invariants() {
        let program = sized_list_program();
        let class = program.class("List").expect("class");
        let task = method_task(&program, class, &class.methods[0]);
        let obligations = task.obligations();
        // Two field-update null checks, the postcondition, and the two class invariants.
        assert!(
            obligations.len() >= 5,
            "expected several obligations, got {}",
            obligations.len()
        );
        let labels: Vec<String> = obligations
            .iter()
            .flat_map(|o| o.sequent.labels.clone())
            .collect();
        assert!(labels.iter().any(|l| l == "null_check"));
        assert!(labels.iter().any(|l| l == "post"));
        assert!(labels.iter().any(|l| l.starts_with("theinv_")));
    }

    #[test]
    fn field_updates_use_field_write() {
        let program = sized_list_program();
        let class = program.class("List").expect("class");
        let task = method_task(&program, class, &class.methods[0]);
        let text = format!("{:?}", task.commands);
        assert!(text.contains("FieldWrite"));
    }

    #[test]
    fn returns_check_the_postcondition_and_cut_the_path() {
        let class = ClassDef::new("C").method(
            MethodBuilder::public("id")
                .static_method()
                .param("x", JavaType::Int)
                .returns(JavaType::Int)
                .ensures("result = x")
                .body(vec![Stmt::Return(Some(Expr::local("x")))])
                .build(),
        );
        let program = Program::new(vec![class]);
        let c = program.class("C").expect("class");
        let task = method_task(&program, c, &c.methods[0]);
        let obligations = task.obligations();
        // There must be a `post` obligation with goal `result = x` reachable from the
        // return path, and the fall-through `post` is unreachable (assume False).
        assert!(obligations
            .iter()
            .any(|o| o.sequent.labels.contains(&"post".to_string())));
    }

    #[test]
    fn loops_produce_invariant_obligations() {
        let class = ClassDef::new("Counter")
            .static_field("n", JavaType::Int)
            .method(
                MethodBuilder::public("countdown")
                    .static_method()
                    .requires("0 <= n")
                    .modifies(&[])
                    .ensures("n = 0")
                    .body(vec![Stmt::While {
                        invariant: jahob_logic::parse_form("0 <= n").expect("inv"),
                        cond: Expr::Lt(
                            Box::new(Expr::IntLit(0)),
                            Box::new(Expr::Static("n".into())),
                        ),
                        body: vec![Stmt::Assign(
                            Lvalue::Static("n".into()),
                            Expr::Minus(
                                Box::new(Expr::Static("n".into())),
                                Box::new(Expr::IntLit(1)),
                            ),
                        )],
                    }])
                    .build(),
            );
        let program = Program::new(vec![class]);
        let c = program.class("Counter").expect("class");
        let task = method_task(&program, c, &c.methods[0]);
        let labels: Vec<String> = task
            .obligations()
            .iter()
            .flat_map(|o| o.sequent.labels.clone())
            .collect();
        assert!(labels.iter().any(|l| l == "loop_inv_initial"));
        assert!(labels.iter().any(|l| l == "loop_inv_preserved"));
        assert!(labels.iter().any(|l| l == "post"));
    }
}
