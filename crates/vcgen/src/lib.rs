//! # jahob-vcgen
//!
//! Verification-condition generation for the Jahob reproduction (§4 of *Full Functional
//! Verification of Linked Data Structures*, PLDI 2008):
//!
//! * [`command`] — extended and simple guarded commands (Figures 8–9) and the desugaring
//!   of executable and proof constructs (Figures 11–12), including the dependency
//!   tracking for defined specification variables (§4.4);
//! * [`mod@wlp`] — weakest preconditions (Figure 10), splitting of verification conditions
//!   into independent proof obligations (Figure 13), and the `by`-hint plumbing.
//!
//! The frontend (`jahob-frontend`) produces [`command::Command`] sequences from annotated
//! Java methods; the prover dispatcher (`jahob-provers`) consumes the resulting
//! [`wlp::ProofObligation`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod wlp;

pub use command::{collect_modified, desugar, Command, DesugarEnv, Simple};
pub use wlp::{
    split, verification_conditions, wlp, Hint, ProofObligation, INST_HINT_PREFIX, LEMMA_HINT_PREFIX,
};
