//! Guarded commands: Jahob's intermediate representation (§4, Figures 8 and 9).
//!
//! The frontend translates annotated Java methods into *extended* guarded commands,
//! which contain executable constructs (assignment, conditionals, loops) and proof
//! constructs (`note`, `assuming`, `pickAny`, `havoc ... suchThat`). Desugaring
//! ([`desugar`]) lowers them to *simple* guarded commands — `assume`, `assert`, `havoc`,
//! sequencing and nondeterministic choice — from which weakest preconditions are
//! generated (Figure 10).

use crate::wlp::Hint;
use jahob_logic::form::{Form, Ident};
use jahob_logic::rewrite::unfold_definitions;
use jahob_logic::subst::free_vars;
use jahob_logic::types::Type;
use std::collections::{BTreeMap, BTreeSet};

/// An extended guarded command (Figure 8).
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `assume l: F`.
    Assume {
        /// Optional label.
        label: Option<String>,
        /// The assumed formula.
        form: Form,
    },
    /// `assert l: F by h1, ..., hn`.
    Assert {
        /// Optional label.
        label: Option<String>,
        /// The asserted formula.
        form: Form,
        /// Hints for the proof: assumption labels to use, lemmas to inject, and
        /// quantifier instantiations (empty = use everything).
        hints: Vec<Hint>,
    },
    /// `x := F` (also used for field updates, whose right-hand side is a `fieldWrite`).
    Assign {
        /// The assigned variable (a program variable, field, or specification variable).
        var: Ident,
        /// The new value.
        value: Form,
    },
    /// `havoc x1, ..., xn suchThat F`.
    Havoc {
        /// The variables whose values change.
        vars: Vec<Ident>,
        /// Optional constraint on the new values.
        such_that: Option<Form>,
    },
    /// `note l: F by h`: prove F here, then use it as an assumption.
    Note {
        /// Optional label.
        label: Option<String>,
        /// The noted formula.
        form: Form,
        /// Proof hints (labels, lemmas, instantiations).
        hints: Vec<Hint>,
    },
    /// `assuming l: F in (c ; note G)` (hypothetical reasoning, §3.5).
    Assuming {
        /// The hypothesis.
        hypothesis: Form,
        /// Pure proof commands carried out under the hypothesis.
        body: Vec<Command>,
        /// The conclusion established under the hypothesis.
        conclusion: Form,
    },
    /// `pickAny x in (c ; note G)` (universal introduction, §3.5).
    PickAny {
        /// The fixed-but-arbitrary variables.
        vars: Vec<(Ident, Type)>,
        /// Commands (may contain executable code).
        body: Vec<Command>,
        /// The conclusion, universally quantified over `vars` after the block.
        conclusion: Form,
    },
    /// Nondeterministic choice between branches (each branch is a sequence).
    Choice(Vec<Vec<Command>>),
    /// `if (F) c1 else c2`.
    If {
        /// The branch condition.
        cond: Form,
        /// The then-branch.
        then_branch: Vec<Command>,
        /// The else-branch.
        else_branch: Vec<Command>,
    },
    /// `loop inv(I) { c1 } while (F) { c2 }`: `c1` runs before the test on every
    /// iteration, `c2` after it (a standard `while (F) { body }` has empty `c1`).
    Loop {
        /// The loop invariant.
        invariant: Form,
        /// Commands executed before the loop test.
        pre_test: Vec<Command>,
        /// The loop condition.
        cond: Form,
        /// Commands executed after the loop test (the loop body).
        post_test: Vec<Command>,
    },
}

/// A simple guarded command (Figure 9).
#[derive(Debug, Clone, PartialEq)]
pub enum Simple {
    /// `assume l: F`.
    Assume {
        /// Optional label.
        label: Option<String>,
        /// The assumed formula.
        form: Form,
    },
    /// `assert l: F by h`.
    Assert {
        /// Optional label.
        label: Option<String>,
        /// The asserted formula.
        form: Form,
        /// Proof hints (labels, lemmas, instantiations).
        hints: Vec<Hint>,
    },
    /// `havoc x`.
    Havoc {
        /// The variables receiving arbitrary new values.
        vars: Vec<Ident>,
    },
    /// Nondeterministic choice between sequences.
    Choice(Vec<Vec<Simple>>),
}

/// The environment desugaring needs: definitions of *defined* specification variables
/// (for dependency tracking, §4.4) and the types of havocked variables (used when the
/// weakest precondition quantifies over them).
#[derive(Debug, Clone, Default)]
pub struct DesugarEnv {
    /// Definitions of defined specification variables.
    pub definitions: BTreeMap<Ident, Form>,
    /// Declared types of program and specification variables.
    pub var_types: BTreeMap<Ident, Type>,
}

impl DesugarEnv {
    /// Variables that (transitively) depend on any of `vars` through the definitions
    /// (§4.4: `deps`).
    pub fn dependents(&self, vars: &[Ident]) -> BTreeSet<Ident> {
        let mut out: BTreeSet<Ident> = vars.iter().cloned().collect();
        loop {
            let mut changed = false;
            for (defined, body) in &self.definitions {
                if out.contains(defined) {
                    continue;
                }
                if free_vars(body).iter().any(|v| out.contains(v)) {
                    out.insert(defined.clone());
                    changed = true;
                }
            }
            if !changed {
                return out;
            }
        }
    }

    /// The constraints re-establishing the definitions of the dependent variables
    /// (§4.4: `defs`).
    pub fn definition_constraints(&self, dependents: &BTreeSet<Ident>) -> Vec<Form> {
        self.definitions
            .iter()
            .filter(|(v, _)| dependents.contains(*v))
            .map(|(v, body)| {
                // Definitions may themselves mention defined variables; unfold so the
                // constraint is in terms of base variables.
                Form::eq(
                    Form::var(v.clone()),
                    unfold_definitions(body, &self.definitions),
                )
            })
            .collect()
    }

    /// The declared type of a variable (defaults to `obj`).
    pub fn var_type(&self, v: &str) -> Type {
        self.var_types.get(v).cloned().unwrap_or(Type::Obj)
    }
}

/// Desugars a sequence of extended guarded commands into simple guarded commands
/// (Figures 11 and 12).
pub fn desugar(commands: &[Command], env: &DesugarEnv) -> Vec<Simple> {
    let mut cx = Desugarer { env, fresh: 0 };
    cx.sequence(commands)
}

struct Desugarer<'a> {
    env: &'a DesugarEnv,
    fresh: u32,
}

impl Desugarer<'_> {
    fn fresh_var(&mut self, base: &str) -> Ident {
        self.fresh += 1;
        format!("{base}${}", self.fresh)
    }

    fn sequence(&mut self, commands: &[Command]) -> Vec<Simple> {
        commands.iter().flat_map(|c| self.command(c)).collect()
    }

    /// `havoc ~x` expanded with dependency tracking: havoc the variables and everything
    /// defined in terms of them, then re-assume the definitions (§4.4).
    fn havoc_with_deps(&mut self, vars: &[Ident]) -> Vec<Simple> {
        let deps = self.env.dependents(vars);
        let mut out = vec![Simple::Havoc {
            vars: deps.iter().cloned().collect(),
        }];
        for constraint in self.env.definition_constraints(&deps) {
            out.push(Simple::Assume {
                label: None,
                form: constraint,
            });
        }
        out
    }

    fn command(&mut self, command: &Command) -> Vec<Simple> {
        match command {
            Command::Assume { label, form } => vec![Simple::Assume {
                label: label.clone(),
                form: form.clone(),
            }],
            Command::Assert { label, form, hints } => vec![Simple::Assert {
                label: label.clone(),
                form: form.clone(),
                hints: hints.clone(),
            }],
            Command::Assign { var, value } => {
                // Figure 11: x := F  ~~>  assume v = F ; havoc x ; assume x = v.
                let v = self.fresh_var("asg");
                let mut out = vec![Simple::Assume {
                    label: None,
                    form: Form::eq(Form::var(v.clone()), value.clone()),
                }];
                out.extend(self.havoc_with_deps(std::slice::from_ref(var)));
                out.push(Simple::Assume {
                    label: None,
                    form: Form::eq(Form::var(var.clone()), Form::var(v)),
                });
                out
            }
            Command::Havoc { vars, such_that } => {
                // Figure 12: havoc x suchThat F ~~> assert EX x. F ; havoc x ; assume F.
                let mut out = Vec::new();
                if let Some(f) = such_that {
                    let typed: Vec<(Ident, Type)> = vars
                        .iter()
                        .map(|v| (v.clone(), self.env.var_type(v)))
                        .collect();
                    out.push(Simple::Assert {
                        label: Some("havoc_feasible".to_string()),
                        form: Form::exists_many(typed, f.clone()),
                        hints: Vec::new(),
                    });
                }
                out.extend(self.havoc_with_deps(vars));
                if let Some(f) = such_that {
                    out.push(Simple::Assume {
                        label: None,
                        form: f.clone(),
                    });
                }
                out
            }
            Command::Note { label, form, hints } => vec![
                Simple::Assert {
                    label: label.clone(),
                    form: form.clone(),
                    hints: hints.clone(),
                },
                Simple::Assume {
                    label: label.clone(),
                    form: form.clone(),
                },
            ],
            Command::Assuming {
                hypothesis,
                body,
                conclusion,
            } => {
                // Figure 12.
                let mut branch = vec![Simple::Assume {
                    label: None,
                    form: hypothesis.clone(),
                }];
                branch.extend(self.sequence(body));
                branch.push(Simple::Assert {
                    label: None,
                    form: conclusion.clone(),
                    hints: Vec::new(),
                });
                branch.push(Simple::Assume {
                    label: None,
                    form: Form::ff(),
                });
                vec![
                    Simple::Choice(vec![Vec::new(), branch]),
                    Simple::Assume {
                        label: None,
                        form: Form::implies(hypothesis.clone(), conclusion.clone()),
                    },
                ]
            }
            Command::PickAny {
                vars,
                body,
                conclusion,
            } => {
                let mut branch = vec![Simple::Havoc {
                    vars: vars.iter().map(|(v, _)| v.clone()).collect(),
                }];
                branch.extend(self.sequence(body));
                branch.push(Simple::Assert {
                    label: None,
                    form: conclusion.clone(),
                    hints: Vec::new(),
                });
                branch.push(Simple::Assume {
                    label: None,
                    form: Form::ff(),
                });
                vec![
                    Simple::Choice(vec![Vec::new(), branch]),
                    Simple::Assume {
                        label: None,
                        form: Form::forall_many(vars.clone(), conclusion.clone()),
                    },
                ]
            }
            Command::Choice(branches) => vec![Simple::Choice(
                branches.iter().map(|b| self.sequence(b)).collect(),
            )],
            Command::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut then_cmds = vec![Simple::Assume {
                    label: None,
                    form: cond.clone(),
                }];
                then_cmds.extend(self.sequence(then_branch));
                let mut else_cmds = vec![Simple::Assume {
                    label: None,
                    form: Form::not(cond.clone()),
                }];
                else_cmds.extend(self.sequence(else_branch));
                vec![Simple::Choice(vec![then_cmds, else_cmds])]
            }
            Command::Loop {
                invariant,
                pre_test,
                cond,
                post_test,
            } => {
                // Figure 11. The havocked variables are those modified anywhere in the
                // loop.
                let mut modified: BTreeSet<Ident> = BTreeSet::new();
                collect_modified(pre_test, &mut modified);
                collect_modified(post_test, &mut modified);
                let mut out = vec![Simple::Assert {
                    label: Some("loop_inv_initial".to_string()),
                    form: invariant.clone(),
                    hints: Vec::new(),
                }];
                out.extend(self.havoc_with_deps(&modified.into_iter().collect::<Vec<_>>()));
                out.push(Simple::Assume {
                    label: None,
                    form: invariant.clone(),
                });
                out.extend(self.sequence(pre_test));
                let exit = vec![Simple::Assume {
                    label: None,
                    form: Form::not(cond.clone()),
                }];
                let mut iterate = vec![Simple::Assume {
                    label: None,
                    form: cond.clone(),
                }];
                iterate.extend(self.sequence(post_test));
                iterate.push(Simple::Assert {
                    label: Some("loop_inv_preserved".to_string()),
                    form: invariant.clone(),
                    hints: Vec::new(),
                });
                iterate.push(Simple::Assume {
                    label: None,
                    form: Form::ff(),
                });
                out.push(Simple::Choice(vec![exit, iterate]));
                out
            }
        }
    }
}

/// Collects the variables assigned or havocked anywhere in the commands.
pub fn collect_modified(commands: &[Command], out: &mut BTreeSet<Ident>) {
    for c in commands {
        match c {
            Command::Assign { var, .. } => {
                out.insert(var.clone());
            }
            Command::Havoc { vars, .. } => out.extend(vars.iter().cloned()),
            Command::Choice(branches) => {
                for b in branches {
                    collect_modified(b, out);
                }
            }
            Command::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_modified(then_branch, out);
                collect_modified(else_branch, out);
            }
            Command::Loop {
                pre_test,
                post_test,
                ..
            } => {
                collect_modified(pre_test, out);
                collect_modified(post_test, out);
            }
            Command::PickAny { body, .. } => collect_modified(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::parse_form;

    fn p(s: &str) -> Form {
        parse_form(s).expect("parse")
    }

    #[test]
    fn assignment_desugars_to_havoc_between_assumes() {
        let env = DesugarEnv::default();
        let out = desugar(
            &[Command::Assign {
                var: "x".into(),
                value: p("x + 1"),
            }],
            &env,
        );
        assert_eq!(out.len(), 3);
        assert!(matches!(&out[1], Simple::Havoc { vars } if vars == &vec!["x".to_string()]));
    }

    #[test]
    fn assignment_havocs_dependent_defined_variables() {
        let mut env = DesugarEnv::default();
        env.definitions.insert("content".into(), p("cnt first"));
        let out = desugar(
            &[Command::Assign {
                var: "first".into(),
                value: p("n1"),
            }],
            &env,
        );
        // The havoc must include both `first` and the dependent `content`, and the
        // definition of `content` must be re-assumed.
        let havoc_vars = out
            .iter()
            .find_map(|s| match s {
                Simple::Havoc { vars } => Some(vars.clone()),
                _ => None,
            })
            .expect("havoc present");
        assert!(havoc_vars.contains(&"content".to_string()));
        assert!(havoc_vars.contains(&"first".to_string()));
        assert!(out.iter().any(|s| matches!(
            s,
            Simple::Assume { form, .. } if form == &p("content = cnt first")
        )));
    }

    #[test]
    fn if_desugars_to_choice_with_assumed_conditions() {
        let env = DesugarEnv::default();
        let out = desugar(
            &[Command::If {
                cond: p("x = null"),
                then_branch: vec![Command::Assign {
                    var: "r".into(),
                    value: p("null"),
                }],
                else_branch: vec![],
            }],
            &env,
        );
        let Simple::Choice(branches) = &out[0] else {
            panic!("expected choice");
        };
        assert_eq!(branches.len(), 2);
        assert!(
            matches!(&branches[1][0], Simple::Assume { form, .. } if *form == p("~(x = null)"))
        );
    }

    #[test]
    fn loop_desugars_to_invariant_checks() {
        let env = DesugarEnv::default();
        let out = desugar(
            &[Command::Loop {
                invariant: p("0 <= i"),
                pre_test: vec![],
                cond: p("i < n"),
                post_test: vec![Command::Assign {
                    var: "i".into(),
                    value: p("i + 1"),
                }],
            }],
            &env,
        );
        // Initial assert, havoc of i, assume invariant, choice(exit, iterate).
        assert!(
            matches!(&out[0], Simple::Assert { label: Some(l), .. } if l == "loop_inv_initial")
        );
        assert!(out
            .iter()
            .any(|s| matches!(s, Simple::Havoc { vars } if vars.contains(&"i".to_string()))));
        let Some(Simple::Choice(branches)) = out.last() else {
            panic!("expected trailing choice");
        };
        assert_eq!(branches.len(), 2);
        assert!(branches[1].iter().any(
            |s| matches!(s, Simple::Assert { label: Some(l), .. } if l == "loop_inv_preserved")
        ));
    }

    #[test]
    fn note_asserts_then_assumes() {
        let env = DesugarEnv::default();
        let out = desugar(
            &[Command::Note {
                label: Some("lemma1".into()),
                form: p("a = b"),
                hints: vec![Hint::label("h1")],
            }],
            &env,
        );
        assert!(
            matches!(&out[0], Simple::Assert { hints, .. } if hints == &vec![Hint::label("h1")])
        );
        assert!(matches!(&out[1], Simple::Assume { label: Some(l), .. } if l == "lemma1"));
    }

    #[test]
    fn havoc_such_that_checks_feasibility() {
        let env = DesugarEnv::default();
        let out = desugar(
            &[Command::Havoc {
                vars: vec!["x".into()],
                such_that: Some(p("0 <= x")),
            }],
            &env,
        );
        assert!(
            matches!(&out[0], Simple::Assert { form, .. } if form.to_string() == "EX x. 0 <= x")
        );
        assert!(matches!(out.last(), Some(Simple::Assume { form, .. }) if *form == p("0 <= x")));
    }

    #[test]
    fn pickany_introduces_universal_assumption() {
        let env = DesugarEnv::default();
        let out = desugar(
            &[Command::PickAny {
                vars: vec![("k".into(), Type::Obj)],
                body: vec![],
                conclusion: p("k : s --> k : t"),
            }],
            &env,
        );
        assert!(matches!(out.last(), Some(Simple::Assume { form, .. })
            if form.to_string() == "ALL k. k : s --> k : t"));
    }

    #[test]
    fn collect_modified_sees_nested_assignments() {
        let cmds = vec![Command::If {
            cond: p("c"),
            then_branch: vec![Command::Assign {
                var: "a".into(),
                value: p("1"),
            }],
            else_branch: vec![Command::Loop {
                invariant: p("True"),
                pre_test: vec![],
                cond: p("c"),
                post_test: vec![Command::Havoc {
                    vars: vec!["b".into()],
                    such_that: None,
                }],
            }],
        }];
        let mut out = BTreeSet::new();
        collect_modified(&cmds, &mut out);
        assert!(out.contains("a") && out.contains("b"));
    }
}
