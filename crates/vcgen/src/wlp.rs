//! Weakest preconditions (Figure 10) and splitting into sequents (Figure 13).

use crate::command::{DesugarEnv, Simple};
use jahob_logic::form::{Binder, Const, Form, Ident};
use jahob_logic::simplify::simplify;
use jahob_logic::subst::{fresh_name, substitute_one};
use jahob_logic::types::Type;
use jahob_logic::Sequent;
use std::collections::{BTreeMap, BTreeSet};

/// Prefix used internally to carry `by` hints through the weakest-precondition formula.
const HINT_LABEL_PREFIX: &str = "hint:";

/// Prefix marking a `by` hint that names a lemma from the interactive lemma library
/// rather than an assumption label (the frontend's `by lemma Name` syntax). The named
/// formula is injected as an extra assumption of the hinted sequent.
pub const LEMMA_HINT_PREFIX: &str = "lemma:";

/// Prefix marking a `by` hint that supplies a quantifier instantiation (the frontend's
/// `by inst x := "witness"` syntax). The payload is `var:=witness-text`; the witness
/// text is the printed form of the typechecked witness formula, re-parsed when the
/// splitter decodes the hint back out of the verification condition.
pub const INST_HINT_PREFIX: &str = "inst:";

/// One `by` hint attached to an `assert`/`note` goal (§3.5).
///
/// The paper's proof-hint language has three forms, and this enum replaces the earlier
/// stringly encoding (`Vec<String>` with `lemma:` prefixes) with one variant per form:
///
/// * [`Hint::Label`] — select the assumptions carrying this comment label;
/// * [`Hint::Lemma`] — inject a named lemma from the interactive library as an extra
///   assumption;
/// * [`Hint::Inst`] — specialise universally quantified assumptions (and injected
///   lemmas) that bind `var` by substituting `witness` for it, so a prover that cannot
///   guess the instantiation sees the ground instance it needs. The instantiation pass
///   itself lives in `jahob_provers::inst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hint {
    /// `by l`: keep the assumptions labelled `l`.
    Label(String),
    /// `by lemma Name`: inject the named library lemma as an assumption.
    Lemma(String),
    /// `by inst x := "w"`: instantiate universal assumptions binding `x` at `w`.
    Inst {
        /// The universally quantified variable to instantiate.
        var: String,
        /// The witness term substituted for `var`.
        witness: Form,
    },
}

impl Hint {
    /// Convenience constructor for a label hint.
    pub fn label(l: impl Into<String>) -> Hint {
        Hint::Label(l.into())
    }

    /// Convenience constructor for a lemma hint.
    pub fn lemma(name: impl Into<String>) -> Hint {
        Hint::Lemma(name.into())
    }

    /// Convenience constructor for an instantiation hint.
    pub fn inst(var: impl Into<String>, witness: Form) -> Hint {
        Hint::Inst {
            var: var.into(),
            witness,
        }
    }

    /// Returns `true` for instantiation hints.
    pub fn is_inst(&self) -> bool {
        matches!(self, Hint::Inst { .. })
    }

    /// The comment-payload token carrying this hint through the weakest-precondition
    /// formula (see [`Hint::decode`] for the inverse).
    pub fn encode(&self) -> String {
        match self {
            Hint::Label(l) => l.clone(),
            Hint::Lemma(name) => format!("{LEMMA_HINT_PREFIX}{name}"),
            Hint::Inst { var, witness } => format!("{INST_HINT_PREFIX}{var}:={witness}"),
        }
    }

    /// Decodes one comment-payload token back into a hint. Malformed `inst` payloads
    /// (no `:=`, or a witness that no longer parses) degrade to an inert label hint —
    /// hints are advice, so the dispatcher's full-sequent retry keeps completeness.
    pub fn decode(token: &str) -> Hint {
        if let Some(payload) = token.strip_prefix(INST_HINT_PREFIX) {
            if let Some((var, witness)) = payload.split_once(":=") {
                if let Ok(witness) = jahob_logic::parse_form(witness.trim()) {
                    return Hint::Inst {
                        var: var.trim().to_string(),
                        witness,
                    };
                }
            }
            return Hint::Label(token.to_string());
        }
        if let Some(name) = token.strip_prefix(LEMMA_HINT_PREFIX) {
            return Hint::Lemma(name.to_string());
        }
        Hint::Label(token.to_string())
    }
}

/// A proof obligation: a sequent plus the `by` hints attached to its goal (§3.5). An
/// empty hint list means "use all assumptions".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofObligation {
    /// The sequent to prove.
    pub sequent: Sequent,
    /// Hints attached to the goal: assumption labels the developer asked to use, names
    /// of library lemmas to inject, and quantifier instantiations (see [`Hint`]).
    pub hints: Vec<Hint>,
}

impl ProofObligation {
    /// The sequent restricted to the hinted assumptions (or the full sequent when no
    /// hints were given). Lemma hints are ignored here; use
    /// [`ProofObligation::hinted_sequent_with_lemmas`] to resolve them.
    pub fn hinted_sequent(&self) -> Sequent {
        self.hinted_sequent_with_lemmas(&BTreeMap::new())
    }

    /// The hinted sequent with lemma hints resolved against `lemmas` (name → formula).
    ///
    /// Each hint is interpreted in order: a [`Hint::Lemma`] injects the named formula
    /// as an extra assumption (wrapped in a `comment ''lemma:Name''` marker so its
    /// provenance stays visible); a [`Hint::Label`] selects labelled assumptions as
    /// before, falling back to the lemma library only when it matches **no** assumption
    /// label of the sequent — so registering a lemma can never silently change the
    /// meaning of an existing label hint. When no hint selects a label, the full
    /// assumption set is kept — hints are advice, never a restriction that silently
    /// drops the whole context. Unknown names are ignored (the full-sequent retry in
    /// the dispatcher keeps completeness). [`Hint::Inst`] hints are inert here: the
    /// instantiation pass (`jahob_provers::inst`) runs on the sequent this method
    /// returns, so it also specialises the lemma assumptions injected here.
    pub fn hinted_sequent_with_lemmas(&self, lemmas: &BTreeMap<String, Form>) -> Sequent {
        if self.hints.is_empty() {
            return self.sequent.clone();
        }
        let assumption_labels: BTreeSet<&str> = self
            .sequent
            .assumptions
            .iter()
            .flat_map(|a| a.strip_comments().0)
            .collect();
        let mut label_hints: Vec<String> = Vec::new();
        let mut lemma_hints: Vec<String> = Vec::new();
        for hint in &self.hints {
            match hint {
                Hint::Lemma(name) => lemma_hints.push(name.clone()),
                Hint::Label(l) => {
                    if !assumption_labels.contains(l.as_str()) && lemmas.contains_key(l) {
                        lemma_hints.push(l.clone());
                    } else {
                        label_hints.push(l.clone());
                    }
                }
                Hint::Inst { .. } => {}
            }
        }
        let mut sequent = if label_hints.is_empty() {
            self.sequent.clone()
        } else {
            self.sequent.filter_by_labels(&label_hints)
        };
        for name in &lemma_hints {
            if let Some(formula) = lemmas.get(name) {
                sequent.assumptions.push(Form::comment(
                    format!("{LEMMA_HINT_PREFIX}{name}"),
                    formula.clone(),
                ));
            }
        }
        sequent
    }
}

/// Computes the weakest precondition of a sequence of simple guarded commands with
/// respect to `post` (Figure 10).
pub fn wlp(commands: &[Simple], post: Form, env: &DesugarEnv) -> Form {
    let mut current = post;
    for c in commands.iter().rev() {
        current = wlp_one(c, current, env);
    }
    current
}

fn wlp_one(command: &Simple, post: Form, env: &DesugarEnv) -> Form {
    match command {
        Simple::Assume { label, form } => {
            let f = match label {
                Some(l) => Form::comment(l.clone(), form.clone()),
                None => form.clone(),
            };
            Form::implies(f, post)
        }
        Simple::Assert { label, form, hints } => {
            let mut f = form.clone();
            // Each hint rides in its own comment layer (innermost = last hint), so the
            // splitter recovers them one per comment: a witness containing commas can
            // never be confused with a comma-joined label list.
            for hint in hints.iter().rev() {
                f = Form::comment(format!("{HINT_LABEL_PREFIX}{}", hint.encode()), f);
            }
            if let Some(l) = label {
                f = Form::comment(l.clone(), f);
            }
            Form::and(vec![f, post])
        }
        Simple::Havoc { vars } => {
            let typed: Vec<(Ident, Type)> =
                vars.iter().map(|v| (v.clone(), env.var_type(v))).collect();
            Form::forall_many(typed, post)
        }
        Simple::Choice(branches) => {
            Form::and(branches.iter().map(|b| wlp(b, post.clone(), env)).collect())
        }
    }
}

/// Generates the proof obligations of a command sequence with postcondition `post`:
/// weakest precondition followed by splitting.
pub fn verification_conditions(
    commands: &[Simple],
    post: Form,
    env: &DesugarEnv,
) -> Vec<ProofObligation> {
    let vc = wlp(commands, post, env);
    split(&vc)
}

/// Splits a verification condition into a list of implications whose conjunction is
/// equivalent to it (Figure 13). Labels on goals become sequent labels; labels on
/// assumptions are preserved for `by`-hint selection.
pub fn split(vc: &Form) -> Vec<ProofObligation> {
    let mut out = Vec::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    split_rec(
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
        vc,
        &mut out,
        &mut used,
    );
    out
}

fn split_rec(
    assumptions: &mut Vec<Form>,
    labels: &mut Vec<String>,
    hints: &mut Vec<Hint>,
    goal: &Form,
    out: &mut Vec<ProofObligation>,
    used_names: &mut BTreeSet<String>,
) {
    match goal {
        Form::Const(Const::BoolLit(true)) => {}
        Form::App(head, args) => {
            if let Form::Const(c) = head.as_ref() {
                match c {
                    Const::Comment(l) if args.len() == 1 => {
                        if let Some(h) = l.strip_prefix(HINT_LABEL_PREFIX) {
                            // An `inst` payload is one hint (its witness may contain
                            // commas); anything else may be a comma-joined label list
                            // (the pre-structured-hint encoding, still accepted).
                            let added: Vec<Hint> = if h.starts_with(INST_HINT_PREFIX) {
                                vec![Hint::decode(h)]
                            } else {
                                h.split(',').map(|s| Hint::decode(s.trim())).collect()
                            };
                            let n = added.len();
                            hints.extend(added);
                            split_rec(assumptions, labels, hints, &args[0], out, used_names);
                            hints.truncate(hints.len() - n);
                        } else {
                            labels.push(l.clone());
                            split_rec(assumptions, labels, hints, &args[0], out, used_names);
                            labels.pop();
                        }
                        return;
                    }
                    Const::And => {
                        for a in args {
                            split_rec(assumptions, labels, hints, a, out, used_names);
                        }
                        return;
                    }
                    Const::Impl if args.len() == 2 => {
                        // The assumption itself may be a conjunction; keep its conjuncts
                        // separate so `by` hints and provers can select them.
                        let new_assumptions: Vec<Form> =
                            args[0].conjuncts().into_iter().cloned().collect();
                        let n = new_assumptions.len();
                        assumptions.extend(new_assumptions);
                        split_rec(assumptions, labels, hints, &args[1], out, used_names);
                        assumptions.truncate(assumptions.len() - n);
                        return;
                    }
                    _ => {}
                }
            }
            emit(assumptions, labels, hints, goal, out);
        }
        Form::Binder(Binder::Forall, vars, body) => {
            // Fig. 13: A --> ALL x. G  ~~>  A --> G[x := fresh].
            let mut avoid: BTreeSet<String> = used_names.clone();
            for a in assumptions.iter() {
                avoid.extend(jahob_logic::subst::free_vars(a));
            }
            avoid.extend(jahob_logic::subst::free_vars(body));
            let mut current = body.as_ref().clone();
            for (v, _) in vars {
                let fresh = fresh_name(v, &avoid);
                avoid.insert(fresh.clone());
                used_names.insert(fresh.clone());
                current = substitute_one(&current, v, &Form::var(fresh));
            }
            split_rec(assumptions, labels, hints, &current, out, used_names);
        }
        _ => emit(assumptions, labels, hints, goal, out),
    }
}

fn emit(
    assumptions: &[Form],
    labels: &[String],
    hints: &[Hint],
    goal: &Form,
    out: &mut Vec<ProofObligation>,
) {
    let goal = simplify(goal);
    if goal.is_true() {
        return;
    }
    let mut sequent = Sequent::new(assumptions.to_vec(), goal);
    sequent.labels = labels.to_vec();
    out.push(ProofObligation {
        sequent,
        hints: hints.to_vec(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{desugar, Command, DesugarEnv};
    use jahob_logic::parse_form;

    fn p(s: &str) -> Form {
        parse_form(s).expect("parse")
    }

    #[test]
    fn wlp_of_assume_is_implication() {
        let env = DesugarEnv::default();
        let cmds = vec![Simple::Assume {
            label: None,
            form: p("x = 1"),
        }];
        assert_eq!(wlp(&cmds, p("x = 1"), &env).to_string(), "x = 1 --> x = 1");
    }

    #[test]
    fn wlp_of_assert_conjoins() {
        let env = DesugarEnv::default();
        let cmds = vec![Simple::Assert {
            label: Some("check".into()),
            form: p("x ~= null"),
            hints: vec![],
        }];
        let vc = wlp(&cmds, p("q"), &env);
        assert!(vc.to_string().contains("comment ''check''"));
        assert!(vc.as_app_of(&Const::And).is_some());
    }

    #[test]
    fn wlp_of_havoc_quantifies() {
        let env = DesugarEnv::default();
        let cmds = vec![Simple::Havoc {
            vars: vec!["x".into()],
        }];
        assert_eq!(wlp(&cmds, p("x = x"), &env).to_string(), "ALL x. x = x");
    }

    #[test]
    fn splitting_separates_conjuncts_and_branches() {
        let vc = p("(a --> g1 & g2) & (b --> g3)");
        let obligations = split(&vc);
        assert_eq!(obligations.len(), 3);
        assert_eq!(obligations[0].sequent.assumptions, vec![p("a")]);
        assert_eq!(obligations[2].sequent.goal, p("g3"));
    }

    #[test]
    fn splitting_instantiates_universal_goals() {
        let vc = p("a --> (ALL x. x : s --> x : t)");
        let obligations = split(&vc);
        assert_eq!(obligations.len(), 1);
        // The universal variable became a fresh free variable and the inner implication
        // contributed an assumption.
        assert_eq!(obligations[0].sequent.assumptions.len(), 2);
        assert!(!obligations[0].sequent.goal.contains_binder(Binder::Forall));
    }

    #[test]
    fn splitting_collects_labels_and_hints() {
        let vc = Form::and(vec![Form::comment(
            "postcondition",
            Form::comment("hint:sizeInv,xFresh", p("g")),
        )]);
        let obligations = split(&vc);
        assert_eq!(obligations.len(), 1);
        assert_eq!(
            obligations[0].sequent.labels,
            vec!["postcondition".to_string()]
        );
        assert_eq!(
            obligations[0].hints,
            vec![Hint::label("sizeInv"), Hint::label("xFresh")]
        );
    }

    #[test]
    fn hinted_sequent_filters_assumptions() {
        let vc = p("comment ''a'' (x = 1) --> comment ''b'' (y = 2) --> x = 1");
        let mut obligations = split(&vc);
        assert_eq!(obligations.len(), 1);
        let mut ob = obligations.remove(0);
        ob.hints = vec![Hint::label("a")];
        assert_eq!(ob.hinted_sequent().assumptions.len(), 1);
        ob.hints.clear();
        assert_eq!(ob.hinted_sequent().assumptions.len(), 2);
    }

    #[test]
    fn lemma_hints_inject_library_formulas_as_assumptions() {
        let vc = p("comment ''a'' (x = 1) --> x = 1");
        let mut obligations = split(&vc);
        let mut ob = obligations.remove(0);
        let mut lemmas = BTreeMap::new();
        lemmas.insert("nullFresh".to_string(), p("null ~: alloc"));
        // An explicit lemma hint injects the formula alongside the kept labels.
        ob.hints = vec![Hint::label("a"), Hint::lemma("nullFresh")];
        let hinted = ob.hinted_sequent_with_lemmas(&lemmas);
        assert_eq!(hinted.assumptions.len(), 2);
        assert_eq!(
            hinted.assumptions[1],
            Form::comment("lemma:nullFresh", p("null ~: alloc"))
        );
        // A plain hint that matches no assumption label falls back to the library —
        // and with no label hints left, the full assumption set is kept.
        ob.hints = vec![Hint::label("nullFresh")];
        let hinted = ob.hinted_sequent_with_lemmas(&lemmas);
        assert_eq!(hinted.assumptions.len(), 2);
        // Assumption labels take precedence: registering a lemma under an existing
        // label never changes what a plain label hint selects.
        lemmas.insert("a".to_string(), p("captured = True"));
        ob.hints = vec![Hint::label("a")];
        let hinted = ob.hinted_sequent_with_lemmas(&lemmas);
        assert_eq!(hinted.assumptions.len(), 1);
        assert_eq!(hinted.assumptions[0], Form::comment("a", p("x = 1")));
        // Unknown lemma names are ignored rather than dropping assumptions.
        ob.hints = vec![Hint::lemma("unknown")];
        let hinted = ob.hinted_sequent_with_lemmas(&lemmas);
        assert_eq!(hinted.assumptions.len(), 1);
        // Without a library, `hinted_sequent` treats lemma hints as inert.
        assert_eq!(ob.hinted_sequent().assumptions.len(), 1);
    }

    #[test]
    fn inst_hints_survive_the_wlp_round_trip() {
        // An instantiation hint rides through the weakest-precondition formula as a
        // comment payload and is decoded back structurally — including a witness with
        // commas, which must not be comma-split like a label list.
        let env = DesugarEnv::default();
        let witness = p("content Int {(k0, v0)}");
        let cmds = vec![Command::Assert {
            label: Some("step".into()),
            form: p("card s <= n"),
            hints: vec![Hint::label("bound"), Hint::inst("s", witness.clone())],
        }];
        let simple = desugar(&cmds, &env);
        let obligations = verification_conditions(&simple, Form::tt(), &env);
        assert_eq!(obligations.len(), 1);
        assert_eq!(obligations[0].sequent.labels, vec!["step".to_string()]);
        assert_eq!(
            obligations[0].hints,
            vec![Hint::label("bound"), Hint::inst("s", witness)]
        );
    }

    #[test]
    fn hint_tokens_encode_and_decode() {
        let cases = vec![
            Hint::label("sizeInv"),
            Hint::lemma("cardNonNeg"),
            Hint::inst("s", p("content Un {x}")),
            Hint::inst("s", p("{(a, b)} Int rel")),
        ];
        for hint in cases {
            assert_eq!(Hint::decode(&hint.encode()), hint, "{hint:?}");
        }
        // A malformed inst payload degrades to an inert label, never a panic.
        assert_eq!(
            Hint::decode("inst:x:=((("),
            Hint::Label("inst:x:=(((".to_string())
        );
        assert_eq!(
            Hint::decode("inst:orphan"),
            Hint::Label("inst:orphan".into())
        );
    }

    #[test]
    fn number_of_obligations_is_linear_in_branches() {
        // Two branches each asserting one condition: exactly the asserts plus nothing
        // exponential.
        let env = DesugarEnv::default();
        let cmds = vec![Command::If {
            cond: p("c"),
            then_branch: vec![Command::Assert {
                label: Some("t".into()),
                form: p("p1"),
                hints: vec![],
            }],
            else_branch: vec![Command::Assert {
                label: Some("e".into()),
                form: p("p2"),
                hints: vec![],
            }],
        }];
        let simple = desugar(&cmds, &env);
        let obligations = verification_conditions(&simple, p("post"), &env);
        // One obligation per assert per branch plus one post obligation per branch.
        assert_eq!(obligations.len(), 4);
    }

    #[test]
    fn end_to_end_increment_example() {
        // x := x + 1 with precondition x = 0 establishes x = 1.
        let env = DesugarEnv::default();
        let cmds = vec![
            Command::Assume {
                label: Some("pre".into()),
                form: p("x = 0"),
            },
            Command::Assign {
                var: "x".into(),
                value: p("x + 1"),
            },
        ];
        let simple = desugar(&cmds, &env);
        let obligations = verification_conditions(&simple, p("comment ''post'' (x = 1)"), &env);
        assert_eq!(obligations.len(), 1);
        let ob = &obligations[0];
        assert_eq!(ob.sequent.labels, vec!["post".to_string()]);
        // The obligation should be provable by simple equational reasoning; check its
        // shape: assumptions mention the fresh assignment variable.
        assert!(ob.sequent.assumptions.len() >= 3);
    }
}
