//! Ground SMT solving: DPLL over theory atoms with congruence closure and linear integer
//! arithmetic.
//!
//! After quantifier instantiation (see [`crate::translate`]) a proof obligation becomes a
//! ground formula over theory atoms. The solver abstracts each atom to a boolean, runs a
//! small DPLL search with unit propagation over a clausal abstraction, and checks each
//! candidate assignment against the theories:
//!
//! * equalities/disequalities and uninterpreted predicates via [`crate::euf`],
//! * linear integer arithmetic via `jahob-arith`.
//!
//! Inconsistent assignments yield conflict clauses, so the search terminates with either
//! a theory-consistent assignment (`Sat`: the obligation is not proved) or a refutation
//! (`Unsat`: the obligation is proved).

use crate::euf::CongruenceClosure;
use jahob_arith::{Constraint, LinExpr};
use std::collections::BTreeMap;
use std::fmt;

/// A ground theory term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GTerm {
    /// An integer literal.
    Int(i64),
    /// An application of an uninterpreted symbol (constants have no arguments).
    App(String, Vec<GTerm>),
    /// Integer addition.
    Add(Box<GTerm>, Box<GTerm>),
    /// Integer subtraction.
    Sub(Box<GTerm>, Box<GTerm>),
    /// Multiplication by a constant (non-linear products are not supported).
    Mul(i64, Box<GTerm>),
}

impl GTerm {
    /// A constant symbol.
    pub fn constant(name: impl Into<String>) -> GTerm {
        GTerm::App(name.into(), Vec::new())
    }

    /// Returns `true` if the term contains arithmetic structure.
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            GTerm::Int(_) | GTerm::Add(..) | GTerm::Sub(..) | GTerm::Mul(..)
        )
    }
}

impl fmt::Display for GTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GTerm::Int(n) => write!(f, "{n}"),
            GTerm::App(s, args) => {
                write!(f, "{s}")?;
                if !args.is_empty() {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            GTerm::Add(a, b) => write!(f, "({a} + {b})"),
            GTerm::Sub(a, b) => write!(f, "({a} - {b})"),
            GTerm::Mul(k, a) => write!(f, "({k} * {a})"),
        }
    }
}

/// A ground theory atom.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GAtom {
    /// Equality between terms.
    Eq(GTerm, GTerm),
    /// `lhs <= rhs` over the integers.
    Le(GTerm, GTerm),
    /// `lhs < rhs` over the integers.
    Lt(GTerm, GTerm),
    /// An uninterpreted predicate applied to terms (includes propositional atoms, which
    /// have no arguments).
    Pred(String, Vec<GTerm>),
}

impl fmt::Display for GAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GAtom::Eq(a, b) => write!(f, "{a} = {b}"),
            GAtom::Le(a, b) => write!(f, "{a} <= {b}"),
            GAtom::Lt(a, b) => write!(f, "{a} < {b}"),
            GAtom::Pred(p, args) => write!(f, "{}", GTerm::App(p.clone(), args.clone())),
        }
    }
}

/// A ground literal: an atom with a sign.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GLiteral {
    /// `true` for the positive occurrence of the atom.
    pub positive: bool,
    /// The atom.
    pub atom: GAtom,
}

impl GLiteral {
    /// Positive literal.
    pub fn pos(atom: GAtom) -> Self {
        GLiteral {
            positive: true,
            atom,
        }
    }

    /// Negative literal.
    pub fn neg(atom: GAtom) -> Self {
        GLiteral {
            positive: false,
            atom,
        }
    }
}

/// A ground clause (disjunction of literals).
pub type GClause = Vec<GLiteral>;

/// Result of a ground satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundOutcome {
    /// The clause set is unsatisfiable modulo the theories.
    Unsat,
    /// A theory-consistent assignment was found (or the solver cannot refute the set).
    Sat,
    /// Resource limits exceeded.
    Unknown,
    /// The wall-clock deadline ([`GroundLimits::deadline`]) passed before the search
    /// reached an answer. Like `Unknown`, the verdict is open — but the stop is
    /// attributed to time, not to the step budget.
    Deadline,
}

/// Limits for the ground search.
#[derive(Debug, Clone, Copy)]
pub struct GroundLimits {
    /// Maximum number of DPLL decisions + conflicts.
    pub max_steps: usize,
    /// Absolute wall-clock deadline, checked at the same cooperative point as the
    /// step budget (once per DPLL step). Passing it stops the search with
    /// [`GroundOutcome::Deadline`]. `None` (the default) disables the check.
    pub deadline: Option<std::time::Instant>,
}

impl Default for GroundLimits {
    fn default() -> Self {
        GroundLimits {
            max_steps: 6_000,
            deadline: None,
        }
    }
}

/// Decides satisfiability of a conjunction of ground clauses modulo EUF + LIA.
pub fn check_clauses(clauses: &[GClause], limits: GroundLimits) -> GroundOutcome {
    // Collect the distinct atoms.
    let mut atoms: Vec<GAtom> = Vec::new();
    let mut atom_index: BTreeMap<GAtom, usize> = BTreeMap::new();
    for c in clauses {
        for l in c {
            if !atom_index.contains_key(&l.atom) {
                atom_index.insert(l.atom.clone(), atoms.len());
                atoms.push(l.atom.clone());
            }
        }
    }
    // Clauses as (atom index, sign) pairs.
    let mut index_clauses: Vec<Vec<(usize, bool)>> = clauses
        .iter()
        .map(|c| {
            c.iter()
                .map(|l| (atom_index[&l.atom], l.positive))
                .collect()
        })
        .collect();

    let mut steps = 0usize;
    let mut assignment: Vec<Option<bool>> = vec![None; atoms.len()];
    let mut deadline_hit = false;
    match dpll(
        &atoms,
        &mut index_clauses,
        &mut assignment,
        &mut steps,
        limits,
        &mut deadline_hit,
    ) {
        Some(true) => GroundOutcome::Sat,
        Some(false) => GroundOutcome::Unsat,
        None if deadline_hit => GroundOutcome::Deadline,
        None => GroundOutcome::Unknown,
    }
}

/// DPLL with chronological backtracking and theory checks on complete assignments and on
/// every extension (early conflict detection through the theory solver would be possible
/// but is not needed at the problem sizes the dispatcher sends here).
fn dpll(
    atoms: &[GAtom],
    clauses: &mut Vec<Vec<(usize, bool)>>,
    assignment: &mut Vec<Option<bool>>,
    steps: &mut usize,
    limits: GroundLimits,
    deadline_hit: &mut bool,
) -> Option<bool> {
    *steps += 1;
    if *steps > limits.max_steps {
        return None;
    }
    if let Some(deadline) = limits.deadline {
        if std::time::Instant::now() >= deadline {
            *deadline_hit = true;
            return None;
        }
    }
    // Unit propagation.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut changed = false;
        for clause in clauses.iter() {
            let mut unassigned = None;
            let mut satisfied = false;
            let mut num_unassigned = 0;
            for &(a, sign) in clause {
                match assignment[a] {
                    Some(v) if v == sign => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        num_unassigned += 1;
                        unassigned = Some((a, sign));
                    }
                }
            }
            if satisfied {
                continue;
            }
            if num_unassigned == 0 {
                // Conflict.
                for a in trail {
                    assignment[a] = None;
                }
                return Some(false);
            }
            if num_unassigned == 1 {
                let (a, sign) = unassigned.expect("one unassigned literal");
                assignment[a] = Some(sign);
                trail.push(a);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Theory check on the current (partial) assignment.
    if !theory_consistent(atoms, assignment) {
        for a in trail {
            assignment[a] = None;
        }
        return Some(false);
    }

    // Pick an unassigned atom.
    let next = assignment.iter().position(Option::is_none);
    let result = match next {
        None => Some(true),
        Some(a) => {
            let mut res = None;
            for value in [true, false] {
                assignment[a] = Some(value);
                match dpll(atoms, clauses, assignment, steps, limits, deadline_hit) {
                    Some(true) => {
                        res = Some(true);
                        break;
                    }
                    Some(false) => {
                        assignment[a] = None;
                        res = Some(false);
                        continue;
                    }
                    None => {
                        res = None;
                        break;
                    }
                }
            }
            if res == Some(true) {
                res
            } else {
                assignment[a] = None;
                res
            }
        }
    };
    if result != Some(true) {
        for a in trail {
            assignment[a] = None;
        }
    }
    result
}

/// Checks whether the currently assigned atoms are consistent with EUF + LIA.
fn theory_consistent(atoms: &[GAtom], assignment: &[Option<bool>]) -> bool {
    // --- EUF ---
    let mut cc = CongruenceClosure::new();
    let intern = |cc: &mut CongruenceClosure, t: &GTerm| -> usize { intern_term(cc, t) };
    let true_id = cc.intern_const("$true");
    let false_id = cc.intern_const("$false");
    if !cc.assert_neq(true_id, false_id) {
        return false;
    }
    for (i, atom) in atoms.iter().enumerate() {
        let Some(value) = assignment[i] else { continue };
        match atom {
            GAtom::Eq(a, b) => {
                let ia = intern(&mut cc, a);
                let ib = intern(&mut cc, b);
                let ok = if value {
                    cc.assert_eq(ia, ib)
                } else {
                    cc.assert_neq(ia, ib)
                };
                if !ok {
                    return false;
                }
            }
            GAtom::Pred(p, args) => {
                let ids: Vec<usize> = args.iter().map(|a| intern(&mut cc, a)).collect();
                let app = cc.intern(format!("$pred${p}"), ids);
                let target = if value { true_id } else { false_id };
                if !cc.assert_eq(app, target) {
                    return false;
                }
            }
            GAtom::Le(_, _) | GAtom::Lt(_, _) => {}
        }
    }

    // --- LIA ---
    // Arithmetic atoms plus equalities over arithmetic terms become linear constraints.
    let mut vars: BTreeMap<GTerm, u32> = BTreeMap::new();
    let mut constraints: Vec<Constraint> = Vec::new();
    for (i, atom) in atoms.iter().enumerate() {
        let Some(value) = assignment[i] else { continue };
        match atom {
            GAtom::Le(a, b) => {
                let (ea, eb) = (to_linexpr(a, &mut vars), to_linexpr(b, &mut vars));
                constraints.push(if value {
                    Constraint::le(ea, eb)
                } else {
                    Constraint::gt(ea, eb)
                });
            }
            GAtom::Lt(a, b) => {
                let (ea, eb) = (to_linexpr(a, &mut vars), to_linexpr(b, &mut vars));
                constraints.push(if value {
                    Constraint::lt(ea, eb)
                } else {
                    Constraint::ge(ea, eb)
                });
            }
            GAtom::Eq(a, b) if value => {
                // Positive equalities are shared with the arithmetic solver regardless of
                // the shape of the terms (the Nelson-Oppen equality propagation direction
                // EUF → LIA): uninterpreted terms simply become arithmetic variables, so
                // an equality like `p = q` still links the constraints that mention `p`
                // and `q`.
                let (ea, eb) = (to_linexpr(a, &mut vars), to_linexpr(b, &mut vars));
                constraints.push(Constraint::eq(ea, eb));
            }
            GAtom::Eq(a, b) if !value && (a.is_arithmetic() || b.is_arithmetic()) => {
                // A disequality over integers is not convex; ignoring it is sound for
                // consistency checking (it only makes the constraints easier to satisfy,
                // so we may answer Sat more often, never Unsat wrongly).
                let _ = (a, b);
            }
            _ => {}
        }
    }
    if constraints.is_empty() {
        return true;
    }
    jahob_arith::check(&constraints) != jahob_arith::Outcome::Unsat
}

fn intern_term(cc: &mut CongruenceClosure, t: &GTerm) -> usize {
    match t {
        GTerm::Int(n) => cc.intern_const(format!("$int${n}")),
        GTerm::App(s, args) => {
            let ids: Vec<usize> = args.iter().map(|a| intern_term(cc, a)).collect();
            cc.intern(s.clone(), ids)
        }
        GTerm::Add(a, b) => {
            let ia = intern_term(cc, a);
            let ib = intern_term(cc, b);
            cc.intern("$add", vec![ia, ib])
        }
        GTerm::Sub(a, b) => {
            let ia = intern_term(cc, a);
            let ib = intern_term(cc, b);
            cc.intern("$sub", vec![ia, ib])
        }
        GTerm::Mul(k, a) => {
            let ik = cc.intern_const(format!("$int${k}"));
            let ia = intern_term(cc, a);
            cc.intern("$mul", vec![ik, ia])
        }
    }
}

fn to_linexpr(t: &GTerm, vars: &mut BTreeMap<GTerm, u32>) -> LinExpr {
    match t {
        GTerm::Int(n) => LinExpr::constant(*n as i128),
        GTerm::Add(a, b) => to_linexpr(a, vars).add(&to_linexpr(b, vars)),
        GTerm::Sub(a, b) => to_linexpr(a, vars).sub(&to_linexpr(b, vars)),
        GTerm::Mul(k, a) => to_linexpr(a, vars).scale(*k as i128),
        other => {
            let next = vars.len() as u32;
            let id = *vars.entry(other.clone()).or_insert(next);
            LinExpr::var(id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str) -> GTerm {
        GTerm::constant(name)
    }

    #[test]
    fn propositional_conflict_is_unsat() {
        let p = GAtom::Pred("p".into(), vec![]);
        let clauses = vec![
            vec![GLiteral::pos(p.clone())],
            vec![GLiteral::neg(p.clone())],
        ];
        assert_eq!(
            check_clauses(&clauses, GroundLimits::default()),
            GroundOutcome::Unsat
        );
    }

    #[test]
    fn propositional_model_is_sat() {
        let p = GAtom::Pred("p".into(), vec![]);
        let q = GAtom::Pred("q".into(), vec![]);
        let clauses = vec![vec![GLiteral::pos(p.clone()), GLiteral::pos(q.clone())]];
        assert_eq!(
            check_clauses(&clauses, GroundLimits::default()),
            GroundOutcome::Sat
        );
    }

    #[test]
    fn euf_congruence_conflict() {
        // a = b, f(a) != f(b) is unsat.
        let fa = GTerm::App("f".into(), vec![c("a")]);
        let fb = GTerm::App("f".into(), vec![c("b")]);
        let clauses = vec![
            vec![GLiteral::pos(GAtom::Eq(c("a"), c("b")))],
            vec![GLiteral::neg(GAtom::Eq(fa, fb))],
        ];
        assert_eq!(
            check_clauses(&clauses, GroundLimits::default()),
            GroundOutcome::Unsat
        );
    }

    #[test]
    fn euf_transitivity_through_clauses() {
        // a = b, (b = c | b = d), a != c, a != d  is unsat.
        let clauses = vec![
            vec![GLiteral::pos(GAtom::Eq(c("a"), c("b")))],
            vec![
                GLiteral::pos(GAtom::Eq(c("b"), c("c"))),
                GLiteral::pos(GAtom::Eq(c("b"), c("d"))),
            ],
            vec![GLiteral::neg(GAtom::Eq(c("a"), c("c")))],
            vec![GLiteral::neg(GAtom::Eq(c("a"), c("d")))],
        ];
        assert_eq!(
            check_clauses(&clauses, GroundLimits::default()),
            GroundOutcome::Unsat
        );
    }

    #[test]
    fn lia_conflicts_are_detected() {
        // x <= 3, x >= 5 is unsat; predicates over integers interact with equalities.
        let x = c("x");
        let clauses = vec![
            vec![GLiteral::pos(GAtom::Le(x.clone(), GTerm::Int(3)))],
            vec![GLiteral::pos(GAtom::Le(GTerm::Int(5), x.clone()))],
        ];
        assert_eq!(
            check_clauses(&clauses, GroundLimits::default()),
            GroundOutcome::Unsat
        );
    }

    #[test]
    fn lia_with_arithmetic_terms() {
        // size1 = size0 + 1, size0 >= 0, size1 <= 0 is unsat.
        let size0 = c("size0");
        let size1 = c("size1");
        let clauses = vec![
            vec![GLiteral::pos(GAtom::Eq(
                size1.clone(),
                GTerm::Add(Box::new(size0.clone()), Box::new(GTerm::Int(1))),
            ))],
            vec![GLiteral::pos(GAtom::Le(GTerm::Int(0), size0.clone()))],
            vec![GLiteral::pos(GAtom::Le(size1.clone(), GTerm::Int(0)))],
        ];
        assert_eq!(
            check_clauses(&clauses, GroundLimits::default()),
            GroundOutcome::Unsat
        );
    }

    #[test]
    fn mixed_euf_and_boolean_structure() {
        // (a = b | a = c), f(b) = d, f(c) = d, f(a) != d  is unsat.
        let fa = GTerm::App("f".into(), vec![c("a")]);
        let fb = GTerm::App("f".into(), vec![c("b")]);
        let fc = GTerm::App("f".into(), vec![c("c")]);
        let clauses = vec![
            vec![
                GLiteral::pos(GAtom::Eq(c("a"), c("b"))),
                GLiteral::pos(GAtom::Eq(c("a"), c("c"))),
            ],
            vec![GLiteral::pos(GAtom::Eq(fb, c("d")))],
            vec![GLiteral::pos(GAtom::Eq(fc, c("d")))],
            vec![GLiteral::neg(GAtom::Eq(fa, c("d")))],
        ];
        assert_eq!(
            check_clauses(&clauses, GroundLimits::default()),
            GroundOutcome::Unsat
        );
    }

    #[test]
    fn limits_return_unknown() {
        // Many independent atoms with a tiny step budget.
        let mut clauses = Vec::new();
        for i in 0..20 {
            let p = GAtom::Pred(format!("p{i}"), vec![]);
            let q = GAtom::Pred(format!("q{i}"), vec![]);
            clauses.push(vec![GLiteral::pos(p.clone()), GLiteral::pos(q.clone())]);
            clauses.push(vec![GLiteral::neg(p), GLiteral::neg(q)]);
        }
        let out = check_clauses(
            &clauses,
            GroundLimits {
                max_steps: 3,
                ..GroundLimits::default()
            },
        );
        assert_eq!(out, GroundOutcome::Unknown);
    }
}
