//! Translation of higher-order sequents into ground SMT problems.
//!
//! This is the Jahob SMT-LIB interface of §6.3, rebuilt on top of the ground solver in
//! [`crate::ground`]. The pipeline mirrors the first-order interface (rewriting, polarity
//! approximation) but instead of clausal resolution it *instantiates* universally
//! quantified assumptions with the ground terms occurring in the sequent — a simple,
//! trigger-free variant of E-matching — and then decides the resulting ground formula
//! with DPLL + congruence closure + linear integer arithmetic.

use crate::ground::{check_clauses, GAtom, GClause, GLiteral, GTerm, GroundLimits, GroundOutcome};
use jahob_logic::approx::{approximate_implication, Polarity};
use jahob_logic::form::{Binder, Const, Form, Ident};
use jahob_logic::rewrite::{
    expand_complex_equalities, expand_field_write_applications, expand_set_membership, lift_ite,
    looks_like_set, rewrite_fixpoint,
};
use jahob_logic::simplify::{nnf, simplify};
use jahob_logic::subst::{free_vars, fresh_name, substitute, Subst};
use jahob_logic::types::Type;
use jahob_logic::Sequent;
use std::collections::BTreeSet;

/// Options for the SMT translation.
#[derive(Debug, Clone)]
pub struct SmtOptions {
    /// Variables known to denote sets.
    pub set_vars: BTreeSet<String>,
    /// Variables known to denote functions/fields.
    pub fun_vars: BTreeSet<String>,
    /// Maximum number of instances generated per quantified assumption.
    pub max_instances_per_quantifier: usize,
    /// Number of instantiation rounds (new terms produced by one round can trigger the
    /// next).
    pub instantiation_rounds: usize,
    /// Maximum number of ground clauses before giving up.
    pub max_clauses: usize,
    /// DPLL search limits.
    pub ground_limits: GroundLimits,
}

impl Default for SmtOptions {
    fn default() -> Self {
        SmtOptions {
            set_vars: BTreeSet::new(),
            fun_vars: BTreeSet::new(),
            max_instances_per_quantifier: 96,
            instantiation_rounds: 2,
            max_clauses: 9_000,
            ground_limits: GroundLimits::default(),
        }
    }
}

/// Result of an SMT proof attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmtResult {
    /// `true` if the sequent was proved.
    pub proved: bool,
    /// The underlying ground outcome (`Unsat` means proved).
    pub outcome: GroundOutcome,
    /// Number of ground clauses given to the solver.
    pub clauses: usize,
}

/// Attempts to prove the sequent by refuting its negation modulo EUF + LIA.
pub fn prove_sequent(sequent: &Sequent, options: &SmtOptions) -> SmtResult {
    let sequent = sequent.without_comments();
    let set_typed = |f: &Form| -> bool {
        looks_like_set(f)
            || match f {
                Form::Var(v) => options.set_vars.contains(v),
                Form::App(head, _) => {
                    matches!(head.as_ref(), Form::Var(v) if options.set_vars.contains(v))
                }
                _ => false,
            }
    };
    let prep = |f: &Form| -> Form {
        let f = expand_function_equalities(f, &options.fun_vars);
        let f = expand_field_write_applications(&f);
        let f = expand_complex_equalities(&f, &set_typed);
        let f = expand_set_membership(&f);
        let f = lift_ite(&f);
        simplify(&f)
    };
    let assumptions: Vec<Form> = sequent.assumptions.iter().map(prep).collect();
    let goal = prep(&sequent.goal);
    let (assumptions, goal) = approximate_implication(&assumptions, &goal, &smt_atom_filter);

    // The refutation target: assumptions and the negated goal.
    let mut formulas: Vec<Form> = assumptions;
    formulas.push(Form::not(goal));
    let formulas: Vec<Form> = formulas.iter().map(nnf).collect();

    // Ground the quantifiers.
    let mut grounder = Grounder {
        next_skolem: 0,
        options: options.clone(),
    };
    let mut candidates = collect_candidate_terms(&formulas, &options.fun_vars);
    if candidates.is_empty() {
        candidates.insert(Form::null());
    }
    // Iterated instantiation: each round re-grounds the original formulas with the
    // candidate pool enriched by the terms (Skolem constants, applications) the previous
    // round produced.
    let mut ground: Vec<Form> = Vec::new();
    for _round in 0..options.instantiation_rounds.max(1) {
        ground = formulas
            .iter()
            .map(|f| grounder.ground(f, &candidates))
            .collect();
        let mut enriched = collect_candidate_terms(&ground, &options.fun_vars);
        enriched.extend(candidates.iter().cloned());
        if enriched.len() == candidates.len() {
            break;
        }
        candidates = enriched;
    }

    // Give meaning to integer division and remainder by positive literal divisors (the
    // priority queue's parent/child index arithmetic needs this).
    let ground = define_divisions(ground);

    // Convert to ground clauses.
    let mut clauses: Vec<GClause> = Vec::new();
    for f in &ground {
        match formula_to_clauses(f, options.max_clauses.saturating_sub(clauses.len())) {
            Some(cs) => clauses.extend(cs),
            None => {
                return SmtResult {
                    proved: false,
                    outcome: GroundOutcome::Unknown,
                    clauses: clauses.len(),
                }
            }
        }
        if clauses.len() > options.max_clauses {
            return SmtResult {
                proved: false,
                outcome: GroundOutcome::Unknown,
                clauses: clauses.len(),
            };
        }
    }
    let n = clauses.len();
    let outcome = check_clauses(&clauses, options.ground_limits);
    SmtResult {
        proved: outcome == GroundOutcome::Unsat,
        outcome,
        clauses: n,
    }
}

/// Atoms representable in the ground SMT fragment.
fn smt_atom_filter(atom: &Form, _polarity: Polarity) -> Option<Form> {
    if atom.contains_const(&Const::Card)
        || atom.contains_const(&Const::Tree)
        || atom.contains_const(&Const::Old)
        || atom.contains_binder(Binder::Comprehension)
        || (atom.contains_binder(Binder::Lambda) && atom.as_app_of(&Const::Rtrancl).is_none())
    {
        return None;
    }
    Some(atom.clone())
}

/// Expands equalities between function-typed expressions pointwise (same rewrite as the
/// first-order interface).
fn expand_function_equalities(form: &Form, fun_vars: &BTreeSet<String>) -> Form {
    let is_fun = |f: &Form| -> bool {
        match f {
            Form::Var(v) => fun_vars.contains(v),
            // A partial `fieldWrite f x v` (exactly three arguments) denotes a function;
            // with a fourth argument it is already applied to a point and is a value.
            Form::App(head, args) => {
                matches!(head.as_ref(), Form::Const(Const::FieldWrite)) && args.len() == 3
            }
            _ => false,
        }
    };
    rewrite_fixpoint(form, &|f| {
        let [l, r] = f.as_app_of(&Const::Eq)? else {
            return None;
        };
        if is_fun(l) || is_fun(r) {
            let avoid = free_vars(f);
            let z = fresh_name("ptr", &avoid);
            return Some(Form::forall(
                z.clone(),
                Type::Obj,
                Form::eq(
                    Form::app(l.clone(), vec![Form::var(z.clone())]),
                    Form::app(r.clone(), vec![Form::var(z)]),
                ),
            ));
        }
        None
    })
}

/// Replaces ground occurrences of `a div k` and `a mod k` (for positive integer literals
/// `k`) by fresh variables constrained with the floor-division axioms
/// `k*q <= a < k*(q+1)`, appending the defining constraints as extra formulas. Divisions
/// by non-literal or non-positive divisors are left uninterpreted.
fn define_divisions(formulas: Vec<Form>) -> Vec<Form> {
    use std::cell::RefCell;
    use std::collections::BTreeMap;

    // (numerator, divisor) -> quotient variable name
    let quotients: RefCell<BTreeMap<(Form, i64), String>> = RefCell::new(BTreeMap::new());
    let quotient_of = |a: &Form, k: i64| -> String {
        let mut map = quotients.borrow_mut();
        let next = map.len();
        map.entry((a.clone(), k))
            .or_insert_with(|| format!("smt$div{next}"))
            .clone()
    };

    let positive_divisor = |f: &Form| -> Option<i64> {
        match f {
            Form::Const(Const::IntLit(k)) if *k > 0 => Some(*k),
            _ => None,
        }
    };

    let rewritten: Vec<Form> = formulas
        .iter()
        .map(|f| {
            rewrite_fixpoint(f, &|t| {
                if let Form::App(head, args) = t {
                    if args.len() == 2 {
                        if let Some(k) = positive_divisor(&args[1]) {
                            match head.as_ref() {
                                Form::Const(Const::Div) => {
                                    return Some(Form::var(quotient_of(&args[0], k)));
                                }
                                Form::Const(Const::Mod) => {
                                    // a mod k = a - k * (a div k)
                                    let q = Form::var(quotient_of(&args[0], k));
                                    return Some(Form::minus(
                                        args[0].clone(),
                                        Form::app(Form::Const(Const::Times), vec![Form::int(k), q]),
                                    ));
                                }
                                _ => {}
                            }
                        }
                    }
                }
                None
            })
        })
        .collect();

    let mut out = rewritten;
    for ((numerator, k), q) in quotients.into_inner() {
        let qv = Form::var(q);
        let kq = Form::app(Form::Const(Const::Times), vec![Form::int(k), qv]);
        // k*q <= a  and  a < k*q + k  (floor division, matching Isabelle/HOL's `div`).
        out.push(Form::cmp(Const::LtEq, kq.clone(), numerator.clone()));
        out.push(Form::cmp(
            Const::Lt,
            numerator,
            Form::plus(kq, Form::int(k)),
        ));
    }
    out
}

/// Collects ground candidate terms for quantifier instantiation: free variables and
/// ground applications occurring in the formulas (object-like terms, not boolean
/// connectives).
fn collect_candidate_terms(formulas: &[Form], fun_vars: &BTreeSet<String>) -> BTreeSet<Form> {
    let mut out = BTreeSet::new();
    for f in formulas {
        collect_terms(f, &mut out);
    }
    out.insert(Form::null());
    // Function-valued variables (fields) are not useful instantiation candidates for
    // object/integer quantifiers; dropping them keeps the pool focused.
    out.retain(|f| {
        !matches!(&f, Form::Var(v)
            if fun_vars.contains(v.as_str()) || v == "arrayState" || v == "old$arrayState")
    });
    // Cap the candidate pool to keep instantiation bounded.
    out.into_iter().take(20).collect()
}

fn collect_terms(form: &Form, out: &mut BTreeSet<Form>) {
    let mut bound = Vec::new();
    collect_terms_scoped(form, &mut bound, out);
}

/// Walks `form` collecting candidate terms, tracking the variables bound by enclosing
/// binders: a term mentioning a bound variable is not ground in the sequent's scope, so
/// instantiating with it would only add noise to the candidate pool.
fn collect_terms_scoped(form: &Form, bound: &mut Vec<Ident>, out: &mut BTreeSet<Form>) {
    let is_ground = |f: &Form, bound: &[Ident]| {
        bound.is_empty() || free_vars(f).iter().all(|v| !bound.contains(v))
    };
    match form {
        Form::Var(_) if is_ground(form, bound) => {
            out.insert(form.clone());
        }
        Form::Const(Const::Null) => {
            out.insert(form.clone());
        }
        Form::App(head, args) => {
            // Term-level applications of variables are candidates themselves (f x).
            if matches!(head.as_ref(), Form::Var(_))
                && is_ground(form, bound)
                && args.len() == 1
                && matches!(args[0], Form::Var(_) | Form::Const(Const::Null))
            {
                out.insert(form.clone());
            }
            for a in args {
                collect_terms_scoped(a, bound, out);
            }
        }
        Form::Binder(_, vars, body) => {
            let n = vars.len();
            bound.extend(vars.iter().map(|(v, _)| v.clone()));
            collect_terms_scoped(body, bound, out);
            bound.truncate(bound.len() - n);
        }
        Form::Typed(f, _) => collect_terms_scoped(f, bound, out),
        _ => {}
    }
}

struct Grounder {
    next_skolem: u32,
    options: SmtOptions,
}

impl Grounder {
    /// Removes quantifiers from an NNF formula by instantiation (universals) and
    /// skolemisation (existentials).
    fn ground(&mut self, form: &Form, candidates: &BTreeSet<Form>) -> Form {
        match form {
            Form::Binder(Binder::Forall, vars, body) => {
                let grounded_body = self.ground(body, candidates);
                let mut instances = Vec::new();
                let mut assignments: Vec<Subst> = vec![Subst::new()];
                for (v, _) in vars {
                    let mut next = Vec::new();
                    for base in &assignments {
                        for cand in candidates {
                            let mut s = base.clone();
                            s.insert(v.clone(), cand.clone());
                            next.push(s);
                            if next.len() >= self.options.max_instances_per_quantifier {
                                break;
                            }
                        }
                        if next.len() >= self.options.max_instances_per_quantifier {
                            break;
                        }
                    }
                    assignments = next;
                }
                for s in assignments {
                    instances.push(simplify(&substitute(&grounded_body, &s)));
                }
                Form::and(instances)
            }
            Form::Binder(Binder::Exists, vars, body) => {
                let mut s = Subst::new();
                for (v, _) in vars {
                    let name = format!("smt$sk{}", self.next_skolem);
                    self.next_skolem += 1;
                    s.insert(v.clone(), Form::var(name));
                }
                let skolemised = substitute(body, &s);
                self.ground(&skolemised, candidates)
            }
            Form::App(head, args) => {
                if let Form::Const(c) = head.as_ref() {
                    if matches!(c, Const::And | Const::Or | Const::Not) {
                        return Form::app(
                            head.as_ref().clone(),
                            args.iter().map(|a| self.ground(a, candidates)).collect(),
                        );
                    }
                }
                form.clone()
            }
            _ => form.clone(),
        }
    }
}

/// Converts a quantifier-free NNF formula into ground clauses (CNF by distribution, with
/// a budget). Returns `None` when the budget is exceeded.
fn formula_to_clauses(form: &Form, budget: usize) -> Option<Vec<GClause>> {
    fn go(form: &Form, positive: bool, budget: usize) -> Option<Vec<GClause>> {
        if let Form::App(head, args) = form {
            if let Form::Const(c) = head.as_ref() {
                match (c, positive) {
                    (Const::Not, _) => return go(&args[0], !positive, budget),
                    (Const::And, true) | (Const::Or, false) => {
                        let mut out = Vec::new();
                        for a in args {
                            out.extend(go(a, positive, budget)?);
                            if out.len() > budget {
                                return None;
                            }
                        }
                        return Some(out);
                    }
                    (Const::Or, true) | (Const::And, false) => {
                        let mut acc: Vec<GClause> = vec![Vec::new()];
                        for a in args {
                            let sub = go(a, positive, budget)?;
                            let mut next = Vec::new();
                            for base in &acc {
                                for s in &sub {
                                    let mut cl = base.clone();
                                    cl.extend(s.clone());
                                    next.push(cl);
                                    if next.len() > budget {
                                        return None;
                                    }
                                }
                            }
                            acc = next;
                        }
                        return Some(acc);
                    }
                    (Const::Impl, _) => {
                        let expanded = Form::or(vec![Form::not(args[0].clone()), args[1].clone()]);
                        return go(&expanded, positive, budget);
                    }
                    (Const::Iff, _) => {
                        let expanded = Form::and(vec![
                            Form::implies(args[0].clone(), args[1].clone()),
                            Form::implies(args[1].clone(), args[0].clone()),
                        ]);
                        return go(&expanded, positive, budget);
                    }
                    _ => {}
                }
            }
        }
        match form {
            Form::Const(Const::BoolLit(b)) => {
                if *b == positive {
                    Some(Vec::new())
                } else {
                    Some(vec![Vec::new()])
                }
            }
            // Remaining quantifiers (nested under atoms we could not instantiate) are
            // approximated by polarity.
            Form::Binder(Binder::Forall | Binder::Exists, _, _) => {
                if positive {
                    Some(vec![Vec::new()])
                } else {
                    Some(Vec::new())
                }
            }
            atom => {
                let lit = GLiteral {
                    positive,
                    atom: convert_atom(atom),
                };
                Some(vec![vec![lit]])
            }
        }
    }
    go(form, true, budget)
}

/// Converts a HOL atom to a ground SMT atom.
fn convert_atom(atom: &Form) -> GAtom {
    if let Form::App(head, args) = atom {
        if let Form::Const(c) = head.as_ref() {
            match (c, args.as_slice()) {
                (Const::Eq, [l, r]) => return GAtom::Eq(convert_term(l), convert_term(r)),
                (Const::Lt, [l, r]) => return GAtom::Lt(convert_term(l), convert_term(r)),
                (Const::Gt, [l, r]) => return GAtom::Lt(convert_term(r), convert_term(l)),
                (Const::LtEq, [l, r]) => return GAtom::Le(convert_term(l), convert_term(r)),
                (Const::GtEq, [l, r]) => return GAtom::Le(convert_term(r), convert_term(l)),
                (Const::Elem, [e, s]) => return convert_membership(e, s),
                (Const::Rtrancl, parts) if parts.len() == 3 => {
                    return GAtom::Pred(
                        format!("reach${}", parts[0]),
                        vec![convert_term(&parts[1]), convert_term(&parts[2])],
                    )
                }
                _ => {}
            }
        }
        if let Form::Var(p) = head.as_ref() {
            return GAtom::Pred(format!("p${p}"), args.iter().map(convert_term).collect());
        }
    }
    if let Form::Var(p) = atom {
        return GAtom::Pred(format!("p${p}"), Vec::new());
    }
    GAtom::Pred(format!("opaque${atom}"), Vec::new())
}

fn convert_membership(elem: &Form, set: &Form) -> GAtom {
    let mut components = match elem.as_app_of(&Const::Tuple) {
        Some(parts) => parts.iter().map(convert_term).collect::<Vec<_>>(),
        None => vec![convert_term(elem)],
    };
    match set {
        Form::Var(s) => GAtom::Pred(format!("in${s}"), components),
        Form::App(head, args) if matches!(head.as_ref(), Form::Var(_)) => {
            let Form::Var(f) = head.as_ref() else {
                unreachable!()
            };
            let mut all: Vec<GTerm> = args.iter().map(convert_term).collect();
            all.append(&mut components);
            GAtom::Pred(format!("in${f}"), all)
        }
        other => {
            components.push(convert_term(other));
            GAtom::Pred("in$".to_string(), components)
        }
    }
}

/// Converts a HOL term to a ground SMT term.
fn convert_term(term: &Form) -> GTerm {
    match term {
        Form::Var(v) => GTerm::constant(v.clone()),
        Form::Const(Const::Null) => GTerm::constant("null"),
        Form::Const(Const::IntLit(n)) => GTerm::Int(*n),
        Form::Const(Const::BoolLit(b)) => GTerm::constant(format!("bool${b}")),
        Form::Const(Const::EmptySet) => GTerm::constant("emptyset"),
        Form::Typed(inner, _) => convert_term(inner),
        Form::App(head, args) => {
            let conv: Vec<GTerm> = args.iter().map(convert_term).collect();
            match head.as_ref() {
                Form::Var(f) => GTerm::App(f.clone(), conv),
                Form::Const(Const::Plus) if conv.len() == 2 => {
                    let mut it = conv.into_iter();
                    GTerm::Add(
                        Box::new(it.next().expect("2 args")),
                        Box::new(it.next().expect("2 args")),
                    )
                }
                Form::Const(Const::Minus) if conv.len() == 2 => {
                    let mut it = conv.into_iter();
                    GTerm::Sub(
                        Box::new(it.next().expect("2 args")),
                        Box::new(it.next().expect("2 args")),
                    )
                }
                Form::Const(Const::Times) if conv.len() == 2 => match (&conv[0], &conv[1]) {
                    (GTerm::Int(k), other) | (other, GTerm::Int(k)) => {
                        GTerm::Mul(*k, Box::new(other.clone()))
                    }
                    _ => GTerm::App("int$times".into(), conv),
                },
                Form::Const(Const::UMinus) if conv.len() == 1 => GTerm::Sub(
                    Box::new(GTerm::Int(0)),
                    Box::new(conv.into_iter().next().expect("1 arg")),
                ),
                Form::Const(Const::ArrayRead) => GTerm::App("array$read".into(), conv),
                Form::Const(Const::ArrayWrite) => GTerm::App("array$write".into(), conv),
                Form::Const(Const::FieldWrite) => GTerm::App("field$write".into(), conv),
                Form::Const(Const::Union) => GTerm::App("set$union".into(), conv),
                Form::Const(Const::Inter) => GTerm::App("set$inter".into(), conv),
                Form::Const(Const::Diff) => GTerm::App("set$diff".into(), conv),
                Form::Const(Const::FiniteSet) => GTerm::App("set$mk".into(), conv),
                Form::Const(Const::Tuple) => GTerm::App("tuple".into(), conv),
                Form::Const(Const::Card) => GTerm::App("card".into(), conv),
                _ => GTerm::App(format!("opaque${head}"), conv),
            }
        }
        other => GTerm::constant(format!("opaque${other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::parse_form;

    fn seq(assumptions: &[&str], goal: &str) -> Sequent {
        Sequent::new(
            assumptions
                .iter()
                .map(|a| parse_form(a).expect("parse"))
                .collect(),
            parse_form(goal).expect("parse"),
        )
    }

    fn proves(assumptions: &[&str], goal: &str) -> bool {
        prove_sequent(&seq(assumptions, goal), &SmtOptions::default()).proved
    }

    #[test]
    fn proves_ground_euf_sequents() {
        assert!(proves(&["x = y", "y = z"], "x = z"));
        assert!(proves(&["x = y"], "x..next = y..next"));
        assert!(!proves(&["x = y"], "y = z"));
    }

    #[test]
    fn proves_arithmetic_sequents() {
        assert!(proves(&["0 <= size"], "0 <= size + 1"));
        assert!(proves(
            &["size = old_size + 1", "0 <= old_size"],
            "1 <= size"
        ));
        assert!(!proves(&["0 <= size"], "1 <= size"));
    }

    #[test]
    fn proves_quantified_assumptions_by_instantiation() {
        assert!(proves(
            &["ALL x. x : Node --> x..next : Node", "n : Node"],
            "n..next : Node"
        ));
        assert!(proves(&["ALL x y. x..f = y..f", "a : S"], "b..f = c..f"));
    }

    #[test]
    fn proves_membership_goals_with_set_expansion() {
        assert!(proves(&["x : content"], "x : content Un {y}"));
        assert!(proves(&["x : content", "x ~= y"], "x : content - {y}"));
        assert!(!proves(&["x : content"], "x : content - {y}"));
    }

    #[test]
    fn proves_field_update_reasoning() {
        let mut opts = SmtOptions::default();
        opts.fun_vars.insert("next".to_string());
        let s = seq(&["next1 = next(x := y)", "z ~= x"], "next1 z = next z");
        let mut opts2 = opts.clone();
        opts2.fun_vars.insert("next1".to_string());
        assert!(prove_sequent(&s, &opts2).proved);
    }

    #[test]
    fn proves_null_check_obligations() {
        assert!(proves(
            &["current ~= null", "current : Node | current = null"],
            "current : Node"
        ));
    }

    #[test]
    fn proves_division_bounds() {
        // The priority queue's parent index: (i - 1) div 2 is non-negative when 1 <= i.
        assert!(proves(&["1 <= i", "p = (i - 1) div 2"], "0 <= p"));
        // Without the lower bound on i the quotient can be negative.
        assert!(!proves(&["p = (i - 1) div 2"], "0 <= p"));
        // Remainders by a positive literal are bounded.
        assert!(proves(&["m = i mod 4"], "m < 4"));
        assert!(proves(&["m = i mod 4"], "0 <= m"));
        assert!(!proves(&["m = i mod 4"], "m < 3"));
    }

    #[test]
    fn does_not_prove_unsupported_cardinality_goals() {
        // Cardinality is outside the SMT fragment; the goal is approximated to False.
        assert!(!proves(&["content = {}"], "card content = 0"));
    }
}
