//! Congruence closure for ground equality reasoning (EUF).
//!
//! The theory solver of the SMT-style prover: given ground equalities and disequalities
//! over uninterpreted functions, decides consistency and answers equality queries. It is
//! a classic union–find based congruence closure.

use std::collections::BTreeMap;

/// A ground term handle (index into the term table).
pub type TermId = usize;

/// A ground term: a symbol applied to already-interned arguments.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroundTerm {
    /// Function symbol (constants have no arguments).
    pub symbol: String,
    /// Argument term ids.
    pub args: Vec<TermId>,
}

/// A congruence closure engine over interned ground terms.
#[derive(Debug, Clone, Default)]
pub struct CongruenceClosure {
    terms: Vec<GroundTerm>,
    index: BTreeMap<GroundTerm, TermId>,
    parent: Vec<TermId>,
    /// For each representative, the list of terms that have a member of this class as an
    /// argument (used to re-check congruence after merges).
    users: Vec<Vec<TermId>>,
    /// Disequalities asserted so far (pairs of term ids).
    disequalities: Vec<(TermId, TermId)>,
}

impl CongruenceClosure {
    /// Creates an empty engine.
    pub fn new() -> Self {
        CongruenceClosure::default()
    }

    /// Interns a term, returning its id. Equal terms always receive the same id.
    pub fn intern(&mut self, symbol: impl Into<String>, args: Vec<TermId>) -> TermId {
        let t = GroundTerm {
            symbol: symbol.into(),
            args,
        };
        if let Some(&id) = self.index.get(&t) {
            return id;
        }
        let id = self.terms.len();
        self.terms.push(t.clone());
        self.index.insert(t.clone(), id);
        self.parent.push(id);
        self.users.push(Vec::new());
        for &a in &t.args {
            let ra = self.find(a);
            self.users[ra].push(id);
        }
        // Congruence with existing terms is detected lazily on merges; a fresh term with
        // arguments already congruent to another application must be merged now.
        self.merge_congruent_with(id);
        id
    }

    /// Interns a constant.
    pub fn intern_const(&mut self, symbol: impl Into<String>) -> TermId {
        self.intern(symbol, Vec::new())
    }

    /// The number of interned terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    fn find(&self, mut x: TermId) -> TermId {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    /// Returns `true` if the two terms are currently known to be equal.
    pub fn equal(&self, a: TermId, b: TermId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Asserts an equality. Returns `false` if this makes the state inconsistent with a
    /// previously asserted disequality.
    pub fn assert_eq(&mut self, a: TermId, b: TermId) -> bool {
        self.merge(a, b);
        self.consistent()
    }

    /// Asserts a disequality. Returns `false` if the two terms are already equal.
    pub fn assert_neq(&mut self, a: TermId, b: TermId) -> bool {
        self.disequalities.push((a, b));
        self.consistent()
    }

    /// Returns `true` if no asserted disequality is violated.
    pub fn consistent(&self) -> bool {
        self.disequalities.iter().all(|&(a, b)| !self.equal(a, b))
    }

    fn merge(&mut self, a: TermId, b: TermId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Union by moving ra under rb (rb becomes representative).
        self.parent[ra] = rb;
        let moved_users = std::mem::take(&mut self.users[ra]);
        // Collect congruent pairs among users of the merged classes.
        let mut to_merge: Vec<(TermId, TermId)> = Vec::new();
        for &u in &moved_users {
            for &v in &self.users[rb] {
                if u != v && self.congruent(u, v) && !self.equal(u, v) {
                    to_merge.push((u, v));
                }
            }
        }
        self.users[rb].extend(moved_users);
        for (u, v) in to_merge {
            self.merge(u, v);
        }
    }

    fn congruent(&self, a: TermId, b: TermId) -> bool {
        let ta = &self.terms[a];
        let tb = &self.terms[b];
        ta.symbol == tb.symbol
            && ta.args.len() == tb.args.len()
            && ta
                .args
                .iter()
                .zip(tb.args.iter())
                .all(|(&x, &y)| self.equal(x, y))
    }

    fn merge_congruent_with(&mut self, id: TermId) {
        let mut to_merge = Vec::new();
        for other in 0..self.terms.len() {
            if other != id && self.congruent(id, other) && !self.equal(id, other) {
                to_merge.push(other);
            }
        }
        for other in to_merge {
            self.merge(id, other);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asserted_equalities_are_transitive() {
        let mut cc = CongruenceClosure::new();
        let a = cc.intern_const("a");
        let b = cc.intern_const("b");
        let c = cc.intern_const("c");
        assert!(cc.assert_eq(a, b));
        assert!(cc.assert_eq(b, c));
        assert!(cc.equal(a, c));
    }

    #[test]
    fn congruence_propagates_through_functions() {
        let mut cc = CongruenceClosure::new();
        let a = cc.intern_const("a");
        let b = cc.intern_const("b");
        let fa = cc.intern("f", vec![a]);
        let fb = cc.intern("f", vec![b]);
        assert!(!cc.equal(fa, fb));
        assert!(cc.assert_eq(a, b));
        assert!(cc.equal(fa, fb));
    }

    #[test]
    fn congruence_detected_for_terms_interned_after_merge() {
        let mut cc = CongruenceClosure::new();
        let a = cc.intern_const("a");
        let b = cc.intern_const("b");
        assert!(cc.assert_eq(a, b));
        let fa = cc.intern("f", vec![a]);
        let fb = cc.intern("f", vec![b]);
        assert!(cc.equal(fa, fb));
    }

    #[test]
    fn disequalities_cause_conflicts() {
        let mut cc = CongruenceClosure::new();
        let a = cc.intern_const("a");
        let b = cc.intern_const("b");
        let fa = cc.intern("f", vec![a]);
        let fb = cc.intern("f", vec![b]);
        assert!(cc.assert_neq(fa, fb));
        assert!(!cc.assert_eq(a, b), "merging a and b forces f(a) = f(b)");
    }

    #[test]
    fn nested_congruence() {
        let mut cc = CongruenceClosure::new();
        let a = cc.intern_const("a");
        let fa = cc.intern("f", vec![a]);
        let ffa = cc.intern("f", vec![fa]);
        let fffa = cc.intern("f", vec![ffa]);
        // f(a) = a implies f(f(f(a))) = a.
        assert!(cc.assert_eq(fa, a));
        assert!(cc.equal(fffa, a));
    }

    #[test]
    fn interning_is_hash_consing() {
        let mut cc = CongruenceClosure::new();
        let a1 = cc.intern_const("a");
        let a2 = cc.intern_const("a");
        assert_eq!(a1, a2);
        let f1 = cc.intern("f", vec![a1]);
        let f2 = cc.intern("f", vec![a2]);
        assert_eq!(f1, f2);
        assert_eq!(cc.num_terms(), 2);
    }
}
