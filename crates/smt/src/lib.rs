//! # jahob-smt
//!
//! An SMT-style ground prover playing the role of CVC3 and Z3 in the Jahob reproduction
//! (§6.3 of *Full Functional Verification of Linked Data Structures*, PLDI 2008).
//!
//! The crate provides:
//!
//! * [`euf`] — congruence closure over ground terms (the EUF theory solver),
//! * [`ground`] — a DPLL search over theory atoms combining EUF with linear integer
//!   arithmetic (via `jahob-arith`),
//! * [`translate`] — the interface from higher-order sequents: rewriting, polarity
//!   approximation, heuristic quantifier instantiation with the sequent's own ground
//!   terms, and conversion to ground clauses.
//!
//! Candidate-term instantiation only tries ground terms already occurring in the
//! sequent; when a proof needs a universal assumption specialised at a *compound*
//! witness, the annotation supplies it with a `by inst x := "w"` hint instead
//! (`jahob_provers::inst`, documented in `docs/SPEC_LANGUAGE.md`).
//!
//! # Example
//!
//! ```
//! use jahob_smt::{prove_sequent, SmtOptions};
//! use jahob_logic::{parse_form, Sequent};
//!
//! let sequent = Sequent::new(
//!     vec![parse_form("size = old_size + 1").unwrap(),
//!          parse_form("0 <= old_size").unwrap()],
//!     parse_form("1 <= size").unwrap(),
//! );
//! assert!(prove_sequent(&sequent, &SmtOptions::default()).proved);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod euf;
pub mod ground;
pub mod translate;

pub use euf::CongruenceClosure;
pub use ground::{check_clauses, GAtom, GClause, GLiteral, GTerm, GroundLimits, GroundOutcome};
pub use translate::{prove_sequent, SmtOptions, SmtResult};
