//! Property-based tests of the ground solver: the DPLL core must agree with a
//! brute-force truth-table check on purely propositional problems, and theory answers
//! must be sound with respect to simple integer models.

use jahob_smt::ground::{
    check_clauses, GAtom, GClause, GLiteral, GTerm, GroundLimits, GroundOutcome,
};
use proptest::prelude::*;

/// A random propositional clause set over `num_atoms` nullary predicates.
fn arb_clauses(num_atoms: usize) -> impl Strategy<Value = Vec<GClause>> {
    let literal = (0..num_atoms, prop::bool::ANY).prop_map(|(i, positive)| GLiteral {
        positive,
        atom: GAtom::Pred(format!("p{i}"), Vec::new()),
    });
    let clause = proptest::collection::vec(literal, 1..4);
    proptest::collection::vec(clause, 1..6)
}

/// Brute-force satisfiability over the `num_atoms` propositional atoms.
fn brute_force_sat(clauses: &[GClause], num_atoms: usize) -> bool {
    let atom_name = |a: &GAtom| -> usize {
        match a {
            GAtom::Pred(p, _) => p[1..].parse().expect("p<i> atom"),
            _ => unreachable!("propositional problems only"),
        }
    };
    (0..(1usize << num_atoms)).any(|model| {
        clauses.iter().all(|clause| {
            clause.iter().any(|lit| {
                let value = model & (1 << atom_name(&lit.atom)) != 0;
                value == lit.positive
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// On propositional problems the DPLL core agrees exactly with the truth table.
    #[test]
    fn dpll_agrees_with_truth_table(clauses in arb_clauses(5)) {
        let expected = brute_force_sat(&clauses, 5);
        let outcome = check_clauses(&clauses, GroundLimits::default());
        match outcome {
            GroundOutcome::Sat => prop_assert!(expected, "solver said Sat, truth table says Unsat"),
            GroundOutcome::Unsat => prop_assert!(!expected, "solver said Unsat, truth table says Sat"),
            GroundOutcome::Unknown | GroundOutcome::Deadline => {}
        }
    }

    /// Bounds that pin a variable into an empty interval are refuted; satisfiable
    /// interval constraints are not.
    #[test]
    fn interval_constraints_are_classified_correctly(lo in -20i64..20, width in 0i64..10) {
        let x = GTerm::constant("x");
        let hi = lo + width;
        let sat = vec![
            vec![GLiteral::pos(GAtom::Le(GTerm::Int(lo), x.clone()))],
            vec![GLiteral::pos(GAtom::Le(x.clone(), GTerm::Int(hi)))],
        ];
        prop_assert_eq!(check_clauses(&sat, GroundLimits::default()), GroundOutcome::Sat);
        let unsat = vec![
            vec![GLiteral::pos(GAtom::Le(GTerm::Int(hi + 1), x.clone()))],
            vec![GLiteral::pos(GAtom::Le(x.clone(), GTerm::Int(lo)))],
        ];
        prop_assert_eq!(check_clauses(&unsat, GroundLimits::default()), GroundOutcome::Unsat);
    }

    /// Chains of ground equalities propagate through congruence closure: asserting
    /// `c0 = c1, ..., c_{n-1} = c_n` and `f(c0) != f(c_n)` is unsatisfiable, while
    /// leaving one link out keeps the set satisfiable.
    #[test]
    fn equality_chains_are_congruent(n in 1usize..6) {
        let cst = |i: usize| GTerm::constant(format!("c{i}"));
        let f = |t: GTerm| GTerm::App("f".into(), vec![t]);
        let mut clauses: Vec<GClause> = (0..n)
            .map(|i| vec![GLiteral::pos(GAtom::Eq(cst(i), cst(i + 1)))])
            .collect();
        clauses.push(vec![GLiteral::neg(GAtom::Eq(f(cst(0)), f(cst(n))))]);
        prop_assert_eq!(check_clauses(&clauses, GroundLimits::default()), GroundOutcome::Unsat);

        // Remove the middle link: a model exists again.
        let broken: Vec<GClause> = clauses
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != n / 2)
            .map(|(_, c)| c.clone())
            .collect();
        prop_assert_eq!(check_clauses(&broken, GroundLimits::default()), GroundOutcome::Sat);
    }
}
