//! Property tests for [`jahob_provers::SequentKey`], the canonical form behind the
//! dispatcher's result cache.
//!
//! The cache is only sound (and only earns hits) if the key is invariant under the
//! rewrites the dispatcher considers meaning-preserving: alpha-renaming of bound
//! variables, AC permutation of commutative operators, and duplication/permutation of
//! assumptions. Conversely, it must not collapse structurally distinct sequents. The
//! generators are deterministic (the vendored proptest shim seeds by test name and
//! case index), so failures always reproduce.

use jahob_logic::form::Const;
use jahob_logic::{Form, Ident, Sequent, Type};
use jahob_provers::SequentKey;
use proptest::prelude::*;

/// A small pool of free variables shared by the generators.
fn var(i: u8) -> Form {
    Form::var(format!("v{i}"))
}

/// Atomic formulas over the variable pool: memberships, equalities, comparisons.
fn arb_atom() -> BoxedStrategy<Form> {
    prop_oneof![
        (0..4u8).prop_map(|i| Form::elem(var(i), Form::var("s"))),
        (0..4u8, 0..4u8).prop_map(|(a, b)| Form::eq(var(a), var(b))),
        (0..4u8).prop_map(|a| Form::cmp(Const::LtEq, var(a), Form::int(3))),
        (0..4u8).prop_map(|i| Form::var(format!("p{i}"))),
    ]
    .boxed()
}

/// Set-valued terms: variables, singletons, unions and intersections.
fn arb_set_term() -> BoxedStrategy<Form> {
    let leaf = prop_oneof![
        Just(Form::var("s")),
        Just(Form::var("content")),
        (0..4u8).prop_map(|i| Form::singleton(var(i))),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::union(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::inter(a, b)),
        ]
    })
    .boxed()
}

/// Boolean formulas combining atoms, set equalities, connectives and quantifiers.
fn arb_form() -> BoxedStrategy<Form> {
    let base = prop_oneof![
        arb_atom(),
        (arb_set_term(), arb_set_term()).prop_map(|(a, b)| Form::eq(a, b)),
    ];
    base.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::and(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::or(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::implies(a, b)),
            (inner.clone(), 0..4u8)
                .prop_map(|(body, i)| { Form::forall(format!("q{i}"), Type::Obj, body) }),
            (inner.clone(), 0..4u8).prop_map(|(body, i)| {
                // Quantify over a variable that also occurs free elsewhere, so the
                // alpha-renaming property exercises shadowing.
                Form::exists(format!("v{i}"), Type::Obj, body)
            }),
        ]
    })
    .boxed()
}

fn arb_sequent() -> impl Strategy<Value = Sequent> {
    (proptest::collection::vec(arb_form(), 0..4), arb_form())
        .prop_map(|(assumptions, goal)| Sequent::new(assumptions, goal))
}

/// Renames every bound variable by appending `_zqr` plus a running index — an
/// alpha-renaming as long as the fresh names collide with nothing the generators emit.
fn rename_bound(form: &Form) -> Form {
    fn go(form: &Form, env: &mut Vec<(Ident, Ident)>, counter: &mut usize) -> Form {
        match form {
            Form::Var(v) => {
                for (from, to) in env.iter().rev() {
                    if from == v {
                        return Form::Var(to.clone());
                    }
                }
                form.clone()
            }
            Form::Const(_) => form.clone(),
            Form::Typed(f, t) => Form::Typed(Box::new(go(f, env, counter)), t.clone()),
            Form::App(fun, args) => Form::App(
                Box::new(go(fun, env, counter)),
                args.iter().map(|a| go(a, env, counter)).collect(),
            ),
            Form::Binder(b, vars, body) => {
                let depth = env.len();
                let mut renamed = Vec::with_capacity(vars.len());
                for (v, t) in vars {
                    let fresh = format!("{v}_zqr{counter}");
                    *counter += 1;
                    env.push((v.clone(), fresh.clone()));
                    renamed.push((fresh, t.clone()));
                }
                let body = go(body, env, counter);
                env.truncate(depth);
                Form::Binder(*b, renamed, Box::new(body))
            }
        }
    }
    go(form, &mut Vec::new(), &mut 0)
}

/// Mirrors the arguments of every commutative operator (and reverses n-ary `&`/`|`),
/// producing an AC-permuted variant of the formula.
fn ac_mirror(form: &Form) -> Form {
    match form {
        Form::Var(_) | Form::Const(_) => form.clone(),
        Form::Typed(f, t) => Form::Typed(Box::new(ac_mirror(f)), t.clone()),
        Form::Binder(b, vars, body) => Form::Binder(*b, vars.clone(), Box::new(ac_mirror(body))),
        Form::App(fun, args) => {
            let fun = ac_mirror(fun);
            let mut args: Vec<Form> = args.iter().map(ac_mirror).collect();
            if let Form::Const(c) = &fun {
                let commutative = matches!(
                    c,
                    Const::And
                        | Const::Or
                        | Const::Eq
                        | Const::Iff
                        | Const::Union
                        | Const::Inter
                        | Const::Plus
                        | Const::Times
                );
                if commutative {
                    args.reverse();
                }
            }
            Form::App(Box::new(fun), args)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alpha_renamed_variants_share_a_key(s in arb_sequent()) {
        let renamed = Sequent::new(
            s.assumptions.iter().map(rename_bound).collect(),
            rename_bound(&s.goal),
        );
        prop_assert_eq!(SequentKey::of(&s), SequentKey::of(&renamed));
    }

    #[test]
    fn ac_permuted_variants_share_a_key(s in arb_sequent()) {
        let mirrored = Sequent::new(
            s.assumptions.iter().map(ac_mirror).collect(),
            ac_mirror(&s.goal),
        );
        prop_assert_eq!(SequentKey::of(&s), SequentKey::of(&mirrored));
    }

    #[test]
    fn duplicated_and_permuted_assumptions_share_a_key(
        s in arb_sequent(),
        dup in 0..4usize,
    ) {
        let mut assumptions = s.assumptions.clone();
        if !assumptions.is_empty() {
            assumptions.push(assumptions[dup % assumptions.len()].clone());
        }
        assumptions.reverse();
        let variant = Sequent::new(assumptions, s.goal.clone());
        prop_assert_eq!(SequentKey::of(&s), SequentKey::of(&variant));
    }

    #[test]
    fn combined_rewrites_share_a_key(s in arb_sequent()) {
        // All three invariances at once: duplicate an assumption, mirror the AC
        // operators, rename the binders, and permute the assumption list.
        let mut assumptions: Vec<Form> = s.assumptions.iter().map(|a| ac_mirror(&rename_bound(a))).collect();
        if let Some(first) = assumptions.first().cloned() {
            assumptions.push(first);
        }
        assumptions.reverse();
        let variant = Sequent::new(assumptions, rename_bound(&ac_mirror(&s.goal)));
        prop_assert_eq!(SequentKey::of(&s), SequentKey::of(&variant));
    }

    #[test]
    fn distinct_membership_goals_do_not_collide(
        assumptions in proptest::collection::vec(arb_form(), 0..3),
        i in 0..4u8,
        j in 0..4u8,
    ) {
        // `vi : s` and `vj : s` are structurally distinct non-trivial goals whenever
        // i != j; their keys must differ no matter the shared assumptions.
        if i != j {
            let a = Sequent::new(assumptions.clone(), Form::elem(var(i), Form::var("s")));
            let b = Sequent::new(assumptions, Form::elem(var(j), Form::var("s")));
            prop_assert_ne!(SequentKey::of(&a), SequentKey::of(&b));
        }
    }

    #[test]
    fn extra_nontrivial_assumptions_change_the_key(
        s in arb_sequent(),
        i in 0..4u8,
    ) {
        // Adding an assumption that is not already present (modulo canonicalisation)
        // must change the key: the provers see a genuinely different sequent.
        let extra = Form::elem(var(i), Form::var("fresh_set"));
        let mut assumptions = s.assumptions.clone();
        assumptions.push(extra);
        let grown = Sequent::new(assumptions, s.goal.clone());
        prop_assert_ne!(SequentKey::of(&s), SequentKey::of(&grown));
    }
}
