//! Canonical-form-keyed prover result cache.
//!
//! Identical sequents recur across the methods of one data structure: every path
//! re-establishes the class invariants, and the splitter re-emits the same background
//! assumptions per goal. The dispatcher therefore keys each obligation by a canonical
//! form of its (definition-inlined) sequent and consults a sharded in-memory cache
//! before any prover runs.
//!
//! The canonical form is computed with the same machinery the syntactic prover (§6.1)
//! trusts: [`inline_definitions`] collapses generated-variable equations,
//! [`canonicalize`] strips comments and AC-sorts commutative operators, and
//! [`alpha_normalize`] renames bound variables to position-canonical names. On top of
//! that, assumptions are deduplicated and sorted, so permuted or duplicated assumption
//! lists key identically. Every transformation preserves logical equivalence, so a
//! cache hit on a proved entry is sound: the hit sequent is equivalent to one a prover
//! actually discharged.
//!
//! The cache also has a **negative side**: a set of memoized failed attempts keyed by
//! `(prover, canonical sequent, variable classification)` (`FailureKey`). The
//! dispatcher consults it inside the uncached prover cascade, so a prover is never
//! re-run on a canonicalized sequent it already declined — neither on the full-sequent
//! retry after a failed hinted attempt, nor across obligations and retried suite runs
//! sharing the cache. The provers are deterministic functions of the canonicalized
//! sequent (plus the classification the key carries), so a memoized failure skip never
//! changes which sequents end up proved — the differential harness pins this across
//! the whole configuration matrix.

use jahob_logic::norm::{alpha_normalize, canonicalize, inline_definitions};
use jahob_logic::{Form, Sequent};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::ProverId;

/// Number of independently locked shards. Sixteen keeps lock contention negligible for
/// the thread counts the dispatcher runs (the work queue hands out one obligation at a
/// time, so at most `threads` lookups are in flight).
const SHARDS: usize = 16;

/// The canonical key of a sequent: a printed form that is invariant under
/// definition inlining, comment stripping, AC permutation of commutative operators,
/// alpha-renaming of bound variables, and duplication or permutation of assumptions.
///
/// Key equality is exact string equality of the canonical form, so structurally
/// distinct sequents can never collide (a 64-bit hash is precomputed only to pick a
/// shard and speed up `HashMap` probing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequentKey {
    repr: String,
    hash: u64,
}

impl Hash for SequentKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// One round of the canonical-form iteration: canonicalise, then rename binders.
///
/// A single pass is not confluent for AC-permuted binders — `sort_commutative` orders
/// sibling subtrees by their *current* bound-variable names, and the alpha pass then
/// numbers binders in the resulting traversal order — so the composition is iterated to
/// a fixpoint (bounded; real specification formulas converge in at most two rounds).
fn key_form(form: &Form) -> Form {
    let mut current = canonicalize(&alpha_normalize(form));
    for _ in 0..4 {
        let next = canonicalize(&alpha_normalize(&current));
        if next == current {
            break;
        }
        current = next;
    }
    current
}

impl SequentKey {
    /// Computes the canonical key of `sequent`.
    pub fn of(sequent: &Sequent) -> SequentKey {
        SequentKey::of_inlined(&inline_definitions(sequent))
    }

    /// Computes the canonical key of a sequent whose generated-variable definitions
    /// have already been inlined (the dispatcher inlines once and reuses the result
    /// for both proving and keying).
    pub(crate) fn of_inlined(inlined: &Sequent) -> SequentKey {
        let goal = key_form(&inlined.goal);
        // Sorting + deduplicating makes the key invariant under assumption order and
        // repetition; assumptions that canonicalise to `True` carry no information.
        let mut assumptions: Vec<String> = inlined
            .assumptions
            .iter()
            .map(key_form)
            .filter(|a| !a.is_true())
            .map(|a| a.to_string())
            .collect();
        assumptions.sort();
        assumptions.dedup();
        let repr = format!("{} |- {}", assumptions.join(" ;; "), goal);
        let mut hasher = DefaultHasher::new();
        repr.hash(&mut hasher);
        SequentKey {
            hash: hasher.finish(),
            repr,
        }
    }

    /// The canonical printed form backing the key (stable within a process run; useful
    /// for debugging cache behaviour).
    pub fn repr(&self) -> &str {
        &self.repr
    }

    /// Rebuilds a key from a canonical printed form read back from the on-disk store.
    ///
    /// `DefaultHasher::new()` is keyed deterministically, so the shard/probe hash of a
    /// reloaded key is identical to the one computed when the entry was first written —
    /// which is what makes the printed form alone a complete content address.
    pub(crate) fn from_repr(repr: String) -> SequentKey {
        let mut hasher = DefaultHasher::new();
        repr.hash(&mut hasher);
        SequentKey {
            hash: hasher.finish(),
            repr,
        }
    }
}

/// The full lookup key of one obligation: the canonical sequent plus everything else
/// that can change the dispatcher's verdict — the hint-filtered variant actually
/// attempted first, whether the interactive library has a proof registered, the
/// set/function classification of the sequent's free variables (it steers the SMT and
/// FOL translations), and a fingerprint of the dispatcher configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub sequent: SequentKey,
    /// Canonical key of the hint-filtered sequent, when hints are applied.
    pub hinted: Option<SequentKey>,
    /// Free variables the prover context classifies as sets, then as functions.
    pub var_classes: String,
    /// Whether the interactive lemma library has this obligation registered.
    pub lemma_registered: bool,
    /// Prover order and hint usage of the dispatcher that stored the entry.
    pub config_fingerprint: String,
}

/// The cached verdict for one obligation key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CachedOutcome {
    /// Whether some prover discharged the sequent.
    pub proved: bool,
    /// The prover credited with the proof (`None` when unproved).
    pub prover: Option<ProverId>,
    /// The per-prover attempted counts the original (uncached) run recorded. Replayed
    /// on every hit so the Figure 15 "attempted" columns agree between cached and
    /// uncached runs (only the times differ — hits cost no prover time).
    pub attempted: Vec<(ProverId, usize)>,
    /// The per-prover counts of attempts the original run *skipped* because the
    /// failure memo already knew them dead. Replayed alongside `attempted` so cached
    /// and uncached accounting stay field-for-field identical.
    pub skipped: Vec<(ProverId, usize)>,
    /// The per-prover counts of attempts the original run aborted on fuel exhaustion
    /// (budgeted cascade only). Replayed like `attempted`/`skipped` so cached and
    /// uncached accounting agree.
    pub budget_aborts: Vec<(ProverId, usize)>,
    /// Whether the original run needed the unbudgeted rescue pass for this
    /// obligation. Replayed into `VerificationReport::rescue_retries`.
    pub rescued: bool,
    /// Whether the entry was loaded from the persistent on-disk store rather than
    /// computed by this process. Not serialized — set by [`SequentCache::absorb`] so
    /// hits on warm-started entries can be attributed separately
    /// ([`CacheStats::disk_hits`], `VerificationReport::cache_disk_hits`).
    pub from_disk: bool,
}

/// The key of one memoized **failed** attempt site: the canonical form of the exact
/// sequent a prover ran on, and the set/function classification of that sequent's
/// free variables (the classification steers the SMT/FOL translations, so a prover
/// can fail a sequent under one classification and prove it under another). Which
/// provers failed at the site is stored as a bitmask *value* in the failure map, so
/// one cascade builds this key once per phase instead of once per prover.
///
/// A failure bit is only ever set after the prover actually ran and declined a
/// sequent with this canonical key. Serving the bit to a *different* presentation of
/// the same canonical sequent assumes provers behave identically on
/// canonically-equal inputs — the same assumption the verdict cache has always made
/// when replaying an `unproved` outcome (a cache hit on a failed verdict skips every
/// prover, not just one). The assumption is not literally airtight for the
/// resolution prover, whose fixed iteration budget makes it presentation-sensitive
/// in principle; the differential harness pins, per configuration matrix, that
/// verdicts are unaffected in practice. The interactive prover is never memoized
/// here: its verdict depends on the lemma library and the obligation's label path,
/// not on the sequent alone.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct FailureKey {
    /// Canonical key of the sequent the provers were attempted on.
    pub sequent: SequentKey,
    /// Set/function classification of the sequent's free variables.
    pub var_classes: String,
}

/// Tests `prover`'s bit within a failure mask fetched by
/// [`SequentCache::failed_mask`].
pub(crate) fn mask_contains(mask: u8, prover: ProverId) -> bool {
    mask & prover_bit(prover) != 0
}

/// The bit of `prover` within a failure-map bitmask value.
fn prover_bit(prover: ProverId) -> u8 {
    1 << match prover {
        ProverId::Syntactic => 0,
        ProverId::Mona => 1,
        ProverId::Smt => 2,
        ProverId::Fol => 3,
        ProverId::Bapa => 4,
        ProverId::Interactive => 5,
    }
}

/// Lifetime hit/miss counters of a cache (across every `prove_all` run that shared it).
///
/// Under parallel dispatch the split between hits and misses is not exactly
/// reproducible: two workers can race to the same cold key and both record a miss
/// (both then prove the sequent and store the same verdict). Verdicts — which sequents
/// are proved — are deterministic; only the hit/miss accounting wobbles by the number
/// of such collisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the provers.
    pub misses: u64,
    /// Individual prover attempts skipped because the negative side of the cache
    /// already recorded the `(prover, sequent)` pair as a failure.
    pub failure_hits: u64,
    /// Of `hits`, how many were answered by an entry loaded from the persistent
    /// on-disk store (a warm start) rather than computed earlier in this process.
    pub disk_hits: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, mutex-protected map from canonical obligation keys to prover verdicts.
///
/// The cache is shared by cloning the owning [`crate::Dispatcher`] (the dispatcher
/// holds it behind an `Arc`), so one cache can serve every method of a program — or a
/// whole suite run — across worker threads.
#[derive(Debug, Default)]
pub struct SequentCache {
    shards: [Mutex<HashMap<CacheKey, CachedOutcome>>; SHARDS],
    /// The negative side: memoized failed attempts as a per-prover bitmask keyed by
    /// `(sequent, classes)`, sharded like the verdict map. Entries are only consulted
    /// on the uncached prover cascade, so no prover is ever re-run on a canonicalized
    /// sequent it already declined — within one cascade (the full-sequent retry after
    /// a failed hinted attempt) and across obligations and retried runs that share
    /// the cache.
    failures: [Mutex<HashMap<FailureKey, u8>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    failure_hits: AtomicU64,
    disk_hits: AtomicU64,
}

impl SequentCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SequentCache::default()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, CachedOutcome>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() % SHARDS as u64) as usize]
    }

    fn failure_shard(&self, key: &FailureKey) -> &Mutex<HashMap<FailureKey, u8>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.failures[(hasher.finish() % SHARDS as u64) as usize]
    }

    /// The bitmask of provers memoized as failing the attempt site `key` (0 when the
    /// site is unknown). Fetched **once per cascade phase** — one lock, one hash —
    /// and then tested per prover with [`mask_contains`]; each skip the caller takes
    /// must be reported through [`SequentCache::note_failure_hit`].
    pub(crate) fn failed_mask(&self, key: &FailureKey) -> u8 {
        self.failure_shard(key)
            .lock()
            .expect("failure shard poisoned")
            .get(key)
            .copied()
            .unwrap_or(0)
    }

    /// Counts one prover attempt skipped thanks to the failure memo.
    pub(crate) fn note_failure_hit(&self) {
        self.failure_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed prover attempt. The key is cloned only when the attempt
    /// site is new; further provers failing the same site just set their bit.
    pub(crate) fn record_failure(&self, key: &FailureKey, prover: ProverId) {
        let mut shard = self
            .failure_shard(key)
            .lock()
            .expect("failure shard poisoned");
        match shard.get_mut(key) {
            Some(mask) => *mask |= prover_bit(prover),
            None => {
                shard.insert(key.clone(), prover_bit(prover));
            }
        }
    }

    /// Number of memoized failed `(prover, sequent)` attempts.
    pub fn failure_len(&self) -> usize {
        self.failures
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("failure shard poisoned")
                    .values()
                    .map(|mask| mask.count_ones() as usize)
                    .collect::<Vec<_>>()
            })
            .sum()
    }

    /// Looks up a key, recording a hit or miss in the lifetime counters.
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<CachedOutcome> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(outcome) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if outcome.from_disk {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        found
    }

    /// Stores the verdict for a key.
    pub(crate) fn insert(&self, key: CacheKey, outcome: CachedOutcome) {
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, outcome);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Returns `true` if no verdict has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss counters (including negative-side failure hits).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            failure_hits: self.failure_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }

    /// Snapshots every verdict and memoized failure for the persistent store. The
    /// snapshot includes entries that were themselves loaded from disk, so a
    /// merge-write never drops what an earlier process contributed.
    pub(crate) fn export(&self) -> crate::store::StoreData {
        let verdicts = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let failures = self
            .failures
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("failure shard poisoned")
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect::<Vec<_>>()
            })
            .collect();
        crate::store::StoreData { verdicts, failures }
    }

    /// Loads a store snapshot into the cache, marking every verdict as disk-loaded
    /// (so hits on it count as [`CacheStats::disk_hits`]) and OR-ing failure masks
    /// into any already present. Entries this process already computed are never
    /// overwritten — fresh results are at least as up to date as the store's.
    pub(crate) fn absorb(&self, data: crate::store::StoreData) {
        for (key, mut outcome) in data.verdicts {
            outcome.from_disk = true;
            self.shard(&key)
                .lock()
                .expect("cache shard poisoned")
                .entry(key)
                .or_insert(outcome);
        }
        for (key, mask) in data.failures {
            let mut shard = self
                .failure_shard(&key)
                .lock()
                .expect("failure shard poisoned");
            match shard.get_mut(&key) {
                Some(existing) => *existing |= mask,
                None => {
                    shard.insert(key, mask);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::parse_form;

    fn seq(assumptions: &[&str], goal: &str) -> Sequent {
        Sequent::new(
            assumptions
                .iter()
                .map(|a| parse_form(a).expect("parse"))
                .collect(),
            parse_form(goal).expect("parse"),
        )
    }

    #[test]
    fn keys_are_invariant_under_ac_permutation_and_duplication() {
        let a = SequentKey::of(&seq(&["p & q", "x : s"], "{x} Un content = content Un {x}"));
        let b = SequentKey::of(&seq(
            &["x : s", "q & p", "x : s"],
            "content Un {x} = {x} Un content",
        ));
        assert_eq!(a, b);
    }

    #[test]
    fn keys_are_invariant_under_alpha_renaming_and_inlining() {
        let a = SequentKey::of(&seq(&["asg$1 = {x} Un content"], "EX v. v : asg$1"));
        let b = SequentKey::of(&seq(&[], "EX w. w : content Un {x}"));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_sequents_have_distinct_keys() {
        let a = SequentKey::of(&seq(&["p"], "q"));
        let b = SequentKey::of(&seq(&["p"], "r"));
        assert_ne!(a, b);
        let c = SequentKey::of(&seq(&["p", "q"], "r"));
        assert_ne!(b, c);
    }

    #[test]
    fn cache_round_trips_and_counts() {
        let cache = SequentCache::new();
        let key = CacheKey {
            sequent: SequentKey::of(&seq(&["p"], "p")),
            hinted: None,
            var_classes: String::new(),
            lemma_registered: false,
            config_fingerprint: "test".into(),
        };
        assert_eq!(cache.lookup(&key), None);
        let outcome = CachedOutcome {
            proved: true,
            prover: Some(ProverId::Syntactic),
            attempted: vec![(ProverId::Syntactic, 1)],
            skipped: Vec::new(),
            budget_aborts: Vec::new(),
            rescued: false,
            from_disk: false,
        };
        cache.insert(key.clone(), outcome.clone());
        assert_eq!(cache.lookup(&key), Some(outcome));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failure_memo_round_trips_and_counts() {
        let cache = SequentCache::new();
        let key = FailureKey {
            sequent: SequentKey::of(&seq(&["size = card content"], "size = card content")),
            var_classes: "S:content;".into(),
        };
        assert!(!mask_contains(cache.failed_mask(&key), ProverId::Mona));
        cache.record_failure(&key, ProverId::Mona);
        assert!(mask_contains(cache.failed_mask(&key), ProverId::Mona));
        assert_eq!(cache.failure_len(), 1);
        // A different prover on the same attempt site is a distinct failure bit.
        assert!(!mask_contains(cache.failed_mask(&key), ProverId::Smt));
        cache.record_failure(&key, ProverId::Smt);
        let mask = cache.failed_mask(&key);
        assert!(mask_contains(mask, ProverId::Smt) && mask_contains(mask, ProverId::Mona));
        assert_eq!(cache.failure_len(), 2);
        // A different classification is a distinct attempt site.
        let other = FailureKey {
            var_classes: String::new(),
            ..key.clone()
        };
        assert_eq!(cache.failed_mask(&other), 0);
        // Failure hits are counted separately from verdict hits/misses, and only when
        // the dispatcher reports an actually skipped attempt.
        cache.note_failure_hit();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.failure_hits, 1);
    }
}
