//! Canonical-form-keyed prover result cache.
//!
//! Identical sequents recur across the methods of one data structure: every path
//! re-establishes the class invariants, and the splitter re-emits the same background
//! assumptions per goal. The dispatcher therefore keys each obligation by a canonical
//! form of its (definition-inlined) sequent and consults a sharded in-memory cache
//! before any prover runs.
//!
//! The canonical form is computed with the same machinery the syntactic prover (§6.1)
//! trusts: [`inline_definitions`] collapses generated-variable equations,
//! [`canonicalize`] strips comments and AC-sorts commutative operators, and
//! [`alpha_normalize`] renames bound variables to position-canonical names. On top of
//! that, assumptions are deduplicated and sorted, so permuted or duplicated assumption
//! lists key identically. Every transformation preserves logical equivalence, so a
//! cache hit on a proved entry is sound: the hit sequent is equivalent to one a prover
//! actually discharged.

use jahob_logic::norm::{alpha_normalize, canonicalize, inline_definitions};
use jahob_logic::{Form, Sequent};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::ProverId;

/// Number of independently locked shards. Sixteen keeps lock contention negligible for
/// the thread counts the dispatcher runs (the work queue hands out one obligation at a
/// time, so at most `threads` lookups are in flight).
const SHARDS: usize = 16;

/// The canonical key of a sequent: a printed form that is invariant under
/// definition inlining, comment stripping, AC permutation of commutative operators,
/// alpha-renaming of bound variables, and duplication or permutation of assumptions.
///
/// Key equality is exact string equality of the canonical form, so structurally
/// distinct sequents can never collide (a 64-bit hash is precomputed only to pick a
/// shard and speed up `HashMap` probing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequentKey {
    repr: String,
    hash: u64,
}

impl Hash for SequentKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// One round of the canonical-form iteration: canonicalise, then rename binders.
///
/// A single pass is not confluent for AC-permuted binders — `sort_commutative` orders
/// sibling subtrees by their *current* bound-variable names, and the alpha pass then
/// numbers binders in the resulting traversal order — so the composition is iterated to
/// a fixpoint (bounded; real specification formulas converge in at most two rounds).
fn key_form(form: &Form) -> Form {
    let mut current = canonicalize(&alpha_normalize(form));
    for _ in 0..4 {
        let next = canonicalize(&alpha_normalize(&current));
        if next == current {
            break;
        }
        current = next;
    }
    current
}

impl SequentKey {
    /// Computes the canonical key of `sequent`.
    pub fn of(sequent: &Sequent) -> SequentKey {
        SequentKey::of_inlined(&inline_definitions(sequent))
    }

    /// Computes the canonical key of a sequent whose generated-variable definitions
    /// have already been inlined (the dispatcher inlines once and reuses the result
    /// for both proving and keying).
    pub(crate) fn of_inlined(inlined: &Sequent) -> SequentKey {
        let goal = key_form(&inlined.goal);
        // Sorting + deduplicating makes the key invariant under assumption order and
        // repetition; assumptions that canonicalise to `True` carry no information.
        let mut assumptions: Vec<String> = inlined
            .assumptions
            .iter()
            .map(key_form)
            .filter(|a| !a.is_true())
            .map(|a| a.to_string())
            .collect();
        assumptions.sort();
        assumptions.dedup();
        let repr = format!("{} |- {}", assumptions.join(" ;; "), goal);
        let mut hasher = DefaultHasher::new();
        repr.hash(&mut hasher);
        SequentKey {
            hash: hasher.finish(),
            repr,
        }
    }

    /// The canonical printed form backing the key (stable within a process run; useful
    /// for debugging cache behaviour).
    pub fn repr(&self) -> &str {
        &self.repr
    }
}

/// The full lookup key of one obligation: the canonical sequent plus everything else
/// that can change the dispatcher's verdict — the hint-filtered variant actually
/// attempted first, whether the interactive library has a proof registered, the
/// set/function classification of the sequent's free variables (it steers the SMT and
/// FOL translations), and a fingerprint of the dispatcher configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub sequent: SequentKey,
    /// Canonical key of the hint-filtered sequent, when hints are applied.
    pub hinted: Option<SequentKey>,
    /// Free variables the prover context classifies as sets, then as functions.
    pub var_classes: String,
    /// Whether the interactive lemma library has this obligation registered.
    pub lemma_registered: bool,
    /// Prover order and hint usage of the dispatcher that stored the entry.
    pub config_fingerprint: String,
}

/// The cached verdict for one obligation key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CachedOutcome {
    /// Whether some prover discharged the sequent.
    pub proved: bool,
    /// The prover credited with the proof (`None` when unproved).
    pub prover: Option<ProverId>,
    /// The per-prover attempted counts the original (uncached) run recorded. Replayed
    /// on every hit so the Figure 15 "attempted" columns agree between cached and
    /// uncached runs (only the times differ — hits cost no prover time).
    pub attempted: Vec<(ProverId, usize)>,
}

/// Lifetime hit/miss counters of a cache (across every `prove_all` run that shared it).
///
/// Under parallel dispatch the split between hits and misses is not exactly
/// reproducible: two workers can race to the same cold key and both record a miss
/// (both then prove the sequent and store the same verdict). Verdicts — which sequents
/// are proved — are deterministic; only the hit/miss accounting wobbles by the number
/// of such collisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the provers.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, mutex-protected map from canonical obligation keys to prover verdicts.
///
/// The cache is shared by cloning the owning [`crate::Dispatcher`] (the dispatcher
/// holds it behind an `Arc`), so one cache can serve every method of a program — or a
/// whole suite run — across worker threads.
#[derive(Debug, Default)]
pub struct SequentCache {
    shards: [Mutex<HashMap<CacheKey, CachedOutcome>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SequentCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SequentCache::default()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, CachedOutcome>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() % SHARDS as u64) as usize]
    }

    /// Looks up a key, recording a hit or miss in the lifetime counters.
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<CachedOutcome> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores the verdict for a key.
    pub(crate) fn insert(&self, key: CacheKey, outcome: CachedOutcome) {
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, outcome);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Returns `true` if no verdict has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::parse_form;

    fn seq(assumptions: &[&str], goal: &str) -> Sequent {
        Sequent::new(
            assumptions
                .iter()
                .map(|a| parse_form(a).expect("parse"))
                .collect(),
            parse_form(goal).expect("parse"),
        )
    }

    #[test]
    fn keys_are_invariant_under_ac_permutation_and_duplication() {
        let a = SequentKey::of(&seq(&["p & q", "x : s"], "{x} Un content = content Un {x}"));
        let b = SequentKey::of(&seq(
            &["x : s", "q & p", "x : s"],
            "content Un {x} = {x} Un content",
        ));
        assert_eq!(a, b);
    }

    #[test]
    fn keys_are_invariant_under_alpha_renaming_and_inlining() {
        let a = SequentKey::of(&seq(&["asg$1 = {x} Un content"], "EX v. v : asg$1"));
        let b = SequentKey::of(&seq(&[], "EX w. w : content Un {x}"));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_sequents_have_distinct_keys() {
        let a = SequentKey::of(&seq(&["p"], "q"));
        let b = SequentKey::of(&seq(&["p"], "r"));
        assert_ne!(a, b);
        let c = SequentKey::of(&seq(&["p", "q"], "r"));
        assert_ne!(b, c);
    }

    #[test]
    fn cache_round_trips_and_counts() {
        let cache = SequentCache::new();
        let key = CacheKey {
            sequent: SequentKey::of(&seq(&["p"], "p")),
            hinted: None,
            var_classes: String::new(),
            lemma_registered: false,
            config_fingerprint: "test".into(),
        };
        assert_eq!(cache.lookup(&key), None);
        let outcome = CachedOutcome {
            proved: true,
            prover: Some(ProverId::Syntactic),
            attempted: vec![(ProverId::Syntactic, 1)],
        };
        cache.insert(key.clone(), outcome.clone());
        assert_eq!(cache.lookup(&key), Some(outcome));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }
}
