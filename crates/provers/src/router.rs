//! Feature-directed prover routing (§5.2).
//!
//! The dispatcher's global prover order is one fixed bet: cheap and specialised first.
//! But the *right* order is a property of the sequent, not of the run — the paper's own
//! premise is that each specialised logic (MONA, BAPA, SMT, FOL) has a syntactically
//! recognisable fragment. This module scores a sequent's [`SequentFeatures`] per prover
//! and produces a per-obligation cascade order:
//!
//! * provers whose fragment the sequent matches are promoted (highest score first,
//!   global order breaking ties);
//! * provers scored *hopeless* for the sequent (e.g. MONA on a cardinality sequent —
//!   WS1S has no `card`) are demoted behind everything else, **not dropped**: they
//!   still run, in global order, if every promoted prover fails.
//!
//! Because [`route`] always returns a permutation of the global order, routing can
//! change which prover is credited and how many attempts are spent, but never which
//! sequents end up proved — the routing differential test pins this.

use crate::costmodel::CostModel;
use crate::ProverId;
use jahob_logic::SequentFeatures;

/// Score of one prover for one sequent: `None` marks the prover hopeless for the
/// sequent's fragment (demoted to the fallback tail); `Some(s)` promotes it, higher
/// `s` earlier. The constants only encode a relative order; ties fall back to the
/// global order.
fn score(prover: ProverId, f: &SequentFeatures) -> Option<u32> {
    match prover {
        // The syntactic prover costs microseconds and discharges the bulk of all
        // sequents; it is always worth running first.
        ProverId::Syntactic => Some(1000),
        // The lemma-library lookup is cheap but should not steal credit from the
        // automatic provers; keep it at the end of the promoted cascade, as in the
        // global order.
        ProverId::Interactive => Some(1),
        ProverId::Bapa => {
            if f.card_atoms > 0 {
                // Cardinality is BAPA's signature atom — nothing else decides it.
                Some(95)
            } else if f.set_atoms > 0 && f.is_ground() {
                Some(55)
            } else if f.set_atoms > 0 {
                // Quantified set structure: the polarity approximation may still leave
                // a useful BAPA core.
                Some(35)
            } else {
                // No set vocabulary at all: the Venn-region reduction has nothing to
                // work on (pure arithmetic is the SMT prover's job).
                None
            }
        }
        ProverId::Mona => {
            if f.reachability_atoms > 0 && f.card_atoms == 0 && f.arith_atoms == 0 {
                // Reachability over backbones is the one fragment where the automata
                // construction is worth its risk — nothing else decides it. (This test
                // comes first: `rtrancl_pt` carries its step predicate as a lambda, so
                // the higher-order exclusion below must not mask it.)
                Some(90)
            } else if f.card_atoms > 0 || f.arith_atoms > 0 || f.tuples > 0 || f.lambdas > 0 {
                // Outside WS1S: no cardinality, no arithmetic beyond successor, no
                // relational (tuple) state, no higher-order binders. These are exactly
                // the sequents MONA burns ~100 ms failing on (EXPERIMENTS.md Fig. 7).
                None
            } else if f.memberships > 0 {
                // Monadic membership shape is *decidable* by MONA, but a successful
                // automata run (~100 µs) saves little over SMT/FOL while a failing
                // one costs ~100 ms — keep MONA behind the bounded provers unless
                // reachability forces it.
                Some(45)
            } else {
                None
            }
        }
        ProverId::Smt => {
            if f.is_ground() && (f.arith_atoms > 0 || f.equalities > 0) {
                Some(85)
            } else if f.arith_atoms > 0 || f.equalities > 0 || f.field_ops > 0 {
                // Quantified but with ground vocabulary: instantiation may find the
                // ground core.
                Some(60)
            } else {
                // General-purpose fallback (DPLL on the propositional skeleton).
                Some(30)
            }
        }
        ProverId::Fol => {
            if f.quantifiers > 0 {
                Some(50)
            } else if f.field_ops > 0 {
                Some(45)
            } else {
                // Resolution is the most expensive reasoner; on ground sequents it
                // only duplicates what the SMT prover decides faster.
                Some(15)
            }
        }
    }
}

/// Routes one sequent: returns a **permutation** of `global` — promoted provers first
/// (score descending, global position breaking ties), then the provers scored hopeless
/// for this sequent, in global order, as the fallback tail. No prover is ever dropped,
/// so a router miss degrades to the global cascade instead of losing a proof.
pub fn route(features: &SequentFeatures, global: &[ProverId]) -> Vec<ProverId> {
    let mut promoted: Vec<(u32, usize, ProverId)> = Vec::with_capacity(global.len());
    let mut fallback: Vec<ProverId> = Vec::new();
    for (position, prover) in global.iter().enumerate() {
        match score(*prover, features) {
            Some(s) => promoted.push((s, position, *prover)),
            None => fallback.push(*prover),
        }
    }
    // Sort by score descending; equal scores keep their global relative order.
    promoted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut order: Vec<ProverId> = promoted.into_iter().map(|(_, _, p)| p).collect();
    order.extend(fallback);
    order
}

/// The seed pseudo-cost (in nanoseconds) of a promoted prover with hand-tuned score
/// `s`. The map is strictly monotone decreasing in `s`, so an entirely uncalibrated
/// model routes **exactly** like [`route`]: scores descending is seed costs
/// ascending, and equal scores map to equal costs, which the position tie-break then
/// resolves identically. The absolute scale (~1 µs per score point) is in the same
/// ballpark as real attempt costs, so the first calibrated cells compete on fair
/// terms with the remaining seeds instead of jumping the queue.
fn seed_cost_ns(score: u32) -> f64 {
    (1000 - score.min(1000)) as f64 * 1000.0
}

/// Routes one sequent by **expected cost to discharge**, mixing the measured cost
/// model with the hand-tuned score seeds. Still a permutation of `global`:
///
/// * a prover whose `(prover, bucket)` cell is calibrated is ranked by its measured
///   expected cost — unless it is scored hopeless *and* has never won in the bucket,
///   in which case the measurements only confirm the static verdict and it stays in
///   the fallback tail;
/// * an uncalibrated prover keeps its seeded rank: score-derived pseudo-cost if
///   promoted (`seed_cost_ns`), fallback tail if hopeless.
///
/// On a cold model this reproduces [`route`] exactly (the seed map is monotone), so
/// first-batch behaviour is unchanged; calibrated cells then reorder the promoted
/// cascade — and can promote a statically-hopeless prover that demonstrably wins —
/// as evidence accumulates.
pub fn route_with_model(
    features: &SequentFeatures,
    global: &[ProverId],
    model: &CostModel,
) -> Vec<ProverId> {
    let bucket = features.bucket();
    let mut promoted: Vec<(f64, usize, ProverId)> = Vec::with_capacity(global.len());
    let mut fallback: Vec<ProverId> = Vec::new();
    for (position, prover) in global.iter().enumerate() {
        let static_score = score(*prover, features);
        match model.calibrated(*prover, bucket) {
            Some(stat) if static_score.is_some() || stat.wins > 0 => {
                promoted.push((stat.expected_cost_ns(), position, *prover));
            }
            _ => match static_score {
                Some(s) => promoted.push((seed_cost_ns(s), position, *prover)),
                None => fallback.push(*prover),
            },
        }
    }
    // Sort by expected cost ascending; cost ties keep their global relative order.
    // (`total_cmp`: costs are finite by construction, but NaN must not poison the
    // sort even if a degenerate cell slips in.)
    promoted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut order: Vec<ProverId> = promoted.into_iter().map(|(_, _, p)| p).collect();
    order.extend(fallback);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::CostStat;
    use jahob_logic::{parse_form, Sequent};

    fn features(assumptions: &[&str], goal: &str) -> SequentFeatures {
        SequentFeatures::of(&Sequent::new(
            assumptions
                .iter()
                .map(|a| parse_form(a).expect("parse"))
                .collect(),
            parse_form(goal).expect("parse"),
        ))
    }

    fn position(order: &[ProverId], p: ProverId) -> usize {
        order.iter().position(|q| *q == p).expect("prover present")
    }

    #[test]
    fn routing_is_always_a_permutation_of_the_global_order() {
        let global = ProverId::default_order();
        for f in [
            features(&[], "p"),
            features(&["size = card content"], "size + 1 = card (content Un {x})"),
            features(
                &["ALL x. x : nodes --> x : alloc", "n : nodes"],
                "n : alloc",
            ),
            features(&["x = y + 1"], "1 <= x"),
            features(&["(k, v) : content"], "EX w. (k, w) : content"),
        ] {
            let mut routed = route(&f, &global);
            assert_eq!(routed.len(), global.len());
            routed.sort();
            let mut sorted = global.clone();
            sorted.sort();
            assert_eq!(routed, sorted, "route dropped or duplicated a prover");
        }
    }

    #[test]
    fn cardinality_sequents_promote_bapa_and_demote_mona() {
        let f = features(
            &["size = card content", "x ~: content"],
            "size + 1 = card (content Un {x})",
        );
        let order = route(&f, &ProverId::default_order());
        assert_eq!(order[0], ProverId::Syntactic);
        assert_eq!(
            order[1],
            ProverId::Bapa,
            "card atoms promote BAPA: {order:?}"
        );
        assert!(
            position(&order, ProverId::Mona) > position(&order, ProverId::Fol),
            "MONA is hopeless on cardinality sequents and must trail the cascade: {order:?}"
        );
    }

    #[test]
    fn ground_arithmetic_promotes_smt_before_bapa_and_fol() {
        let f = features(&["x = y + 1", "0 <= y"], "1 <= x");
        let order = route(&f, &ProverId::default_order());
        assert_eq!(order[0], ProverId::Syntactic);
        assert_eq!(order[1], ProverId::Smt);
        assert!(position(&order, ProverId::Smt) < position(&order, ProverId::Fol));
        assert!(
            position(&order, ProverId::Mona) > position(&order, ProverId::Interactive),
            "arithmetic prunes MONA into the fallback tail: {order:?}"
        );
    }

    #[test]
    fn monadic_membership_keeps_mona_promoted_but_behind_bounded_provers() {
        let f = features(
            &["ALL x. x : nodes --> x : alloc", "n : nodes"],
            "n : alloc",
        );
        let order = route(&f, &ProverId::default_order());
        // Decidable by MONA, so it stays in the promoted cascade (ahead of the
        // general-purpose SMT fallback) — but behind FOL, whose failures are bounded
        // while a failing automata construction can cost ~100 ms.
        assert!(position(&order, ProverId::Mona) < position(&order, ProverId::Smt));
        assert!(position(&order, ProverId::Fol) < position(&order, ProverId::Mona));
    }

    #[test]
    fn reachability_promotes_mona_first() {
        let f = features(
            &["rtrancl_pt (% x y. x..next = y) root n", "n : nodes"],
            "rtrancl_pt (% x y. x..next = y) root n",
        );
        let order = route(&f, &ProverId::default_order());
        assert_eq!(order[0], ProverId::Syntactic);
        assert_eq!(order[1], ProverId::Mona, "{order:?}");
    }

    #[test]
    fn relational_tuples_prune_mona() {
        let f = features(&["(k, v) : content"], "EX w. (k, w) : content");
        let order = route(&f, &ProverId::default_order());
        assert!(
            position(&order, ProverId::Mona) > position(&order, ProverId::Interactive),
            "tuple state is not monadic: {order:?}"
        );
    }

    #[test]
    fn cold_model_routing_equals_static_routing() {
        let model = CostModel::new();
        let global = ProverId::default_order();
        for f in [
            features(&[], "p"),
            features(&["size = card content"], "size + 1 = card (content Un {x})"),
            features(
                &["ALL x. x : nodes --> x : alloc", "n : nodes"],
                "n : alloc",
            ),
            features(&["x = y + 1"], "1 <= x"),
            features(&["(k, v) : content"], "EX w. (k, w) : content"),
            features(
                &["rtrancl_pt (% x y. x..next = y) root n"],
                "n : {z. z : nodes}",
            ),
        ] {
            assert_eq!(
                route_with_model(&f, &global, &model),
                route(&f, &global),
                "a cold model must reproduce the hand-tuned order exactly"
            );
        }
    }

    #[test]
    fn calibrated_costs_reorder_the_promoted_cascade() {
        let f = features(&["x = y + 1", "0 <= y"], "1 <= x");
        let global = ProverId::default_order();
        let model = CostModel::new();
        // Statically SMT outranks FOL on ground arithmetic; teach the model that SMT
        // keeps losing expensively here while FOL wins cheaply.
        model.absorb(vec![
            (
                ProverId::Smt,
                f.bucket(),
                CostStat {
                    attempts: 10,
                    wins: 0,
                    ema_cost_ns: 20_000_000.0,
                },
            ),
            (
                ProverId::Fol,
                f.bucket(),
                CostStat {
                    attempts: 10,
                    wins: 10,
                    ema_cost_ns: 300_000.0,
                },
            ),
        ]);
        let order = route_with_model(&f, &global, &model);
        assert!(
            position(&order, ProverId::Fol) < position(&order, ProverId::Smt),
            "measured evidence must override the seeds: {order:?}"
        );
        // Still a permutation.
        let mut sorted = order.clone();
        sorted.sort();
        let mut global_sorted = global.clone();
        global_sorted.sort();
        assert_eq!(sorted, global_sorted);
    }

    #[test]
    fn winless_calibration_keeps_hopeless_provers_in_the_tail() {
        // MONA is statically hopeless on cardinality sequents; measurements that only
        // confirm the losses (wins = 0) must not promote it out of the tail.
        let f = features(&["size = card content"], "size + 1 = card (content Un {x})");
        let model = CostModel::new();
        model.absorb(vec![(
            ProverId::Mona,
            f.bucket(),
            CostStat {
                attempts: 50,
                wins: 0,
                ema_cost_ns: 100.0,
            },
        )]);
        let order = route_with_model(&f, &ProverId::default_order(), &model);
        assert!(
            position(&order, ProverId::Mona) > position(&order, ProverId::Interactive),
            "{order:?}"
        );
        // But demonstrated wins do earn promotion out of the static tail.
        let winning = CostModel::new();
        winning.absorb(vec![(
            ProverId::Mona,
            f.bucket(),
            CostStat {
                attempts: 50,
                wins: 45,
                ema_cost_ns: 100.0,
            },
        )]);
        let order = route_with_model(&f, &ProverId::default_order(), &winning);
        assert!(
            position(&order, ProverId::Mona) < position(&order, ProverId::Interactive),
            "{order:?}"
        );
    }

    #[test]
    fn routing_respects_a_custom_global_order() {
        // Pure arithmetic scores both MONA and BAPA hopeless; the fallback tail keeps
        // the caller's global order.
        let f = features(&["0 <= x"], "0 <= x + 1");
        let order = route(&f, &[ProverId::Mona, ProverId::Bapa]);
        assert_eq!(order, vec![ProverId::Mona, ProverId::Bapa]);
    }
}
