//! The persistent, content-addressed proof store: warm starts across processes,
//! runs, and machines.
//!
//! The in-memory [`SequentCache`](crate::SequentCache) dies with the process, so a
//! suite re-run re-proves every sequent from a cold start. This module serializes the
//! cache — the `SequentKey → CachedOutcome` verdict map *and* the negative
//! failure-memo masks — to one versioned file inside a user-chosen directory
//! ([`store_path`]), loaded at [`Dispatcher`](crate::Dispatcher) construction and
//! merge-written on flush (or drop, per
//! [`CacheMode::Persistent`](crate::CacheMode::Persistent)).
//!
//! **Content addressing.** Every verdict record carries the cache's full key: the
//! alpha-normalized canonical sequent (its
//! printed form *is* the content address — `SequentKey` hashes are recomputed
//! deterministically on load), the hinted-variant key, the variable classification,
//! the lemma-registration bit, **and the dispatcher's `config_fingerprint`** (prover
//! order, hint usage, routing). A store written under one configuration is therefore
//! never *replayed* under another: entries with a foreign fingerprint are loaded but
//! can never be looked up, and a later merge-write carries them along untouched, so
//! one store file can serve many configurations side by side.
//!
//! **Versioning and robustness.** The file starts with a
//! `jahob-proof-store v<N>` header ([`STORE_VERSION`]) and ends with an `## end`
//! trailer carrying the record counts, so truncation is detected even at a line
//! boundary. A missing file is a silent cold start; a corrupt, truncated or
//! future-versioned file is a **warned** cold start (one stderr line naming the path
//! and the reason) — never a crash, and never a partial load: a store either parses
//! completely or contributes nothing.
//!
//! **Merge semantics.** A flush re-reads the file, overlays the live snapshot on top
//! (live verdicts win on key collision — they are at least as fresh; failure masks are
//! OR-ed), and writes the union to a temporary file in the same directory, atomically
//! renamed over the store. Concurrent writers can therefore never produce a torn
//! file: readers see either the old store or the new one, whole. Two processes
//! flushing simultaneously may each miss the other's *newest* entries (last rename
//! wins), but since each merge starts from the current file, nothing already on disk
//! is ever lost, and a later flush from either process re-contributes the remainder.

use crate::cache::{CacheKey, CachedOutcome, FailureKey, SequentKey};
use crate::faults::{FaultPlane, IoOp, IoTarget};
use crate::ProverId;
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The store format version this build reads and writes. Bumped whenever the record
/// layout, the canonical-form definition, or the fingerprint contents change
/// incompatibly; files with any other version load as empty (with a warning).
/// v2 added the per-prover budget-abort counts and the rescued bit to verdict
/// records (the fuel-budget PR).
pub const STORE_VERSION: u32 = 2;

/// Magic prefix of the header line, shared by every format version.
const MAGIC: &str = "jahob-proof-store";

/// The store file inside a [`CacheMode::Persistent`](crate::CacheMode::Persistent)
/// directory. One fixed name per directory: the version lives in the file header (and
/// a mismatched version cold-starts), so upgrades never leave stale files behind.
pub fn store_path(dir: &Path) -> PathBuf {
    dir.join("proof-store.jahob")
}

/// An in-flight snapshot of the cache's persistent contents: the verdict map entries
/// and the failure-memo masks, as flat lists.
#[derive(Debug, Default)]
pub(crate) struct StoreData {
    pub(crate) verdicts: Vec<(CacheKey, CachedOutcome)>,
    pub(crate) failures: Vec<(FailureKey, u8)>,
}

/// Why a store file could not be loaded. Rendered into the one-line cold-start
/// warning; never propagated as a failure.
#[derive(Debug)]
pub(crate) enum StoreError {
    /// The file could not be read at all (permissions, I/O).
    Io(std::io::Error),
    /// The header names a format version this build does not know (a future build
    /// wrote it, or the file is from an incompatible lineage).
    Version(String),
    /// The file is not a proof store, or a record is malformed or truncated.
    Format { line: usize, reason: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "unreadable: {e}"),
            StoreError::Version(v) => write!(
                f,
                "version mismatch: file has {v:?}, this build reads v{STORE_VERSION}"
            ),
            StoreError::Format { line, reason } => {
                write!(f, "corrupt at line {line}: {reason}")
            }
        }
    }
}

/// [`load_or_warn_with`] on the disabled fault plane (test convenience).
#[cfg(test)]
pub(crate) fn load_or_warn(path: &Path) -> StoreData {
    load_or_warn_with(path, FaultPlane::disabled())
}

/// Loads the store at `path` leniently: missing file → empty (silent); anything the
/// strict parser rejects → empty plus a single stderr warning naming the path and
/// the reason. This is the cold-start-never-crash contract of the dispatcher's
/// construction-time load. The torture harness injects read errors through the
/// fault plane here; they surface exactly like any other unreadable store — a
/// warned cold start, never a crash.
pub(crate) fn load_or_warn_with(path: &Path, faults: &FaultPlane) -> StoreData {
    match load_with(path, faults) {
        Ok(data) => data,
        Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => StoreData::default(),
        Err(e) => {
            eprintln!(
                "warning: ignoring proof store {} ({e}); starting cold",
                path.display()
            );
            StoreData::default()
        }
    }
}

/// [`load_with`] on the disabled fault plane (test convenience).
#[cfg(test)]
pub(crate) fn load(path: &Path) -> Result<StoreData, StoreError> {
    load_with(path, FaultPlane::disabled())
}

/// Strictly parses the store at `path`. All-or-nothing: any malformed record makes
/// the whole file unusable (partial loads could replay a half-written verdict set as
/// if it were complete).
fn load_with(path: &Path, faults: &FaultPlane) -> Result<StoreData, StoreError> {
    faults
        .io_op(IoTarget::Store, IoOp::Read)
        .map_err(StoreError::Io)?;
    let text = std::fs::read_to_string(path).map_err(StoreError::Io)?;
    parse(&text)
}

fn parse(text: &str) -> Result<StoreData, StoreError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(StoreError::Format {
        line: 1,
        reason: "empty file".into(),
    })?;
    match header.strip_prefix(MAGIC).map(str::trim) {
        Some(version) if version == format!("v{STORE_VERSION}") => {}
        Some(version) => return Err(StoreError::Version(version.to_string())),
        None => {
            return Err(StoreError::Format {
                line: 1,
                reason: format!("not a proof store (header {:?})", truncate(header)),
            })
        }
    }
    let mut data = StoreData::default();
    let mut trailer = None;
    for (index, line) in lines {
        let lineno = index + 1;
        if trailer.is_some() {
            return Err(StoreError::Format {
                line: lineno,
                reason: "content after the end trailer".into(),
            });
        }
        let err = |reason: &str| StoreError::Format {
            line: lineno,
            reason: reason.to_string(),
        };
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "V" => {
                if fields.len() != 12 {
                    return Err(err("verdict record needs 12 fields"));
                }
                let key = CacheKey {
                    config_fingerprint: unescape(fields[1]).ok_or_else(|| err("fingerprint"))?,
                    sequent: SequentKey::from_repr(
                        unescape(fields[2]).ok_or_else(|| err("sequent"))?,
                    ),
                    hinted: match fields[3] {
                        "-" => None,
                        tagged => Some(SequentKey::from_repr(
                            tagged
                                .strip_prefix('=')
                                .and_then(unescape)
                                .ok_or_else(|| err("hinted sequent"))?,
                        )),
                    },
                    var_classes: unescape(fields[4]).ok_or_else(|| err("var classes"))?,
                    lemma_registered: parse_bool(fields[5]).ok_or_else(|| err("lemma bit"))?,
                };
                let outcome = CachedOutcome {
                    proved: parse_bool(fields[6]).ok_or_else(|| err("proved bit"))?,
                    prover: match fields[7] {
                        "-" => None,
                        tag => Some(parse_prover(tag).ok_or_else(|| err("prover tag"))?),
                    },
                    attempted: parse_counts(fields[8]).ok_or_else(|| err("attempted counts"))?,
                    skipped: parse_counts(fields[9]).ok_or_else(|| err("skipped counts"))?,
                    budget_aborts: parse_counts(fields[10])
                        .ok_or_else(|| err("budget-abort counts"))?,
                    rescued: parse_bool(fields[11]).ok_or_else(|| err("rescued bit"))?,
                    from_disk: false, // stamped by `SequentCache::absorb`
                };
                data.verdicts.push((key, outcome));
            }
            "F" => {
                if fields.len() != 4 {
                    return Err(err("failure record needs 4 fields"));
                }
                let key = FailureKey {
                    sequent: SequentKey::from_repr(
                        unescape(fields[1]).ok_or_else(|| err("sequent"))?,
                    ),
                    var_classes: unescape(fields[2]).ok_or_else(|| err("var classes"))?,
                };
                let mask = fields[3].parse::<u8>().map_err(|_| err("failure mask"))?;
                data.failures.push((key, mask));
            }
            "## end" => {
                if fields.len() != 3 {
                    return Err(err("end trailer needs 2 counts"));
                }
                let verdicts = fields[1].parse::<usize>().map_err(|_| err("count"))?;
                let failures = fields[2].parse::<usize>().map_err(|_| err("count"))?;
                if verdicts != data.verdicts.len() || failures != data.failures.len() {
                    return Err(err("record counts disagree with the trailer (truncated?)"));
                }
                trailer = Some(());
            }
            _ => return Err(err("unknown record type")),
        }
    }
    if trailer.is_none() {
        return Err(StoreError::Format {
            line: text.lines().count(),
            reason: "missing end trailer (truncated?)".into(),
        });
    }
    Ok(data)
}

/// [`merge_write_with`] on the disabled fault plane (test convenience).
#[cfg(test)]
pub(crate) fn merge_write(path: &Path, live: StoreData) -> std::io::Result<usize> {
    merge_write_with(path, live, FaultPlane::disabled())
}

/// Merge-writes `live` into the store at `path`: existing parseable contents are
/// read back and the live snapshot overlaid (live verdicts win, failure masks OR),
/// then the union is written to a temp file in the same directory and atomically
/// renamed over the store. Returns the number of verdict records written.
///
/// The fault plane's injection points, in write order: the
/// re-read of the existing store, the tmp-file creation (`io` faults), and the
/// instant between tmp-file write and atomic rename (`torn` faults — the tmp file
/// is left behind and the previous store stays in place, exactly the state a crash
/// there would leave).
///
/// Error discipline of the re-read: a *missing* store is the normal first flush, a
/// *corrupt* store is warned and overwritten (it contributed nothing to loads
/// either), but a store that exists and cannot be **read** fails the whole flush —
/// overwriting on a transient I/O error would discard every entry the file still
/// holds, and the dispatcher's bounded retry exists precisely to absorb such
/// transients.
pub(crate) fn merge_write_with(
    path: &Path,
    live: StoreData,
    faults: &FaultPlane,
) -> std::io::Result<usize> {
    let mut verdicts: HashMap<CacheKey, CachedOutcome> = HashMap::new();
    let mut failures: HashMap<FailureKey, u8> = HashMap::new();
    let existing = match load_with(path, faults) {
        Ok(data) => data,
        Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => StoreData::default(),
        Err(StoreError::Io(e)) => return Err(e),
        Err(e) => {
            eprintln!(
                "warning: ignoring proof store {} ({e}); starting cold",
                path.display()
            );
            StoreData::default()
        }
    };
    for (key, outcome) in existing.verdicts.into_iter().chain(live.verdicts) {
        verdicts.insert(key, outcome);
    }
    for (key, mask) in existing.failures.into_iter().chain(live.failures) {
        *failures.entry(key).or_insert(0) |= mask;
    }

    let mut out = String::new();
    out.push_str(&format!("{MAGIC} v{STORE_VERSION}\n"));
    // Deterministic record order: identical cache contents always serialize to the
    // identical file, so stores can be diffed (and committed) meaningfully.
    let mut verdicts: Vec<_> = verdicts.into_iter().collect();
    verdicts.sort_by(|(a, _), (b, _)| {
        (a.sequent.repr(), &a.config_fingerprint, &a.var_classes).cmp(&(
            b.sequent.repr(),
            &b.config_fingerprint,
            &b.var_classes,
        ))
    });
    let mut failures: Vec<_> = failures.into_iter().collect();
    failures.sort_by(|(a, _), (b, _)| {
        (a.sequent.repr(), &a.var_classes).cmp(&(b.sequent.repr(), &b.var_classes))
    });
    let written = verdicts.len();
    for (key, outcome) in &verdicts {
        out.push_str(&format!(
            "V\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            escape(&key.config_fingerprint),
            escape(key.sequent.repr()),
            match &key.hinted {
                None => "-".to_string(),
                Some(h) => format!("={}", escape(h.repr())),
            },
            escape(&key.var_classes),
            key.lemma_registered as u8,
            outcome.proved as u8,
            outcome.prover.map_or("-", prover_tag),
            render_counts(&outcome.attempted),
            render_counts(&outcome.skipped),
            render_counts(&outcome.budget_aborts),
            outcome.rescued as u8,
        ));
    }
    for (key, mask) in &failures {
        out.push_str(&format!(
            "F\t{}\t{}\t{mask}\n",
            escape(key.sequent.repr()),
            escape(&key.var_classes),
        ));
    }
    out.push_str(&format!("## end\t{}\t{}\n", written, failures.len()));

    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    // Unique temp name per process *and* per write, so two flushing processes never
    // scribble into each other's temp file; the rename is the only visible step.
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    faults.io_op(IoTarget::Store, IoOp::Write)?;
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(out.as_bytes())?;
    file.sync_all()?;
    drop(file);
    // The `torn` kill point: a crash here has written the whole tmp file but never
    // made it visible. The injected form returns the error *without* cleaning up,
    // so the torture harness observes exactly that state (tmp debris, old store
    // intact and still parseable).
    faults.io_op(IoTarget::Store, IoOp::Rename)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(written),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The stable serialization tag of a prover (display names are presentation, not
/// format). Shared with the cost-model file format (`costmodel`).
pub(crate) fn prover_tag(prover: ProverId) -> &'static str {
    match prover {
        ProverId::Syntactic => "syntactic",
        ProverId::Mona => "mona",
        ProverId::Smt => "smt",
        ProverId::Fol => "fol",
        ProverId::Bapa => "bapa",
        ProverId::Interactive => "interactive",
    }
}

pub(crate) fn parse_prover(tag: &str) -> Option<ProverId> {
    Some(match tag {
        "syntactic" => ProverId::Syntactic,
        "mona" => ProverId::Mona,
        "smt" => ProverId::Smt,
        "fol" => ProverId::Fol,
        "bapa" => ProverId::Bapa,
        "interactive" => ProverId::Interactive,
        _ => return None,
    })
}

fn render_counts(counts: &[(ProverId, usize)]) -> String {
    counts
        .iter()
        .map(|(prover, n)| format!("{}:{n}", prover_tag(*prover)))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_counts(field: &str) -> Option<Vec<(ProverId, usize)>> {
    if field.is_empty() {
        return Some(Vec::new());
    }
    field
        .split(',')
        .map(|part| {
            let (tag, n) = part.split_once(':')?;
            Some((parse_prover(tag)?, n.parse().ok()?))
        })
        .collect()
}

fn parse_bool(field: &str) -> Option<bool> {
    match field {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// Escapes a string field: backslash escapes for the record separator (tab), line
/// separators and backslash itself, so canonical sequent texts survive the
/// line-oriented format byte-exactly.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a dangling or unknown escape (corrupt record).
fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn truncate(s: &str) -> String {
    s.chars().take(40).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreData {
        let key = |fp: &str, sequent: &str| CacheKey {
            sequent: SequentKey::from_repr(sequent.to_string()),
            hinted: Some(SequentKey::from_repr("p |- q".to_string())),
            var_classes: "S:content;".to_string(),
            lemma_registered: false,
            config_fingerprint: fp.to_string(),
        };
        StoreData {
            verdicts: vec![
                (
                    key("order=A|hints=true|route=true", "a |- b"),
                    CachedOutcome {
                        proved: true,
                        prover: Some(ProverId::Bapa),
                        attempted: vec![(ProverId::Syntactic, 1), (ProverId::Bapa, 1)],
                        skipped: vec![(ProverId::Mona, 1)],
                        budget_aborts: vec![(ProverId::Fol, 1)],
                        rescued: false,
                        from_disk: false,
                    },
                ),
                (
                    key("order=A|hints=true|route=false", "odd\\chars\there |- g"),
                    CachedOutcome {
                        proved: false,
                        prover: None,
                        attempted: Vec::new(),
                        skipped: Vec::new(),
                        budget_aborts: Vec::new(),
                        rescued: true,
                        from_disk: false,
                    },
                ),
            ],
            failures: vec![(
                FailureKey {
                    sequent: SequentKey::from_repr("a |- b".to_string()),
                    var_classes: String::new(),
                },
                0b101,
            )],
        }
    }

    fn temp_store(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("jahob-store-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store_path(&dir)
    }

    #[test]
    fn round_trips_through_the_file_format() {
        let path = temp_store("roundtrip");
        merge_write(&path, sample()).expect("write");
        let loaded = load(&path).expect("load");
        let original = sample();
        assert_eq!(loaded.verdicts.len(), original.verdicts.len());
        assert_eq!(loaded.failures.len(), original.failures.len());
        for (key, outcome) in &original.verdicts {
            let (_, reloaded) = loaded
                .verdicts
                .iter()
                .find(|(k, _)| k == key)
                .expect("key survives byte-exactly, escapes included");
            assert_eq!(reloaded, outcome);
        }
        assert_eq!(loaded.failures[0].1, 0b101);
    }

    #[test]
    fn merge_write_unions_and_live_entries_win() {
        let path = temp_store("merge");
        merge_write(&path, sample()).expect("first write");
        // A second snapshot: one colliding verdict flipped, one new failure bit.
        let mut second = StoreData::default();
        let collide = sample().verdicts.remove(0);
        second.verdicts.push((
            collide.0.clone(),
            CachedOutcome {
                prover: Some(ProverId::Smt),
                ..collide.1
            },
        ));
        second.failures.push((
            FailureKey {
                sequent: SequentKey::from_repr("a |- b".to_string()),
                var_classes: String::new(),
            },
            0b010,
        ));
        merge_write(&path, second).expect("merge write");
        let merged = load(&path).expect("load");
        assert_eq!(
            merged.verdicts.len(),
            2,
            "union keeps the other fingerprint"
        );
        let (_, winner) = merged
            .verdicts
            .iter()
            .find(|(k, _)| k == &collide.0)
            .expect("collided key present");
        assert_eq!(winner.prover, Some(ProverId::Smt), "live entry wins");
        assert_eq!(merged.failures[0].1, 0b111, "failure masks OR together");
    }

    #[test]
    fn deterministic_serialization() {
        let a = temp_store("det-a");
        let b = temp_store("det-b");
        merge_write(&a, sample()).expect("write a");
        merge_write(&b, sample()).expect("write b");
        assert_eq!(
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&b).unwrap(),
            "identical contents serialize identically"
        );
    }

    #[test]
    fn missing_file_loads_empty_and_silent() {
        let path = temp_store("missing");
        let data = load_or_warn(&path);
        assert!(data.verdicts.is_empty() && data.failures.is_empty());
    }

    #[test]
    fn truncated_file_is_rejected_naming_the_reason() {
        let path = temp_store("truncated");
        merge_write(&path, sample()).expect("write");
        let full = std::fs::read_to_string(&path).unwrap();
        // Cut mid-way: drop the trailer and half a record.
        let cut = &full[..full.len() - full.lines().last().unwrap().len() - 10];
        std::fs::write(&path, cut).unwrap();
        let err = load(&path).expect_err("truncated store must not parse");
        let text = err.to_string();
        assert!(
            text.contains("truncated") || text.contains("corrupt"),
            "{text}"
        );
        assert!(
            load_or_warn(&path).verdicts.is_empty(),
            "lenient load is empty"
        );
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = temp_store("garbage");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).unwrap();
        }
        std::fs::write(&path, "not a store\nat all\n").unwrap();
        let err = load(&path).expect_err("garbage must not parse");
        assert!(err.to_string().contains("not a proof store"), "{err}");
    }

    #[test]
    fn future_version_is_rejected_naming_both_versions() {
        let path = temp_store("future");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).unwrap();
        }
        std::fs::write(&path, format!("{MAGIC} v999\nV\twhatever\n")).unwrap();
        let err = load(&path).expect_err("future version must not parse");
        let text = err.to_string();
        assert!(text.contains("v999"), "{text}");
        assert!(text.contains(&format!("v{STORE_VERSION}")), "{text}");
        // And a corrupt-on-write store is overwritten, not merged with.
        merge_write(&path, sample()).expect("flush over a future-version file");
        assert_eq!(load(&path).expect("recovered").verdicts.len(), 2);
    }

    #[test]
    fn trailer_count_mismatch_is_rejected() {
        let path = temp_store("trailer");
        merge_write(&path, sample()).expect("write");
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Drop one record line but keep the trailer: counts now disagree.
        let victim = text
            .lines()
            .find(|l| l.starts_with('F'))
            .unwrap()
            .to_string();
        text = text.replace(&format!("{victim}\n"), "");
        std::fs::write(&path, text).unwrap();
        let err = load(&path).expect_err("count mismatch must not parse");
        assert!(err.to_string().contains("trailer"), "{err}");
    }

    #[test]
    fn escape_round_trips_control_characters() {
        for s in ["", "plain", "a\tb", "a\nb\r\\c", "\\t", "trailing\\"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s), "{s:?}");
        }
        assert_eq!(unescape("dangling\\"), None);
        assert_eq!(unescape("bad\\q"), None);
    }
}
