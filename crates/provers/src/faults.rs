//! Deterministic fault injection for the dispatcher's torture harness.
//!
//! The fault plane lets tests (and the CI `fault-torture` job) inject failures into
//! well-defined points of the proving and persistence paths without touching any
//! production logic: prover attempts can be made to panic or stall, and the proof
//! store / cost model I/O can be made to fail or to "crash" between writing its
//! private tmp file and the atomic rename. The dispatcher's containment layer
//! (`catch_unwind`, deadlines, bounded store retries) is then exercised against
//! every one of those failures while the differential harness pins that a run with
//! faults disabled is byte-identical to one without a fault plane at all.
//!
//! Faults are configured by a parsed spec ([`FaultSpec`], usually from the
//! `JAHOB_FAULTS` environment knob):
//!
//! ```text
//! smt:panic@3;mona:delay=50ms;store:io@2;store:torn@5
//! ```
//!
//! Each `;`-separated entry is `site:action`.
//!
//! * **Sites** are the six provers (`syntactic`, `smt`, `mona`, `fol`, `bapa`,
//!   `interactive` — the tags of the on-disk store format) plus `store` (the proof
//!   store) and `costmodel` (the cost-model profile).
//! * **Prover actions**: `panic@N` panics on every Nth attempt of that prover;
//!   `delay=Xms` sleeps X milliseconds before every attempt (`delay=Xms@N` before
//!   every Nth).
//! * **I/O actions** (`store`/`costmodel` only): `io@N` fails every Nth read/write
//!   operation with an injected I/O error; `torn@N` kills every Nth merge-write at
//!   the point *between* the tmp-file write and the atomic rename — the tmp file is
//!   left behind and the store is never renamed over, exactly as if the process had
//!   died there.
//!
//! Every entry keeps its own operation counter, so injection is a deterministic
//! function of the number of operations that reached its site — no randomness, no
//! clocks. Under parallel dispatch the *set* of fired operation indices is still
//! exact; which obligation draws a fired index depends on scheduling, which is
//! precisely the nondeterminism the torture tests want to explore while assertions
//! stay on scheduling-independent facts (the process survived, verdicts of
//! unaffected provers, counters being nonzero).
//!
//! An empty spec arms nothing and the plane is a no-op (a handful of branches on an
//! empty list); the faults-off differential matrix pins that.

use crate::ProverId;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultSite {
    /// One prover's attempts in the cascade.
    Prover(ProverId),
    /// Proof-store I/O (`store.rs` load/flush).
    Store,
    /// Cost-model I/O (`costmodel.rs` load/flush).
    CostModel,
}

impl FaultSite {
    fn parse(tag: &str) -> Option<FaultSite> {
        Some(match tag {
            "syntactic" => FaultSite::Prover(ProverId::Syntactic),
            "mona" => FaultSite::Prover(ProverId::Mona),
            "smt" => FaultSite::Prover(ProverId::Smt),
            "fol" => FaultSite::Prover(ProverId::Fol),
            "bapa" => FaultSite::Prover(ProverId::Bapa),
            "interactive" => FaultSite::Prover(ProverId::Interactive),
            "store" => FaultSite::Store,
            "costmodel" => FaultSite::CostModel,
            _ => return None,
        })
    }

    fn tag(&self) -> &'static str {
        match self {
            FaultSite::Prover(ProverId::Syntactic) => "syntactic",
            FaultSite::Prover(ProverId::Mona) => "mona",
            FaultSite::Prover(ProverId::Smt) => "smt",
            FaultSite::Prover(ProverId::Fol) => "fol",
            FaultSite::Prover(ProverId::Bapa) => "bapa",
            FaultSite::Prover(ProverId::Interactive) => "interactive",
            FaultSite::Store => "store",
            FaultSite::CostModel => "costmodel",
        }
    }
}

/// What a fault does when its kill point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    /// Panic inside the prover attempt (contained by the cascade's `catch_unwind`).
    Panic,
    /// Sleep this long before the prover attempt (exercises the deadline path).
    Delay(Duration),
    /// Fail the read/write operation with an injected `std::io::Error`.
    Io,
    /// Kill the merge-write between tmp-file write and atomic rename: the tmp file
    /// stays on disk, the store file is not replaced, and an error is returned —
    /// the observable state of a process that died at that instant.
    Torn,
}

/// One parsed `site:action` entry of a fault spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FaultEntry {
    site: FaultSite,
    action: FaultAction,
    /// Fire on every operation whose 1-based per-entry index is a multiple of this.
    nth: u64,
}

impl fmt::Display for FaultEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let site = self.site.tag();
        match self.action {
            FaultAction::Panic => write!(f, "{site}:panic@{}", self.nth),
            FaultAction::Delay(d) => {
                write!(f, "{site}:delay={}ms", d.as_millis())?;
                if self.nth != 1 {
                    write!(f, "@{}", self.nth)?;
                }
                Ok(())
            }
            FaultAction::Io => write!(f, "{site}:io@{}", self.nth),
            FaultAction::Torn => write!(f, "{site}:torn@{}", self.nth),
        }
    }
}

/// A parsed fault-injection spec: zero or more deterministic kill points. The empty
/// spec (the default) injects nothing.
///
/// Parsed from strings like `smt:panic@3;mona:delay=50ms;store:io@2` — see the
/// [module docs](self) for the grammar. Carried by
/// [`DispatcherConfig::faults`](crate::DispatcherConfig::faults) and armed once per
/// dispatcher (clones share the armed plane, so operation counting spans a whole
/// dispatch tree deterministically).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSpec {
    entries: Vec<FaultEntry>,
}

impl FaultSpec {
    /// Parses a fault spec. The empty (or all-whitespace) string is the empty spec.
    /// On error, returns a human-readable description of the offending entry.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut entries = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            entries.push(parse_entry(part)?);
        }
        Ok(FaultSpec { entries })
    }

    /// `true` when the spec injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultSpec::parse(s)
    }
}

fn parse_entry(part: &str) -> Result<FaultEntry, String> {
    let (site_tag, action_text) = part
        .split_once(':')
        .ok_or_else(|| format!("fault entry {part:?} is missing the `site:action` colon"))?;
    let site = FaultSite::parse(site_tag.trim()).ok_or_else(|| {
        format!(
            "unknown fault site {:?} (expected a prover tag, `store` or `costmodel`)",
            site_tag.trim()
        )
    })?;
    let action_text = action_text.trim();
    let (action, nth) = if let Some(rest) = action_text.strip_prefix("panic@") {
        (FaultAction::Panic, parse_nth(part, rest)?)
    } else if let Some(rest) = action_text.strip_prefix("delay=") {
        let (ms_text, nth) = match rest.split_once('@') {
            Some((ms, n)) => (ms, parse_nth(part, n)?),
            None => (rest, 1),
        };
        let ms_text = ms_text
            .strip_suffix("ms")
            .ok_or_else(|| format!("fault entry {part:?}: delays are written `delay=<N>ms`"))?;
        let ms: u64 = ms_text
            .trim()
            .parse()
            .map_err(|_| format!("fault entry {part:?}: bad delay {ms_text:?}"))?;
        (FaultAction::Delay(Duration::from_millis(ms)), nth)
    } else if let Some(rest) = action_text.strip_prefix("io@") {
        (FaultAction::Io, parse_nth(part, rest)?)
    } else if let Some(rest) = action_text.strip_prefix("torn@") {
        (FaultAction::Torn, parse_nth(part, rest)?)
    } else {
        return Err(format!(
            "fault entry {part:?}: unknown action {action_text:?} \
             (expected panic@N, delay=Nms[@N], io@N or torn@N)"
        ));
    };
    let io_action = matches!(action, FaultAction::Io | FaultAction::Torn);
    let io_site = matches!(site, FaultSite::Store | FaultSite::CostModel);
    if io_action != io_site {
        return Err(format!(
            "fault entry {part:?}: io/torn apply to store/costmodel sites and \
             panic/delay to prover sites"
        ));
    }
    Ok(FaultEntry { site, action, nth })
}

fn parse_nth(part: &str, text: &str) -> Result<u64, String> {
    match text.trim().parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "fault entry {part:?}: expected a positive operation count after `@`"
        )),
    }
}

/// Which persistence file an I/O operation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IoTarget {
    /// The proof store (`proof-store.jahob`).
    Store,
    /// The cost-model profile (`cost-model.jahob`).
    CostModel,
}

/// The class of I/O operation reaching a kill point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IoOp {
    /// Reading the file (load, or the re-read inside a merge-write).
    Read,
    /// Creating/writing/syncing the private tmp file.
    Write,
    /// The atomic rename of the tmp file over the store — the `torn` kill point
    /// sits immediately before it.
    Rename,
}

/// One armed fault entry: the parsed entry plus its private operation counter.
#[derive(Debug)]
struct ArmedFault {
    entry: FaultEntry,
    count: AtomicU64,
}

impl ArmedFault {
    /// Counts one operation at this entry's site and reports whether it fires.
    fn fires(&self) -> bool {
        let n = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        n.is_multiple_of(self.entry.nth)
    }
}

/// The armed fault plane of one dispatcher (shared by its clones). With an empty
/// spec every hook is a no-op.
#[derive(Debug, Default)]
pub(crate) struct FaultPlane {
    arms: Vec<ArmedFault>,
}

#[cfg(test)]
static DISABLED: FaultPlane = FaultPlane { arms: Vec::new() };

impl FaultPlane {
    /// Arms a spec: every entry gets a fresh operation counter.
    pub(crate) fn new(spec: &FaultSpec) -> FaultPlane {
        FaultPlane {
            arms: spec
                .entries
                .iter()
                .map(|entry| ArmedFault {
                    entry: *entry,
                    count: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// The shared no-fault plane (test convenience for store/cost-model tests that
    /// exercise the fault-free paths through the plain `merge_write`/`load_or_warn`
    /// wrappers).
    #[cfg(test)]
    pub(crate) fn disabled() -> &'static FaultPlane {
        &DISABLED
    }

    /// Prover-attempt hook, called inside the cascade's containment wrapper: armed
    /// delays sleep here, armed panics panic here (and are caught by the caller's
    /// `catch_unwind`, surfacing as `AttemptOutcome::Crashed`).
    pub(crate) fn prover_attempt(&self, prover: ProverId) {
        for arm in &self.arms {
            if arm.entry.site != FaultSite::Prover(prover) {
                continue;
            }
            match arm.entry.action {
                FaultAction::Delay(d) => {
                    if arm.fires() {
                        std::thread::sleep(d);
                    }
                }
                FaultAction::Panic => {
                    if arm.fires() {
                        quiet_injected_panic(&format!("injected fault: {}", arm.entry));
                    }
                }
                FaultAction::Io | FaultAction::Torn => {}
            }
        }
    }

    /// Store/cost-model I/O hook. Returns the injected error when an armed `io`
    /// fault fires on a read/write, or an armed `torn` fault fires on the
    /// pre-rename kill point; `Ok(())` lets the real operation proceed.
    pub(crate) fn io_op(&self, target: IoTarget, op: IoOp) -> std::io::Result<()> {
        for arm in &self.arms {
            let site_matches = match target {
                IoTarget::Store => arm.entry.site == FaultSite::Store,
                IoTarget::CostModel => arm.entry.site == FaultSite::CostModel,
            };
            if !site_matches {
                continue;
            }
            let applicable = match arm.entry.action {
                FaultAction::Io => matches!(op, IoOp::Read | IoOp::Write),
                FaultAction::Torn => matches!(op, IoOp::Rename),
                FaultAction::Panic | FaultAction::Delay(_) => false,
            };
            if applicable && arm.fires() {
                return Err(std::io::Error::other(format!(
                    "injected fault: {}",
                    arm.entry
                )));
            }
        }
        Ok(())
    }
}

thread_local! {
    /// Set just before an injected panic unwinds, cleared by the containment
    /// wrapper after the catch: the panic hook below suppresses the default
    /// "thread panicked" noise for exactly these panics, so a torture run's stderr
    /// stays readable while *genuine* prover panics (also contained) still print.
    static INJECTED_PANIC: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once per process) a panic-hook wrapper that stays silent for injected
/// panics and delegates to the previous hook for everything else.
pub(crate) fn install_quiet_panic_hook() {
    static INSTALLED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !INJECTED_PANIC.with(|flag| flag.get()) {
                previous(info);
            }
        }));
    });
}

/// Clears the injected-panic marker; the containment wrapper calls this after
/// every `catch_unwind` so the flag can never leak past one contained attempt.
pub(crate) fn clear_injected_panic_marker() {
    INJECTED_PANIC.with(|flag| flag.set(false));
}

/// Panics with the injected-fault message, marked so the quiet hook swallows the
/// default stderr report.
fn quiet_injected_panic(message: &str) -> ! {
    INJECTED_PANIC.with(|flag| flag.set(true));
    panic!("{}", message);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> FaultSpec {
        FaultSpec::parse(s).expect("spec parses")
    }

    #[test]
    fn empty_and_whitespace_specs_are_empty() {
        assert!(spec("").is_empty());
        assert!(spec("  ;;  ; ").is_empty());
        assert!(FaultSpec::default().is_empty());
    }

    #[test]
    fn the_issue_example_parses_and_round_trips() {
        let s = spec("smt:panic@3;mona:delay=50ms;store:io@2");
        assert!(!s.is_empty());
        assert_eq!(s.to_string(), "smt:panic@3;mona:delay=50ms;store:io@2");
        assert_eq!(spec(&s.to_string()), s);
    }

    #[test]
    fn delay_with_explicit_nth_round_trips() {
        let s = spec("fol:delay=7ms@4;store:torn@2;costmodel:io@3");
        assert_eq!(s.to_string(), "fol:delay=7ms@4;store:torn@2;costmodel:io@3");
    }

    #[test]
    fn bad_specs_are_rejected_with_the_offending_entry() {
        for (text, needle) in [
            ("smt", "missing the `site:action` colon"),
            ("z3:panic@1", "unknown fault site"),
            ("smt:explode@1", "unknown action"),
            ("smt:panic@0", "positive operation count"),
            ("smt:panic@x", "positive operation count"),
            ("mona:delay=5s", "delay=<N>ms"),
            ("mona:delay=xms", "bad delay"),
            ("smt:io@2", "io/torn apply to store/costmodel"),
            ("store:panic@2", "io/torn apply to store/costmodel"),
        ] {
            let err = FaultSpec::parse(text).expect_err(text);
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn nth_counters_fire_on_exact_multiples() {
        let plane = FaultPlane::new(&spec("store:io@3"));
        let fired: Vec<bool> = (0..9)
            .map(|_| plane.io_op(IoTarget::Store, IoOp::Write).is_err())
            .collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        // Reads share the io counter; renames (the torn kill point) do not trip io.
        assert!(plane.io_op(IoTarget::Store, IoOp::Rename).is_ok());
        assert!(plane.io_op(IoTarget::CostModel, IoOp::Write).is_ok());
    }

    #[test]
    fn torn_faults_only_hit_the_rename_kill_point() {
        let plane = FaultPlane::new(&spec("costmodel:torn@2"));
        assert!(plane.io_op(IoTarget::CostModel, IoOp::Write).is_ok());
        assert!(plane.io_op(IoTarget::CostModel, IoOp::Read).is_ok());
        assert!(plane.io_op(IoTarget::CostModel, IoOp::Rename).is_ok());
        let err = plane
            .io_op(IoTarget::CostModel, IoOp::Rename)
            .expect_err("second rename fires");
        assert!(err.to_string().contains("costmodel:torn@2"));
    }

    #[test]
    fn injected_prover_panics_are_catchable_and_attributed() {
        install_quiet_panic_hook();
        let plane = FaultPlane::new(&spec("bapa:panic@2"));
        plane.prover_attempt(ProverId::Bapa);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plane.prover_attempt(ProverId::Bapa)
        }));
        clear_injected_panic_marker();
        let payload = caught.expect_err("second attempt panics");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("injected fault: bapa:panic@2"),
            "{message}"
        );
        // Other provers are untouched.
        plane.prover_attempt(ProverId::Smt);
        plane.prover_attempt(ProverId::Smt);
    }

    #[test]
    fn the_disabled_plane_is_a_no_op() {
        let plane = FaultPlane::disabled();
        for _ in 0..4 {
            assert!(plane.io_op(IoTarget::Store, IoOp::Write).is_ok());
            assert!(plane.io_op(IoTarget::Store, IoOp::Rename).is_ok());
            plane.prover_attempt(ProverId::Mona);
        }
    }
}
