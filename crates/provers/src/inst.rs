//! The quantifier-instantiation pass behind `by inst x := "w"` hints (§3.5).
//!
//! Universally quantified assumptions are the classic automation cliff of linked-data-
//! structure proofs: the resolution prover must find the instantiation by unification
//! within its budget, the SMT interface only tries ground candidate terms already
//! occurring in the sequent, and BAPA/MONA approximate quantified assumptions away
//! entirely. When the needed witness is a *compound* term (`content Int bucket`,
//! `old content Un {x}`), none of them find it, and the spec has to be hand-weakened.
//!
//! An [`Hint::Inst`](jahob_vcgen::Hint) hint closes that gap: for every assumption of
//! the hinted sequent whose (comment-stripped) top level is `ALL ... x ... . body` with
//! `x` the hinted variable, [`apply_inst_hints`] appends the specialised assumption
//! `ALL rest. body[x := w]` — tagged `comment ''inst:x''` so its provenance stays
//! visible. Universal instantiation is sound unconditionally, and the original
//! assumption is kept, so the pass only ever *adds* logically implied assumptions.
//!
//! Because the dispatcher applies this pass **before** feature extraction, routing,
//! and cache keying, the instantiated sequent is what
//! [`SequentFeatures`](jahob_logic::SequentFeatures), the router,
//! [`SequentKey`](crate::SequentKey) and the failure memo all see:
//! two obligations differing only in their witness can never alias to one cache
//! entry, and a hint that turns a quantified sequent into a ground BAPA one also
//! re-routes it accordingly.
//!
//! The witness is typechecked before substitution: the specialised assumption must
//! infer consistently as a boolean (so `inst s := "3"` against a set-quantified
//! assumption adds nothing instead of producing an ill-typed formula no prover can
//! translate). Hints are advice — an unknown variable, or a witness that fits no
//! universal assumption, simply leaves the sequent unchanged, and the dispatcher's
//! full-sequent retry keeps completeness.

use jahob_logic::form::{Binder, Const, Form, Ident};
use jahob_logic::subst::{free_vars, fresh_name, substitute, substitute_one, Subst};
use jahob_logic::typecheck::{infer, TypeEnv};
use jahob_logic::types::Type;
use jahob_logic::Sequent;
use jahob_vcgen::Hint;

/// Prefix of the comment label tagging an assumption produced by instantiation
/// (`comment ''inst:x'' ...`) — the same tag the hint encoding uses, re-exported so
/// the two can never drift apart.
pub use jahob_vcgen::INST_HINT_PREFIX as INST_COMMENT_PREFIX;

/// Specialises the universally quantified assumptions of `sequent` according to the
/// [`Hint::Inst`] hints in `hints`. For every universal assumption, **all** hinted
/// variables bound by its binder are substituted simultaneously (so
/// `by inst s := "a", inst t := "b"` on `ALL s t. F` yields the fully ground
/// `F[s := a, t := b]`, not two partially instantiated universals), and one instance
/// is appended per matching assumption. Non-instantiation hints are ignored; a
/// sequent without matching universal assumptions is returned unchanged (hints are
/// advice, never a restriction).
///
/// Run this on the sequent returned by
/// [`ProofObligation::hinted_sequent_with_lemmas`](jahob_vcgen::ProofObligation::hinted_sequent_with_lemmas),
/// so lemma assumptions injected by `by lemma Name` are specialised too.
pub fn apply_inst_hints(sequent: &Sequent, hints: &[Hint]) -> Sequent {
    let insts: Vec<(&str, &Form)> = hints
        .iter()
        .filter_map(|h| match h {
            Hint::Inst { var, witness } => Some((var.as_str(), witness)),
            _ => None,
        })
        .collect();
    if insts.is_empty() {
        return sequent.clone();
    }
    let mut out = sequent.clone();
    for assumption in &sequent.assumptions {
        let mut universals = Vec::new();
        collect_universals(assumption, &mut universals);
        for universal in universals {
            let Form::Binder(Binder::Forall, vars, body) = universal else {
                continue;
            };
            if let Some(instance) = instantiate(vars, body, &insts) {
                out.assumptions.push(instance);
            } else {
                // The joint instance did not typecheck (one witness is ill-fitting):
                // fall back to the individually valid hints so one bad witness does
                // not discard the others.
                for inst in &insts {
                    if let Some(instance) = instantiate(vars, body, std::slice::from_ref(inst)) {
                        out.assumptions.push(instance);
                    }
                }
            }
        }
    }
    out
}

/// Builds the instance of one universal (`ALL vars. body`): every hinted variable
/// bound by the binder is substituted simultaneously, the remaining variables stay
/// quantified (renamed if a witness mentions their name, so re-binding them cannot
/// capture witness variables). Returns `None` when no hint applies or the
/// specialised assumption does not typecheck.
fn instantiate(vars: &[(Ident, Type)], body: &Form, insts: &[(&str, &Form)]) -> Option<Form> {
    let applicable: Vec<(&str, &Form)> = insts
        .iter()
        .filter(|(var, _)| vars.iter().any(|(v, _)| v == var))
        .copied()
        .collect();
    if applicable.is_empty() {
        return None;
    }
    let witness_fvs: std::collections::BTreeSet<Ident> =
        applicable.iter().flat_map(|(_, w)| free_vars(w)).collect();
    let mut body = body.clone();
    let mut rest: Vec<(Ident, Type)> = Vec::new();
    for (name, ty) in vars {
        if applicable.iter().any(|(var, _)| var == name) {
            continue;
        }
        if witness_fvs.contains(name) {
            // A remaining binder variable shares its name with a free variable of a
            // witness: rename it, or re-binding it below would capture the witness.
            let mut avoid = witness_fvs.clone();
            avoid.extend(free_vars(&body));
            let fresh = fresh_name(name, &avoid);
            body = substitute_one(&body, name, &Form::var(fresh.clone()));
            rest.push((fresh, ty.clone()));
        } else {
            rest.push((name.clone(), ty.clone()));
        }
    }
    let substitution: Subst = applicable
        .iter()
        .map(|(var, witness)| (var.to_string(), (*witness).clone()))
        .collect();
    let instance = Form::forall_many(rest, substitute(&body, &substitution));
    // The witnesses are "typechecked" in context: the specialised assumption must
    // still infer as a consistent boolean. (The binder's declared type alone is not
    // reliable — unannotated binders carry parser type variables — but an ill-fitting
    // witness always breaks inference of the substituted body.)
    if infer(&instance, &TypeEnv::standard()).is_err() {
        return None;
    }
    let vars_tag: Vec<&str> = applicable.iter().map(|(var, _)| *var).collect();
    Some(Form::comment(
        format!("{INST_COMMENT_PREFIX}{}", vars_tag.join(",")),
        instance,
    ))
}

/// Collects the universally quantified formulas sitting at assumption positions of
/// `form`: the form itself, or any conjunct reachable through comment labels and
/// conjunctions. A `requires` clause arrives as one labelled conjunction
/// (`comment ''pre'' (comment ''cap'' (ALL ...) & 0 <= used)`), so matching only the
/// comment-stripped top level would miss every universal written alongside another
/// conjunct. Each collected formula is an assumption-position conjunct, so
/// instantiating it is still plain universal instantiation.
fn collect_universals<'a>(form: &'a Form, out: &mut Vec<&'a Form>) {
    let (_, inner) = form.strip_comments();
    if matches!(inner, Form::Binder(Binder::Forall, _, _)) {
        out.push(inner);
    } else if let Some(conjuncts) = inner.as_app_of(&Const::And) {
        for conjunct in conjuncts {
            collect_universals(conjunct, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::parse_form;

    fn p(s: &str) -> Form {
        parse_form(s).expect("parse")
    }

    fn seq(assumptions: &[&str], goal: &str) -> Sequent {
        Sequent::new(assumptions.iter().map(|a| p(a)).collect(), p(goal))
    }

    #[test]
    fn instantiates_matching_universal_assumptions() {
        let s = seq(
            &[
                "comment ''capBound'' (ALL s. s subseteq content --> card s <= used)",
                "ground = True",
            ],
            "card (content Int m) <= used",
        );
        let hinted = apply_inst_hints(&s, &[Hint::inst("s", p("content Int m"))]);
        assert_eq!(hinted.assumptions.len(), 3);
        assert_eq!(
            hinted.assumptions[2],
            Form::comment(
                "inst:s",
                p("(content Int m) subseteq content --> card (content Int m) <= used")
            )
        );
        // The original universal assumption is kept — instantiation only adds.
        assert_eq!(hinted.assumptions[0], s.assumptions[0]);
    }

    #[test]
    fn instantiates_one_variable_of_a_multi_binder_and_keeps_the_rest() {
        let s = seq(&["ALL x y. x : a --> (x, y) : r"], "q");
        let hinted = apply_inst_hints(&s, &[Hint::inst("x", p("elem"))]);
        assert_eq!(hinted.assumptions.len(), 2);
        // Compare printed forms: parser type-variable ids differ between parses.
        assert_eq!(
            hinted.assumptions[1].to_string(),
            Form::comment("inst:x", p("ALL y. elem : a --> (elem, y) : r")).to_string()
        );
    }

    #[test]
    fn unknown_variables_and_non_universal_assumptions_are_ignored() {
        let s = seq(&["ALL x. x : a", "ground = True"], "q");
        let unknown = apply_inst_hints(&s, &[Hint::inst("zz", p("elem"))]);
        assert_eq!(unknown, s, "no universal binds `zz`: the hint is inert");
        let labels_only = apply_inst_hints(&s, &[Hint::label("ground")]);
        assert_eq!(labels_only, s, "non-inst hints never touch the sequent");
    }

    #[test]
    fn ill_typed_witnesses_are_rejected_not_substituted() {
        let s = seq(
            &["ALL s. s subseteq content --> card s <= used"],
            "card content <= used",
        );
        // An integer witness for a set-quantified variable would produce
        // `3 subseteq content`, which cannot be consistently typed.
        let hinted = apply_inst_hints(&s, &[Hint::inst("s", p("3"))]);
        assert_eq!(hinted, s, "ill-typed witness must not be substituted");
    }

    #[test]
    fn hints_for_several_variables_of_one_binder_substitute_jointly() {
        let s = seq(&["ALL x y. (x, y) : r --> x : a"], "q");
        let hinted = apply_inst_hints(&s, &[Hint::inst("x", p("u")), Hint::inst("y", p("v"))]);
        assert_eq!(hinted.assumptions.len(), 2);
        assert_eq!(
            hinted.assumptions[1],
            Form::comment("inst:x,y", p("(u, v) : r --> u : a")),
            "both witnesses must land in one fully ground instance"
        );
    }

    #[test]
    fn an_ill_typed_witness_does_not_discard_the_valid_ones() {
        let s = seq(&["ALL s n. card (content Int s) <= n"], "q");
        // `s := 3` is ill-fitting (int where a set is used); `n := used` is fine.
        // The joint instance fails to typecheck, but the valid hint still applies.
        let hinted = apply_inst_hints(&s, &[Hint::inst("s", p("3")), Hint::inst("n", p("used"))]);
        assert_eq!(hinted.assumptions.len(), 2);
        assert_eq!(
            hinted.assumptions[1].to_string(),
            Form::comment("inst:n", p("ALL s. card (content Int s) <= used")).to_string()
        );
    }

    #[test]
    fn every_matching_assumption_is_instantiated() {
        let s = seq(
            &["ALL x. x : a --> x : b", "ALL x. x : b --> x : c"],
            "elem : c",
        );
        let hinted = apply_inst_hints(&s, &[Hint::inst("x", p("elem"))]);
        assert_eq!(hinted.assumptions.len(), 4);
    }

    #[test]
    fn capture_is_avoided_when_the_witness_mentions_inner_binders() {
        // Witness `y` must not be captured by the inner `EX y`.
        let s = seq(&["ALL x. EX y. x ~= y"], "q");
        let hinted = apply_inst_hints(&s, &[Hint::inst("x", p("y"))]);
        assert_eq!(hinted.assumptions.len(), 2);
        let (_, inner) = hinted.assumptions[1].strip_comments();
        // The inner existential was renamed away from `y`.
        let Form::Binder(Binder::Exists, vars, _) = inner else {
            panic!("expected an existential, got {inner}");
        };
        assert_ne!(vars[0].0, "y");
    }
}
