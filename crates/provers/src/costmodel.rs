//! The measured cost model behind budget-aware routing: per `(prover, feature
//! bucket)` attempt statistics, an expected-cost estimator, and a persisted profile.
//!
//! The hand-tuned [`router`](crate::router) scores encode *predictions* about which
//! prover discharges which fragment cheaply; the dispatcher meanwhile *observes* the
//! truth on every attempt (who won, how long a failure burned). This module closes
//! that loop. Each timed attempt is recorded under the sequent's coarse
//! [`FeatureBucket`] as `{attempts, wins, ema_cost_ns}`; once a `(prover, bucket)`
//! cell has enough observations ([`MIN_OBSERVATIONS`]) its **expected cost to
//! discharge** — the EMA attempt cost divided by a Laplace-smoothed win rate —
//! replaces the seeded score-derived cost in the routing order.
//!
//! **Batch-frozen updates.** Observations are buffered in sharded pending queues and
//! folded into the committed table only when a batch completes
//! ([`CostModel::commit`], called at the end of every `prove_all`). Within one batch
//! the routed order is therefore frozen: a single-batch suite run routes every
//! sequent with the same (cold-seeded or warm-loaded) model, which keeps the
//! differential harness deterministic while long-lived dispatchers still adapt
//! between batches.
//!
//! **Persistence.** Under `CacheMode::Persistent` the model serialises as
//! `cost-model.jahob` next to the proof store, with the same contract: versioned
//! header, strict all-or-nothing parse, warned cold start on corruption, and
//! atomic-rename merge writes (live cells win — they subsume what was loaded).

use crate::faults::{FaultPlane, IoOp, IoTarget};
use crate::store::{parse_prover, prover_tag};
use crate::ProverId;
use jahob_logic::features::FeatureBucket;
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The cost-model file format version. Independent of the proof-store version: the
/// model is advisory (it can only permute the cascade), so its format can evolve
/// separately.
pub const COST_MODEL_VERSION: u32 = 1;

/// Magic prefix of the header line.
const MAGIC: &str = "jahob-cost-model";

/// Smoothing factor of the exponential moving average over attempt costs: small
/// enough to damp scheduling noise, large enough that a handful of observations
/// move a cold seed to the measured regime.
pub const EMA_ALPHA: f64 = 0.25;

/// A `(prover, bucket)` cell only overrides the seeded score-derived cost once it
/// has this many observations — below that, one noisy timing could reorder the
/// cascade on the strength of a single sample.
pub const MIN_OBSERVATIONS: u64 = 3;

/// Number of pending-queue shards. Observation is the per-attempt hot path under
/// parallel dispatch; sharding by key keeps workers off each other's locks.
const SHARDS: usize = 8;

/// The cost-model file inside a `CacheMode::Persistent` directory, next to the
/// proof store.
pub fn cost_model_path(dir: &Path) -> PathBuf {
    dir.join("cost-model.jahob")
}

/// Measured statistics of one `(prover, feature-bucket)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostStat {
    /// Attempts observed (wins, losses and fuel aborts alike).
    pub attempts: u64,
    /// Attempts that discharged the sequent.
    pub wins: u64,
    /// Exponential moving average of the attempt cost in nanoseconds.
    pub ema_cost_ns: f64,
}

impl CostStat {
    /// Folds one observed attempt into the cell.
    pub fn observe(&mut self, cost_ns: u64, won: bool) {
        self.attempts += 1;
        if won {
            self.wins += 1;
        }
        self.ema_cost_ns = ema_update(self.ema_cost_ns, cost_ns as f64, self.attempts);
    }

    /// Expected cost to *discharge* a sequent of this bucket with this prover: the
    /// EMA attempt cost divided by the Laplace-smoothed win rate
    /// `(wins + 0.5) / (attempts + 1)`. A prover that keeps losing in a bucket sees
    /// its expected cost grow with the evidence against it, sinking it down the
    /// cascade without ever removing it.
    pub fn expected_cost_ns(&self) -> f64 {
        let p_win = (self.wins as f64 + 0.5) / (self.attempts as f64 + 1.0);
        self.ema_cost_ns / p_win
    }

    /// Whether the cell has enough observations to override the seeded cost.
    pub fn calibrated(&self) -> bool {
        self.attempts >= MIN_OBSERVATIONS
    }
}

/// One EMA step: the first observation initialises the average, later ones blend in
/// with weight [`EMA_ALPHA`]. Exposed for the unit tests that pin the update math.
pub fn ema_update(prev_ns: f64, cost_ns: f64, attempts: u64) -> f64 {
    if attempts <= 1 {
        cost_ns
    } else {
        prev_ns + EMA_ALPHA * (cost_ns - prev_ns)
    }
}

type Key = (ProverId, FeatureBucket);

/// The dispatcher's measured cost model: a committed table the router reads, and
/// sharded pending buffers the cascade writes timed observations into. See the
/// module docs for the batch-frozen update discipline.
#[derive(Debug, Default)]
pub struct CostModel {
    committed: [Mutex<HashMap<Key, CostStat>>; SHARDS],
    pending: [Mutex<Vec<(Key, u64, bool)>>; SHARDS],
}

fn shard_of(key: &Key) -> usize {
    (key.0 as usize * 31 + key.1.bits() as usize) % SHARDS
}

impl CostModel {
    /// An empty (cold) model: every routing decision falls back to the seeded
    /// score-derived costs.
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// Buffers one timed attempt outcome. Cheap and contention-sharded: called on
    /// the cascade hot path for every prover attempt.
    pub fn observe(&self, prover: ProverId, bucket: FeatureBucket, cost_ns: u64, won: bool) {
        let key = (prover, bucket);
        self.pending[shard_of(&key)]
            .lock()
            .expect("cost-model shard poisoned")
            .push((key, cost_ns, won));
    }

    /// Folds every pending observation into the committed table. Called once per
    /// completed batch — never mid-batch, so the routed order is frozen while a
    /// batch is in flight.
    pub fn commit(&self) {
        for shard in 0..SHARDS {
            let drained: Vec<(Key, u64, bool)> = std::mem::take(
                &mut *self.pending[shard]
                    .lock()
                    .expect("cost-model shard poisoned"),
            );
            if drained.is_empty() {
                continue;
            }
            let mut committed = self.committed[shard]
                .lock()
                .expect("cost-model shard poisoned");
            for (key, cost_ns, won) in drained {
                committed.entry(key).or_default().observe(cost_ns, won);
            }
        }
    }

    /// The committed cell for `(prover, bucket)`, if any observation ever reached it.
    pub fn lookup(&self, prover: ProverId, bucket: FeatureBucket) -> Option<CostStat> {
        let key = (prover, bucket);
        self.committed[shard_of(&key)]
            .lock()
            .expect("cost-model shard poisoned")
            .get(&key)
            .copied()
    }

    /// The committed cell, only when calibrated ([`MIN_OBSERVATIONS`] reached) — the
    /// router's question.
    pub fn calibrated(&self, prover: ProverId, bucket: FeatureBucket) -> Option<CostStat> {
        self.lookup(prover, bucket).filter(CostStat::calibrated)
    }

    /// Number of committed cells.
    pub fn len(&self) -> usize {
        self.committed
            .iter()
            .map(|s| s.lock().expect("cost-model shard poisoned").len())
            .sum()
    }

    /// `true` when no observation has been committed (pending buffers don't count:
    /// they are invisible to routing until [`CostModel::commit`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the committed table, sorted for deterministic serialization.
    pub fn export(&self) -> Vec<(ProverId, FeatureBucket, CostStat)> {
        let mut cells: Vec<(ProverId, FeatureBucket, CostStat)> = Vec::new();
        for shard in &self.committed {
            for (&(prover, bucket), &stat) in
                shard.lock().expect("cost-model shard poisoned").iter()
            {
                cells.push((prover, bucket, stat));
            }
        }
        cells.sort_by_key(|(prover, bucket, _)| (*prover as u8, *bucket));
        cells
    }

    /// Installs loaded cells into the committed table (used at construction, before
    /// any in-process observation exists — in-process cells win on collision).
    pub fn absorb(&self, cells: Vec<(ProverId, FeatureBucket, CostStat)>) {
        for (prover, bucket, stat) in cells {
            let key = (prover, bucket);
            self.committed[shard_of(&key)]
                .lock()
                .expect("cost-model shard poisoned")
                .entry(key)
                .or_insert(stat);
        }
    }
}

/// Why a cost-model file could not be loaded; rendered into the cold-start warning.
#[derive(Debug)]
pub(crate) enum ModelError {
    /// Unreadable file (I/O, permissions).
    Io(std::io::Error),
    /// The header names an unknown format version.
    Version(String),
    /// Not a cost model, or a malformed/truncated record.
    Format { line: usize, reason: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "unreadable: {e}"),
            ModelError::Version(v) => write!(
                f,
                "version mismatch: file has {v:?}, this build reads v{COST_MODEL_VERSION}"
            ),
            ModelError::Format { line, reason } => write!(f, "corrupt at line {line}: {reason}"),
        }
    }
}

/// [`load_or_warn_with`] on the disabled fault plane (test convenience).
#[cfg(test)]
pub(crate) fn load_or_warn(path: &Path) -> Vec<(ProverId, FeatureBucket, CostStat)> {
    load_or_warn_with(path, FaultPlane::disabled())
}

/// Loads the model at `path` leniently: missing file → empty (silent); corrupt,
/// truncated or future-versioned → empty plus one stderr warning. The model is
/// advisory, so a cold start is always safe (injected read errors included).
pub(crate) fn load_or_warn_with(
    path: &Path,
    faults: &FaultPlane,
) -> Vec<(ProverId, FeatureBucket, CostStat)> {
    match load_with(path, faults) {
        Ok(cells) => cells,
        Err(ModelError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!(
                "warning: ignoring cost model {} ({e}); starting cold",
                path.display()
            );
            Vec::new()
        }
    }
}

/// [`load_with`] on the disabled fault plane (test convenience).
#[cfg(test)]
pub(crate) fn load(path: &Path) -> Result<Vec<(ProverId, FeatureBucket, CostStat)>, ModelError> {
    load_with(path, FaultPlane::disabled())
}

/// Strictly parses the model at `path`: all-or-nothing, like the proof store.
fn load_with(
    path: &Path,
    faults: &FaultPlane,
) -> Result<Vec<(ProverId, FeatureBucket, CostStat)>, ModelError> {
    faults
        .io_op(IoTarget::CostModel, IoOp::Read)
        .map_err(ModelError::Io)?;
    let text = std::fs::read_to_string(path).map_err(ModelError::Io)?;
    parse(&text)
}

fn parse(text: &str) -> Result<Vec<(ProverId, FeatureBucket, CostStat)>, ModelError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ModelError::Format {
        line: 1,
        reason: "empty file".into(),
    })?;
    match header.strip_prefix(MAGIC).map(str::trim) {
        Some(version) if version == format!("v{COST_MODEL_VERSION}") => {}
        Some(version) => return Err(ModelError::Version(version.to_string())),
        None => {
            return Err(ModelError::Format {
                line: 1,
                reason: format!(
                    "not a cost model (header {:?})",
                    header.chars().take(40).collect::<String>()
                ),
            })
        }
    }
    let mut cells = Vec::new();
    let mut trailer = None;
    for (index, line) in lines {
        let lineno = index + 1;
        if trailer.is_some() {
            return Err(ModelError::Format {
                line: lineno,
                reason: "content after the end trailer".into(),
            });
        }
        let err = |reason: &str| ModelError::Format {
            line: lineno,
            reason: reason.to_string(),
        };
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "C" => {
                if fields.len() != 6 {
                    return Err(err("cost record needs 6 fields"));
                }
                let prover = parse_prover(fields[1]).ok_or_else(|| err("prover tag"))?;
                let bucket = FeatureBucket::from_tag(fields[2]).ok_or_else(|| err("bucket tag"))?;
                let attempts = fields[3].parse::<u64>().map_err(|_| err("attempts"))?;
                let wins = fields[4].parse::<u64>().map_err(|_| err("wins"))?;
                let ema_cost_ns = fields[5].parse::<f64>().map_err(|_| err("ema cost"))?;
                if wins > attempts || !ema_cost_ns.is_finite() || ema_cost_ns < 0.0 {
                    return Err(err("implausible cost record"));
                }
                cells.push((
                    prover,
                    bucket,
                    CostStat {
                        attempts,
                        wins,
                        ema_cost_ns,
                    },
                ));
            }
            "## end" => {
                if fields.len() != 2 {
                    return Err(err("end trailer needs 1 count"));
                }
                let count = fields[1].parse::<usize>().map_err(|_| err("count"))?;
                if count != cells.len() {
                    return Err(err("record count disagrees with the trailer (truncated?)"));
                }
                trailer = Some(());
            }
            _ => return Err(err("unknown record type")),
        }
    }
    if trailer.is_none() {
        return Err(ModelError::Format {
            line: text.lines().count(),
            reason: "missing end trailer (truncated?)".into(),
        });
    }
    Ok(cells)
}

/// [`merge_write_with`] on the disabled fault plane (test convenience).
#[cfg(test)]
pub(crate) fn merge_write(
    path: &Path,
    live: Vec<(ProverId, FeatureBucket, CostStat)>,
) -> std::io::Result<usize> {
    merge_write_with(path, live, FaultPlane::disabled())
}

/// Merge-writes `live` cells into the model at `path`: existing parseable cells are
/// read back, live cells win on collision (they absorbed the disk state at load),
/// and the union is written via a unique temp file and an atomic rename — the same
/// torn-file-proof discipline as the proof store, with the same three fault kill
/// points as [`crate::store::merge_write_with`] (re-read, tmp-file write, and the
/// torn instant between write and rename), under the same error discipline: a
/// profile that exists but cannot be read fails the flush instead of being
/// overwritten, so the dispatcher's bounded retry can absorb the transient.
pub(crate) fn merge_write_with(
    path: &Path,
    live: Vec<(ProverId, FeatureBucket, CostStat)>,
    faults: &FaultPlane,
) -> std::io::Result<usize> {
    let mut cells: HashMap<Key, CostStat> = HashMap::new();
    let existing = match load_with(path, faults) {
        Ok(cells) => cells,
        Err(ModelError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(ModelError::Io(e)) => return Err(e),
        Err(e) => {
            eprintln!(
                "warning: ignoring cost model {} ({e}); starting cold",
                path.display()
            );
            Vec::new()
        }
    };
    for (prover, bucket, stat) in existing.into_iter().chain(live) {
        cells.insert((prover, bucket), stat);
    }
    let mut cells: Vec<(Key, CostStat)> = cells.into_iter().collect();
    cells.sort_by_key(|((prover, bucket), _)| (*prover as u8, *bucket));

    let mut out = String::new();
    out.push_str(&format!("{MAGIC} v{COST_MODEL_VERSION}\n"));
    for ((prover, bucket), stat) in &cells {
        out.push_str(&format!(
            "C\t{}\t{}\t{}\t{}\t{}\n",
            prover_tag(*prover),
            bucket.tag(),
            stat.attempts,
            stat.wins,
            stat.ema_cost_ns,
        ));
    }
    out.push_str(&format!("## end\t{}\n", cells.len()));

    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    faults.io_op(IoTarget::CostModel, IoOp::Write)?;
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(out.as_bytes())?;
    file.sync_all()?;
    drop(file);
    // The `torn` kill point — see `store::merge_write_with`: the tmp file stays,
    // the old profile stays visible.
    faults.io_op(IoTarget::CostModel, IoOp::Rename)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(cells.len()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(bits: u8) -> FeatureBucket {
        FeatureBucket::from_bits(bits)
    }

    fn temp_model(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "jahob-costmodel-unit-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        cost_model_path(&dir)
    }

    #[test]
    fn ema_math_is_pinned() {
        // First observation initialises; later ones blend with alpha = 0.25.
        assert_eq!(ema_update(0.0, 1000.0, 1), 1000.0);
        assert_eq!(ema_update(1000.0, 2000.0, 2), 1250.0);
        assert_eq!(ema_update(1250.0, 250.0, 3), 1000.0);
        let mut stat = CostStat::default();
        stat.observe(1000, true);
        stat.observe(2000, false);
        assert_eq!(stat.attempts, 2);
        assert_eq!(stat.wins, 1);
        assert_eq!(stat.ema_cost_ns, 1250.0);
    }

    #[test]
    fn expected_cost_penalises_chronic_losers() {
        let winner = CostStat {
            attempts: 10,
            wins: 10,
            ema_cost_ns: 100_000.0,
        };
        let loser = CostStat {
            attempts: 10,
            wins: 0,
            ema_cost_ns: 100_000.0,
        };
        assert!(winner.expected_cost_ns() < loser.expected_cost_ns());
        // Laplace smoothing keeps the loser finite: it is demoted, never pruned.
        assert!(loser.expected_cost_ns().is_finite());
    }

    #[test]
    fn observations_are_invisible_until_commit() {
        let model = CostModel::new();
        model.observe(ProverId::Mona, bucket(FeatureBucket::REACH), 5_000, true);
        assert_eq!(
            model.lookup(ProverId::Mona, bucket(FeatureBucket::REACH)),
            None
        );
        assert!(model.is_empty());
        model.commit();
        let stat = model
            .lookup(ProverId::Mona, bucket(FeatureBucket::REACH))
            .expect("committed");
        assert_eq!((stat.attempts, stat.wins), (1, 1));
        // Not yet calibrated: one sample never overrides the seeded order.
        assert!(model
            .calibrated(ProverId::Mona, bucket(FeatureBucket::REACH))
            .is_none());
        for _ in 0..2 {
            model.observe(ProverId::Mona, bucket(FeatureBucket::REACH), 5_000, true);
        }
        model.commit();
        assert!(model
            .calibrated(ProverId::Mona, bucket(FeatureBucket::REACH))
            .is_some());
    }

    #[test]
    fn serialisation_round_trips() {
        let path = temp_model("roundtrip");
        // In export order: MONA precedes SMT in the `ProverId` declaration.
        let cells = vec![
            (
                ProverId::Mona,
                bucket(FeatureBucket::REACH | FeatureBucket::SETS),
                CostStat {
                    attempts: 3,
                    wins: 0,
                    ema_cost_ns: 98_001_554.5,
                },
            ),
            (
                ProverId::Smt,
                bucket(FeatureBucket::ARITH),
                CostStat {
                    attempts: 7,
                    wins: 5,
                    ema_cost_ns: 19_934.25,
                },
            ),
        ];
        merge_write(&path, cells.clone()).expect("write");
        let loaded = load(&path).expect("load");
        assert_eq!(loaded, cells, "cells survive byte-exactly, f64 included");
    }

    #[test]
    fn merge_write_unions_and_live_cells_win() {
        let path = temp_model("merge");
        let cell = |attempts: u64| {
            (
                ProverId::Fol,
                bucket(FeatureBucket::QUANT),
                CostStat {
                    attempts,
                    wins: 1,
                    ema_cost_ns: 300_000.0,
                },
            )
        };
        let other = (
            ProverId::Bapa,
            bucket(FeatureBucket::CARD),
            CostStat {
                attempts: 4,
                wins: 4,
                ema_cost_ns: 40_000.0,
            },
        );
        merge_write(&path, vec![cell(5), other]).expect("first write");
        merge_write(&path, vec![cell(9)]).expect("second write");
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.len(), 2, "union keeps the untouched cell");
        let fol = loaded
            .iter()
            .find(|(p, _, _)| *p == ProverId::Fol)
            .expect("fol cell");
        assert_eq!(fol.2.attempts, 9, "live cell wins the collision");
    }

    #[test]
    fn missing_file_loads_empty_and_silent() {
        assert!(load_or_warn(&temp_model("missing")).is_empty());
    }

    #[test]
    fn corrupt_truncated_and_future_files_cold_start() {
        let path = temp_model("corrupt");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        for text in [
            "garbage\n",
            &format!("{MAGIC} v999\nC\tx\n"),
            &format!("{MAGIC} v{COST_MODEL_VERSION}\nC\tsmt\tarith\t3\t1\t10.0\n"), // no trailer
            &format!("{MAGIC} v{COST_MODEL_VERSION}\nC\tsmt\tarith\t3\t1\t10.0\n## end\t5\n"),
            &format!(
                "{MAGIC} v{COST_MODEL_VERSION}\nC\tsmt\tbogus-bucket\t3\t1\t10.0\n## end\t1\n"
            ),
            &format!("{MAGIC} v{COST_MODEL_VERSION}\nC\tsmt\tarith\t3\t9\t10.0\n## end\t1\n"), // wins > attempts
        ] {
            std::fs::write(&path, text).unwrap();
            assert!(load(&path).is_err(), "{text:?} must not parse");
            assert!(load_or_warn(&path).is_empty(), "lenient load is empty");
        }
        // And a flush over the corrupt file recovers it.
        merge_write(
            &path,
            vec![(
                ProverId::Smt,
                bucket(FeatureBucket::ARITH),
                CostStat {
                    attempts: 3,
                    wins: 1,
                    ema_cost_ns: 10.0,
                },
            )],
        )
        .expect("flush over corrupt file");
        assert_eq!(load(&path).expect("recovered").len(), 1);
    }

    #[test]
    fn absorb_prefers_in_process_cells() {
        let model = CostModel::new();
        for _ in 0..3 {
            model.observe(ProverId::Smt, bucket(FeatureBucket::ARITH), 1_000, true);
        }
        model.commit();
        model.absorb(vec![(
            ProverId::Smt,
            bucket(FeatureBucket::ARITH),
            CostStat {
                attempts: 99,
                wins: 0,
                ema_cost_ns: 5.0,
            },
        )]);
        let stat = model
            .lookup(ProverId::Smt, bucket(FeatureBucket::ARITH))
            .unwrap();
        assert_eq!(stat.attempts, 3, "absorb never clobbers live cells");
    }
}
