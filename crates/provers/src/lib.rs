//! # jahob-provers
//!
//! Integrated reasoning (§5–§6 of *Full Functional Verification of Linked Data
//! Structures*, PLDI 2008): the prover dispatcher that takes the proof obligations
//! produced by `jahob-vcgen` and discharges each with the cheapest applicable reasoner.
//!
//! The provers, in the architecture of Figure 1:
//!
//! * the **syntactic prover** (§6.1) — trivial validity checks applied first to every
//!   sequent;
//! * **MONA** (§6.4) — the WS1S decision procedure of `jahob-mona`;
//! * the **SMT prover** (§6.3, the CVC3/Z3 role) — ground EUF + LIA with quantifier
//!   instantiation from `jahob-smt`;
//! * the **first-order prover** (§6.2, the SPASS/E role) — the resolution prover of
//!   `jahob-folp`;
//! * **BAPA** (§6.5) — sets with cardinalities from `jahob-bapa`;
//! * the **interactive prover** (§6.6) — a library of named, interactively established
//!   lemmas; obligations registered there are treated as proved, mirroring Jahob's
//!   handling of Isabelle/Coq proof scripts.
//!
//! The dispatcher tries the provers in a configurable order (§5.2), optionally spreading
//! independent obligations over worker threads, and records per-prover sequent counts and
//! times — the data reported in Figures 7 and 15 of the paper.
//!
//! Three scaling mechanisms sit in front of the provers:
//!
//! * **work-stealing dispatch** — with [`DispatcherConfig::threads`] > 1, workers pull
//!   individual obligations (in batches of [`DispatcherConfig::granularity`]) from one
//!   shared atomic queue, so skewed obligation costs no longer leave threads idle the
//!   way a contiguous-chunk split does;
//! * **result caching** — with [`DispatcherConfig::cache`] enabled, every obligation is
//!   keyed by the canonical form of its definition-inlined sequent ([`SequentKey`]) and
//!   looked up in a sharded in-memory cache before any prover runs ([`cache`]); the
//!   cache's negative side additionally memoizes failed `(prover, sequent)` attempts,
//!   so no prover is ever re-run on a canonicalized sequent it already declined;
//! * **per-sequent routing** — with [`DispatcherConfig::route`] enabled, each
//!   obligation's cascade order is chosen from the sequent's syntactic features
//!   ([`jahob_logic::SequentFeatures`] → [`router`]): provers whose fragment the
//!   sequent matches run first, hopeless ones are demoted to a fallback tail (never
//!   dropped), so e.g. MONA stops burning ~100 ms failing on cardinality sequents
//!   BAPA discharges in microseconds.
//!
//! In front of all three, the structured `by` hints of an obligation
//! ([`jahob_vcgen::Hint`]) are resolved per sequent: label hints select assumptions,
//! lemma hints inject library formulas, and `inst` hints specialise universally
//! quantified assumptions at a supplied witness ([`inst`]) — the hinted,
//! instantiated sequent is what routing, the cache keys and the provers all see.
//! The architecture overview in `docs/ARCHITECTURE.md` shows where this crate sits
//! in the pipeline; `docs/SPEC_LANGUAGE.md` documents the hint syntax.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod costmodel;
pub mod faults;
pub mod inst;
pub mod router;
pub mod store;

pub use cache::{CacheStats, SequentCache, SequentKey};
pub use costmodel::{cost_model_path, CostModel, CostStat, COST_MODEL_VERSION};
pub use faults::FaultSpec;
pub use store::{store_path, STORE_VERSION};

use cache::{CacheKey, CachedOutcome, FailureKey};
use faults::FaultPlane;
use inst::apply_inst_hints;
use jahob_logic::norm::{canonicalize, inline_definitions};
use jahob_logic::simplify::{simplify, strip_comments_deep};
use jahob_logic::{Form, SequentFeatures};
use jahob_vcgen::ProofObligation;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The provers of the integrated reasoning system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProverId {
    /// The built-in syntactic prover (§6.1).
    Syntactic,
    /// The WS1S/automata decision procedure (MONA's role, §6.4).
    Mona,
    /// The SMT-style ground prover (CVC3/Z3's role, §6.3).
    Smt,
    /// The first-order resolution prover (SPASS/E's role, §6.2).
    Fol,
    /// The BAPA decision procedure (§6.5).
    Bapa,
    /// The interactive lemma library (Isabelle/Coq's role, §6.6).
    Interactive,
}

impl ProverId {
    /// All provers in the default attempt order (cheap and specialised first).
    pub fn default_order() -> Vec<ProverId> {
        vec![
            ProverId::Syntactic,
            ProverId::Smt,
            ProverId::Mona,
            ProverId::Bapa,
            ProverId::Fol,
            ProverId::Interactive,
        ]
    }

    /// The display name used in verification reports.
    pub fn display_name(&self) -> &'static str {
        match self {
            ProverId::Syntactic => "Syntactic",
            ProverId::Mona => "MONA",
            ProverId::Smt => "SMT (Z3/CVC3)",
            ProverId::Fol => "FOL (SPASS/E)",
            ProverId::Bapa => "BAPA",
            ProverId::Interactive => "Interactive",
        }
    }
}

impl fmt::Display for ProverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

/// A library of interactively proven lemmas (§6.6), in two forms:
///
/// * **registered obligations** — whole obligations (identified by label path and goal
///   text) established by an external proof script; the dispatcher treats them as
///   proved and attributes them to the interactive prover;
/// * **named lemmas** — formulas under a name that `by lemma Name` hints can reference;
///   the dispatcher injects the named formula as an extra assumption of the hinted
///   sequent (the first step beyond label-only hints, §3.5).
#[derive(Debug, Clone, Default)]
pub struct LemmaLibrary {
    entries: BTreeSet<String>,
    named: BTreeMap<String, Form>,
}

impl LemmaLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        LemmaLibrary::default()
    }

    /// Registers a named lemma formula that `by lemma Name` hints can inject. The
    /// formula is trusted (it stands for an interactively established fact), exactly
    /// like registered obligations.
    pub fn register_lemma(&mut self, name: impl Into<String>, formula: Form) {
        self.named.insert(name.into(), formula);
    }

    /// The named lemma formulas, for resolving lemma hints
    /// (see [`ProofObligation::hinted_sequent_with_lemmas`]).
    pub fn named_lemmas(&self) -> &BTreeMap<String, Form> {
        &self.named
    }

    /// Looks up a named lemma.
    pub fn lemma(&self, name: &str) -> Option<&Form> {
        self.named.get(name)
    }

    /// The canonical key of an obligation: its label path and printed goal.
    pub fn key_of(obligation: &ProofObligation) -> String {
        format!(
            "{}|{}",
            obligation.sequent.labels.join("."),
            strip_comments_deep(&obligation.sequent.goal)
        )
    }

    /// Registers an obligation key as interactively proven.
    pub fn register(&mut self, key: impl Into<String>) {
        self.entries.insert(key.into());
    }

    /// Returns `true` if the obligation has a registered proof.
    pub fn contains(&self, obligation: &ProofObligation) -> bool {
        self.entries.contains(&Self::key_of(obligation))
    }

    /// Number of registered obligation proofs plus named lemmas.
    pub fn len(&self) -> usize {
        self.entries.len() + self.named.len()
    }

    /// Returns `true` if the library holds neither obligation proofs nor named lemmas.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.named.is_empty()
    }
}

/// Per-method context shared by the prover interfaces: which variables denote sets and
/// fields (used by the approximation steps), plus the lemma library.
#[derive(Debug, Clone, Default)]
pub struct ProverContext {
    /// Set-typed global variables.
    pub set_vars: BTreeSet<String>,
    /// Function-typed (field-like) global variables.
    pub fun_vars: BTreeSet<String>,
    /// Interactively proven lemmas.
    pub lemmas: LemmaLibrary,
}

/// Provenance of one obligation within a program-wide batch: which data structure and
/// method it came from, and its index in that method's obligation order. Dispatch
/// treats the whole batch as one pool (§3.5, §6); the tag is what folds the per-
/// obligation results back into per-method reports.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObligationTag {
    /// The data structure (suite entry) the obligation belongs to; empty outside suite
    /// runs.
    pub structure: String,
    /// `Class.method`.
    pub method: String,
    /// The index of the obligation within its method (the VC split order).
    pub index: usize,
}

/// One entry of an [`ObligationBatch`]: the obligation, its provenance, and the proving
/// context of the method it came from. Contexts are shared per method behind an `Arc`,
/// so batching a whole program costs one context per method, not per obligation.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// The proof obligation.
    pub obligation: ProofObligation,
    /// Where the obligation came from.
    pub tag: ObligationTag,
    /// The per-method proving context (set/function variable classification, lemmas).
    pub context: Arc<ProverContext>,
}

/// A batch of proof obligations, each carrying provenance and its own proving context —
/// the unit [`Dispatcher::prove_all`] dispatches. Assembling one batch per program (or
/// per suite) hands the work-stealing queue the whole obligation pool at once while the
/// tags keep per-method attribution intact.
#[derive(Debug, Clone, Default)]
pub struct ObligationBatch {
    entries: Vec<BatchEntry>,
}

impl ObligationBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        ObligationBatch::default()
    }

    /// Appends one method's obligations, tagging each with `(structure, method, index)`
    /// and sharing `context` across them.
    pub fn push_method(
        &mut self,
        structure: &str,
        method: &str,
        context: Arc<ProverContext>,
        obligations: Vec<ProofObligation>,
    ) {
        for (index, obligation) in obligations.into_iter().enumerate() {
            self.entries.push(BatchEntry {
                obligation,
                tag: ObligationTag {
                    structure: structure.to_string(),
                    method: method.to_string(),
                    index,
                },
                context: Arc::clone(&context),
            });
        }
    }

    /// A batch in which every obligation shares one context and carries only its index
    /// as provenance — the shape unit tests and microbenches feed the dispatcher.
    pub fn uniform(obligations: &[ProofObligation], context: &ProverContext) -> Self {
        let mut batch = ObligationBatch::new();
        batch.push_method("", "", Arc::new(context.clone()), obligations.to_vec());
        batch
    }

    /// Appends all entries of `other`, preserving their tags.
    pub fn append(&mut self, mut other: ObligationBatch) {
        self.entries.append(&mut other.entries);
    }

    /// The entries, in batch order.
    pub fn entries(&self) -> &[BatchEntry] {
        &self.entries
    }

    /// Number of obligations in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the batch holds no obligations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// How the dispatcher caches prover verdicts. Subsumes the old `cache: bool` knob:
/// `Off`/`Memory` are the former `false`/`true`, and `Persistent` extends `Memory`
/// with the on-disk proof store ([`store`]) so verdicts survive the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMode {
    /// No caching: every obligation runs the full prover cascade.
    Off,
    /// The in-memory sharded cache (the former `cache: true`), dying with the process.
    Memory,
    /// The in-memory cache, warm-started from — and merge-written back to — the
    /// versioned proof store in `dir` ([`store_path`]). A missing store is a silent
    /// cold start; a corrupt or version-mismatched one is a warned cold start.
    Persistent {
        /// Directory holding the store file (created on first flush).
        dir: PathBuf,
        /// Merge-write the store when the last dispatcher sharing the cache is
        /// dropped. With `false`, only explicit [`Dispatcher::flush_store`] calls
        /// write (what benches use to keep measurement iterations read-only).
        flush: bool,
    },
}

impl CacheMode {
    /// `true` unless caching is [`CacheMode::Off`] (the old `cache: bool` view).
    pub fn is_enabled(&self) -> bool {
        !matches!(self, CacheMode::Off)
    }

    /// The persistent store directory, when the mode is [`CacheMode::Persistent`].
    pub fn persistent_dir(&self) -> Option<&std::path::Path> {
        match self {
            CacheMode::Persistent { dir, .. } => Some(dir),
            _ => None,
        }
    }
}

impl fmt::Display for CacheMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheMode::Off => write!(f, "off"),
            CacheMode::Memory => write!(f, "memory"),
            CacheMode::Persistent { dir, flush } => write!(
                f,
                "persistent({}{})",
                dir.display(),
                if *flush { "" } else { ", no flush on drop" }
            ),
        }
    }
}

/// Configuration of the dispatcher. Build one with [`DispatcherConfig::builder`]
/// (explicit, typed knobs; no environment) or take [`DispatcherConfig::default`]
/// (baseline plus `JAHOB_*` environment overrides).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatcherConfig {
    /// The provers to try, in order (§5.2: "the user lists the provers starting from the
    /// ones that are most likely to succeed or fail quickly").
    pub order: Vec<ProverId>,
    /// Spread independent obligations over this many worker threads (1 = sequential).
    /// Workers pull obligations from one shared queue, so an expensive obligation never
    /// strands the rest of a pre-assigned chunk behind it.
    pub threads: usize,
    /// Apply `by` hints (assumption selection) when present.
    pub use_hints: bool,
    /// Whether (and how durably) to cache verdicts: consult the canonical-form-keyed
    /// result cache before running provers, optionally backed by the persistent
    /// on-disk proof store ([`CacheMode::Persistent`]).
    pub cache: CacheMode,
    /// How many obligations a worker claims from the shared queue per grab. `1` gives
    /// the best load balance; larger batches amortise queue traffic when obligations
    /// are uniformly tiny. Values are clamped to at least 1.
    pub granularity: usize,
    /// Choose each obligation's prover order from its sequent's syntactic features
    /// ([`router::route`]) instead of always using the global `order`. Routing is a
    /// permutation of `order` — demoted provers still run as a fallback — so it changes
    /// attempt counts and attribution, never which sequents are proved.
    pub route: bool,
    /// Measured-cost routing plus fuel-budgeted attempts. With `true` (the baseline),
    /// the dispatcher times every attempt into its [`CostModel`] (committed between
    /// batches; routed orders are frozen within one), routes by expected
    /// cost-to-discharge ([`router::route_with_model`] — identical to the static
    /// order until cells calibrate), and gives the expensive provers (MONA, FOL)
    /// feature-dependent fuel so hopeless attempts abort early. Any obligation left
    /// unproved after a cascade with aborts is retried in an **unbudgeted rescue
    /// pass**, so budgets can change attempt counts and times, never verdicts — the
    /// budgets differential test pins this. `false` restores the pre-cost-model
    /// behaviour exactly (static routing, unlimited attempts, no timing collection).
    pub budgets: bool,
    /// Wall-clock deadline per prover attempt, in milliseconds (`JAHOB_DEADLINE_MS`).
    /// Checked cooperatively at the provers' existing fuel hooks (MONA's work
    /// charges, FOL's given-clause loop, SMT's DPLL steps), so an attempt that
    /// passes its deadline stops within one hook interval and is counted as a
    /// [`ProverStats::deadline_aborts`] — an *unknown* verdict that is never
    /// failure-memoized and never cached. The syntactic, BAPA and interactive
    /// provers have no long-running loops and are exempt. `None` (the default)
    /// disables the check; unlike fuel budgets, a deadline deliberately trades
    /// completeness for a predictable time bound (deadline-stopped attempts are
    /// *not* rescued).
    pub deadline_ms: Option<u64>,
    /// Deterministic fault injection ([`FaultSpec`], `JAHOB_FAULTS`) for the
    /// torture harness: panics/delays into prover attempts, I/O errors and torn
    /// writes into the proof-store and cost-model persistence. The default (empty)
    /// spec injects nothing and is pinned byte-identical to a dispatcher without a
    /// fault plane. Faults are not part of the cache fingerprint because a cascade
    /// that observed a crash or deadline stop is never cached at all.
    pub faults: FaultSpec,
}

impl Default for DispatcherConfig {
    /// The baseline configuration (sequential, hints on, in-memory cache, routing on,
    /// granularity 1), with [`DispatcherConfig::with_env_overrides`] applied on top so
    /// a whole test or bench run can be switched to the parallel, uncached, unrouted
    /// or persistent-store path from the environment.
    fn default() -> Self {
        DispatcherConfig::builder().build().with_env_overrides()
    }
}

/// Builder for [`DispatcherConfig`]: typed, named knobs instead of the old
/// bool-and-positional surface. Starts from the pinned baseline (sequential, hints
/// on, [`CacheMode::Memory`], granularity 1, routing on) and applies **no**
/// environment overrides, so configurations built here mean exactly what the call
/// site says — benches and differential tests depend on that. Call
/// [`DispatcherConfigBuilder::env_overrides`] last to opt back into `JAHOB_*`.
///
/// ```
/// use jahob_provers::{CacheMode, DispatcherConfig};
///
/// let config = DispatcherConfig::builder()
///     .threads(4)
///     .cache(CacheMode::Persistent { dir: "/tmp/jahob-store".into(), flush: true })
///     .build();
/// assert_eq!(config.threads, 4);
/// ```
#[derive(Debug, Clone)]
pub struct DispatcherConfigBuilder {
    config: DispatcherConfig,
}

impl DispatcherConfigBuilder {
    /// Sets the global prover order (§5.2).
    pub fn order(mut self, order: Vec<ProverId>) -> Self {
        self.config.order = order;
        self
    }

    /// Sets the worker thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Enables or disables `by` hint application.
    pub fn hints(mut self, use_hints: bool) -> Self {
        self.config.use_hints = use_hints;
        self
    }

    /// Sets the cache mode ([`CacheMode::Off`] / [`CacheMode::Memory`] /
    /// [`CacheMode::Persistent`]).
    pub fn cache(mut self, mode: CacheMode) -> Self {
        self.config.cache = mode;
        self
    }

    /// Sets the work-queue claim granularity (clamped to at least 1).
    pub fn granularity(mut self, granularity: usize) -> Self {
        self.config.granularity = granularity.max(1);
        self
    }

    /// Enables or disables feature-directed per-sequent routing.
    pub fn route(mut self, route: bool) -> Self {
        self.config.route = route;
        self
    }

    /// Enables or disables the measured cost model and fuel-budgeted attempts (with
    /// the completeness-preserving rescue pass). See [`DispatcherConfig::budgets`].
    pub fn budgets(mut self, budgets: bool) -> Self {
        self.config.budgets = budgets;
        self
    }

    /// Sets the per-attempt wall-clock deadline in milliseconds (see
    /// [`DispatcherConfig::deadline_ms`]). The builder default is no deadline.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.config.deadline_ms = Some(ms);
        self
    }

    /// Arms a deterministic fault-injection spec (see [`DispatcherConfig::faults`]
    /// and [`faults`]). The builder default injects nothing.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.config.faults = spec;
        self
    }

    /// Applies the `JAHOB_*` environment overrides **on top of** everything set so
    /// far (see [`DispatcherConfig::with_env_overrides`]). Call it last: knobs set
    /// after it win over the environment again.
    pub fn env_overrides(mut self) -> Self {
        self.config = self.config.with_env_overrides();
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> DispatcherConfig {
        self.config
    }
}

impl DispatcherConfig {
    /// Starts a [`DispatcherConfigBuilder`] at the pinned baseline (sequential,
    /// hints on, in-memory cache, granularity 1, routing on; no environment
    /// overrides).
    pub fn builder() -> DispatcherConfigBuilder {
        DispatcherConfigBuilder {
            config: DispatcherConfig {
                order: ProverId::default_order(),
                threads: 1,
                use_hints: true,
                cache: CacheMode::Memory,
                granularity: 1,
                route: true,
                budgets: true,
                deadline_ms: None,
                faults: FaultSpec::default(),
            },
        }
    }

    /// The old positional configuration surface, kept as a thin shim over
    /// [`DispatcherConfig::builder`] so the long-standing differential harness keeps
    /// its historical meaning: `cache = true` is [`CacheMode::Memory`], `false` is
    /// [`CacheMode::Off`], and no environment overrides are applied.
    #[deprecated(
        since = "0.1.0",
        note = "use DispatcherConfig::builder() with a typed CacheMode instead"
    )]
    pub fn pinned(threads: usize, cache: bool, granularity: usize) -> Self {
        DispatcherConfig::builder()
            .threads(threads)
            .cache(if cache {
                CacheMode::Memory
            } else {
                CacheMode::Off
            })
            .granularity(granularity)
            .build()
    }

    /// Applies the `JAHOB_THREADS`, `JAHOB_CACHE`, `JAHOB_CACHE_DIR`,
    /// `JAHOB_GRANULARITY`, `JAHOB_ROUTE` and `JAHOB_BUDGETS` environment variables
    /// on top of `self` and returns the result. Unset variables leave the
    /// corresponding field untouched; a set-but-invalid value also leaves the field
    /// untouched but prints a one-line warning to stderr naming the variable and the
    /// rejected value (a silently ignored typo like `JAHOB_CACHE=ture` used to make
    /// a whole ablation run measure the wrong thing). `JAHOB_CACHE`, `JAHOB_ROUTE`
    /// and `JAHOB_BUDGETS` accept `1`/`on`/`true`/`yes` and `0`/`off`/`false`/`no`
    /// (case-insensitive).
    ///
    /// `JAHOB_CACHE_DIR=<dir>` upgrades the cache to
    /// [`CacheMode::Persistent`]` { dir, flush: true }` — the on-disk proof store
    /// loaded at dispatcher construction and merge-written on drop. An explicit
    /// `JAHOB_CACHE=off` still wins (it is the established ablation switch), while
    /// `JAHOB_CACHE=on` keeps a configured persistent mode persistent.
    ///
    /// This is what lets CI exercise the work-stealing, cached, unrouted and
    /// warm-start paths on every push: the test job re-runs the whole suite under
    /// `JAHOB_THREADS=4 JAHOB_CACHE=on`, once under `JAHOB_ROUTE=off` (guarding the
    /// global fallback cascade), and the warm-start job twice against one
    /// `JAHOB_CACHE_DIR`.
    pub fn with_env_overrides(mut self) -> Self {
        if let Some(n) = env_knob("JAHOB_THREADS", parse_count_knob) {
            self.threads = n;
        }
        if let Some(dir) = env_knob("JAHOB_CACHE_DIR", parse_dir_knob) {
            self.cache = CacheMode::Persistent { dir, flush: true };
        }
        if let Some(cache) = env_knob("JAHOB_CACHE", parse_switch_knob) {
            self.cache = match (cache, self.cache) {
                (false, _) => CacheMode::Off,
                (true, CacheMode::Off) => CacheMode::Memory,
                (true, mode) => mode,
            };
        }
        if let Some(n) = env_knob("JAHOB_GRANULARITY", parse_count_knob) {
            self.granularity = n;
        }
        if let Some(route) = env_knob("JAHOB_ROUTE", parse_switch_knob) {
            self.route = route;
        }
        if let Some(budgets) = env_knob("JAHOB_BUDGETS", parse_switch_knob) {
            self.budgets = budgets;
        }
        if let Some(ms) = env_knob("JAHOB_DEADLINE_MS", parse_millis_knob) {
            self.deadline_ms = Some(ms);
        }
        if let Some(spec) = env_knob("JAHOB_FAULTS", parse_faults_knob) {
            self.faults = spec;
        }
        self
    }

    /// A short stable description of the fields that can change a prover verdict or
    /// the recorded attempt accounting (order, hint usage, routing), mixed into every
    /// cache key so entries written under one configuration are never served to
    /// another.
    fn fingerprint(&self) -> String {
        let order: Vec<&str> = self.order.iter().map(|p| p.display_name()).collect();
        let mut fingerprint = format!(
            "order={}|hints={}|route={}|budgets={}",
            order.join(","),
            self.use_hints,
            self.route,
            self.budgets
        );
        // Only appended when a deadline is armed, so stores written before the
        // deadline knob existed keep warm-starting deadline-free runs unchanged.
        // (A deadline can suppress proofs, so deadline verdicts must never be
        // served to deadline-free configurations, and vice versa.)
        if let Some(ms) = self.deadline_ms {
            fingerprint.push_str(&format!("|deadline={ms}"));
        }
        fingerprint
    }
}

/// Reads one `JAHOB_*` knob from the environment through `parse`: `None` when unset,
/// the parsed value when valid, and `None` **plus a stderr warning** when set to a
/// value the parser rejects (the warning text is produced by the parser so unit tests
/// can pin it without touching the process environment).
fn env_knob<T>(name: &str, parse: fn(&str, &str) -> Result<T, String>) -> Option<T> {
    match std::env::var(name) {
        Ok(value) => match parse(name, &value) {
            Ok(parsed) => Some(parsed),
            Err(warning) => {
                eprintln!("{warning}");
                None
            }
        },
        Err(_) => None,
    }
}

/// Parses a positive-count knob (`JAHOB_THREADS`, `JAHOB_GRANULARITY`). Counts are
/// clamped to at least 1; a non-numeric value is rejected with a warning naming the
/// variable and the value.
fn parse_count_knob(name: &str, value: &str) -> Result<usize, String> {
    value
        .trim()
        .parse::<usize>()
        .map(|n| n.max(1))
        .map_err(|_| {
            format!(
                "warning: ignoring {name}={value:?}: expected a non-negative integer; \
             keeping the default"
            )
        })
}

/// Parses an on/off switch knob (`JAHOB_CACHE`, `JAHOB_ROUTE`): `1`/`on`/`true`/`yes`
/// and `0`/`off`/`false`/`no`, case-insensitive. Anything else is rejected with a
/// warning naming the variable and the value.
fn parse_switch_knob(name: &str, value: &str) -> Result<bool, String> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "on" | "true" | "yes" => Ok(true),
        "0" | "off" | "false" | "no" => Ok(false),
        _ => Err(format!(
            "warning: ignoring {name}={value:?}: expected on|off|true|false|yes|no|1|0; \
             keeping the default"
        )),
    }
}

/// Parses a milliseconds knob (`JAHOB_DEADLINE_MS`): any non-negative integer.
/// `0` is accepted as the degenerate always-expired deadline (every fuel-hooked
/// attempt stops at its first cooperative check — useful for torture tests).
fn parse_millis_knob(name: &str, value: &str) -> Result<u64, String> {
    value.trim().parse::<u64>().map_err(|_| {
        format!(
            "warning: ignoring {name}={value:?}: expected a number of milliseconds; \
             keeping the default"
        )
    })
}

/// Parses the fault-injection knob (`JAHOB_FAULTS`) through [`FaultSpec::parse`],
/// wrapping its entry-level diagnostics into the standard knob warning. An empty
/// value parses as the empty (no-fault) spec.
fn parse_faults_knob(name: &str, value: &str) -> Result<FaultSpec, String> {
    FaultSpec::parse(value)
        .map_err(|e| format!("warning: ignoring {name}={value:?}: {e}; keeping the default"))
}

/// Parses a directory-path knob (`JAHOB_CACHE_DIR`): any non-empty value (after
/// trimming) is accepted as a path; an empty value is rejected with a warning naming
/// the variable (an empty dir would silently resolve to the current directory).
fn parse_dir_knob(name: &str, value: &str) -> Result<PathBuf, String> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        Err(format!(
            "warning: ignoring {name}={value:?}: expected a directory path; \
             keeping the default"
        ))
    } else {
        Ok(PathBuf::from(trimmed))
    }
}

/// Statistics for one prover within a verification run (one row cell of Figure 15).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// Number of sequents this prover proved (including cache hits credited to it).
    pub proved: usize,
    /// Number of sequents it attempted (including failures and cache hits).
    pub attempted: usize,
    /// Of `proved`, how many were answered from the result cache rather than by
    /// actually re-running this prover.
    pub cache_hits: usize,
    /// Attempts the cascade *avoided* because the cache's negative side already knew
    /// this prover fails on the canonicalized sequent. Not counted in `attempted` —
    /// the prover never ran.
    pub skipped: usize,
    /// Of `attempted`, how many ran out of fuel ([`DispatcherConfig::budgets`]) and
    /// were aborted rather than allowed to fail. Aborted attempts never enter the
    /// failure memo — the verdict is unknown, not negative.
    pub budget_aborts: usize,
    /// Of `attempted`, how many panicked and were contained by the cascade's
    /// `catch_unwind` — the prover misbehaved, the dispatch survived. Crashed
    /// attempts are never failure-memoized (the verdict is unknown, not negative)
    /// and a cascade containing one is never cached.
    pub crashes: usize,
    /// Of `attempted`, how many were stopped at the wall-clock deadline
    /// ([`DispatcherConfig::deadline_ms`]) — also unknown verdicts, never memoized,
    /// never cached, and (unlike fuel aborts) deliberately not rescued.
    pub deadline_aborts: usize,
    /// Total time spent in this prover.
    pub time: Duration,
}

/// The outcome of running the dispatcher on a set of obligations.
#[derive(Debug, Clone, Default)]
pub struct VerificationReport {
    /// Per-prover statistics.
    pub per_prover: BTreeMap<ProverId, ProverStats>,
    /// Total number of sequents (obligations).
    pub total_sequents: usize,
    /// Number of sequents proved by some prover.
    pub proved_sequents: usize,
    /// Descriptions of the obligations no prover could discharge, in obligation order
    /// (the order is deterministic even under parallel dispatch: per-obligation results
    /// are merged by obligation index, not by thread completion order).
    pub unproved: Vec<String>,
    /// Obligations answered from the result cache during this run.
    pub cache_hits: usize,
    /// Of `cache_hits`, how many were answered by entries warm-loaded from the
    /// persistent proof store rather than proved earlier in this process. Always 0
    /// unless the cache mode is [`CacheMode::Persistent`].
    pub cache_disk_hits: usize,
    /// Obligations that fell through the cache to the provers during this run. Both
    /// counters stay 0 when caching is disabled.
    pub cache_misses: usize,
    /// Sequents whose budgeted cascades all failed with at least one fuel abort and
    /// that were therefore retried in the unbudgeted rescue pass (one per sequent,
    /// whatever the rescue verdict). Always 0 with budgets off.
    pub rescue_retries: usize,
    /// Total wall-clock time of the run.
    pub total_time: Duration,
}

impl VerificationReport {
    /// `true` if every sequent was proved.
    pub fn succeeded(&self) -> bool {
        self.proved_sequents == self.total_sequents
    }

    /// Total prover attempts avoided by the failure memo across all provers.
    pub fn failure_skips(&self) -> usize {
        self.per_prover.values().map(|s| s.skipped).sum()
    }

    /// Total prover attempts aborted on a fuel budget across all provers.
    pub fn budget_aborts(&self) -> usize {
        self.per_prover.values().map(|s| s.budget_aborts).sum()
    }

    /// Total prover panics contained by the cascade across all provers.
    pub fn crashes(&self) -> usize {
        self.per_prover.values().map(|s| s.crashes).sum()
    }

    /// Total prover attempts stopped at the wall-clock deadline across all provers.
    pub fn deadline_aborts(&self) -> usize {
        self.per_prover.values().map(|s| s.deadline_aborts).sum()
    }

    /// Renders the report in the style of Figure 7 of the paper. When the result cache
    /// was consulted (`cache_hits + cache_misses > 0`), a
    /// `Result cache: H hits, M misses (R% hit rate).` line follows the sequent totals.
    pub fn render(&self, task_name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("$ jahob {task_name}\n"));
        out.push_str("========================================================\n");
        for (id, stats) in &self.per_prover {
            if stats.proved == 0 && stats.attempted == 0 {
                continue;
            }
            if *id == ProverId::Syntactic {
                out.push_str(&format!(
                    "Built-in checker proved {} sequents during splitting.\n",
                    stats.proved
                ));
            } else {
                out.push_str(&format!(
                    "{} proved {} out of {} sequents. Total time : {:.1} s\n",
                    id.display_name(),
                    stats.proved,
                    stats.attempted,
                    stats.time.as_secs_f64()
                ));
            }
        }
        out.push_str("========================================================\n");
        out.push_str(&format!(
            "A total of {} sequents out of {} proved.\n",
            self.proved_sequents, self.total_sequents
        ));
        if self.cache_hits + self.cache_misses > 0 {
            let from_disk = if self.cache_disk_hits > 0 {
                format!(" ({} from disk)", self.cache_disk_hits)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "Result cache: {} hits{}, {} misses ({:.1}% hit rate).\n",
                self.cache_hits,
                from_disk,
                self.cache_misses,
                100.0 * self.cache_hits as f64 / (self.cache_hits + self.cache_misses) as f64
            ));
        }
        if self.failure_skips() > 0 {
            out.push_str(&format!(
                "Failure memo: {} dead prover attempts skipped.\n",
                self.failure_skips()
            ));
        }
        if self.budget_aborts() > 0 || self.rescue_retries > 0 {
            out.push_str(&format!(
                "Fuel budgets: {} attempts aborted, {} sequents rescued unbudgeted.\n",
                self.budget_aborts(),
                self.rescue_retries
            ));
        }
        if self.crashes() > 0 || self.deadline_aborts() > 0 {
            out.push_str(&format!(
                "Fault containment: {} prover crashes contained, {} attempts stopped at \
                 the deadline.\n",
                self.crashes(),
                self.deadline_aborts()
            ));
        }
        if self.succeeded() {
            out.push_str(&format!("[{task_name}]\n0=== Verification SUCCEEDED.\n"));
        } else {
            out.push_str(&format!("[{task_name}]\n0=== Verification FAILED.\n"));
            for d in &self.unproved {
                out.push_str(&format!("  unproved: {d}\n"));
            }
        }
        out
    }

    /// Merges another report into this one (used when aggregating methods or threads).
    /// Merging is order-dependent only in `unproved`; the dispatcher always merges
    /// per-obligation reports in obligation order so the result is deterministic.
    pub fn merge(&mut self, other: &VerificationReport) {
        for (id, s) in &other.per_prover {
            let entry = self.per_prover.entry(*id).or_default();
            entry.proved += s.proved;
            entry.attempted += s.attempted;
            entry.cache_hits += s.cache_hits;
            entry.skipped += s.skipped;
            entry.budget_aborts += s.budget_aborts;
            entry.crashes += s.crashes;
            entry.deadline_aborts += s.deadline_aborts;
            entry.time += s.time;
        }
        self.total_sequents += other.total_sequents;
        self.proved_sequents += other.proved_sequents;
        self.unproved.extend(other.unproved.iter().cloned());
        self.cache_hits += other.cache_hits;
        self.cache_disk_hits += other.cache_disk_hits;
        self.cache_misses += other.cache_misses;
        self.rescue_retries += other.rescue_retries;
        self.total_time += other.total_time;
    }
}

/// The report of one obligation of a batch, paired with its provenance tag.
#[derive(Debug, Clone)]
pub struct TaggedReport {
    /// Where the obligation came from.
    pub tag: ObligationTag,
    /// The single-obligation report (`total_sequents == 1`); its `total_time` is the
    /// wall-clock time this obligation spent in [`Dispatcher::prove_one`].
    pub report: VerificationReport,
}

/// The outcome of proving one [`ObligationBatch`]: per-obligation reports in batch
/// order (so folding them per method reproduces the per-method `unproved` ordering
/// exactly), plus the wall-clock time of the whole batch.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// One tagged report per obligation, in batch order.
    pub per_obligation: Vec<TaggedReport>,
    /// Wall-clock time of the whole `prove_all` call.
    pub total_time: Duration,
}

impl BatchReport {
    /// Merges every per-obligation report into one aggregate. The aggregate's
    /// `total_time` is the batch wall clock, not the sum of per-obligation times (the
    /// two differ under parallel dispatch).
    pub fn aggregate(&self) -> VerificationReport {
        let mut report = VerificationReport::default();
        for tagged in &self.per_obligation {
            report.merge(&tagged.report);
        }
        report.total_time = self.total_time;
        report
    }
}

/// The persistent-store attachment shared by a dispatcher and its clones: where to
/// merge-write the proof store and the cost-model profile, and whether dropping the
/// last sharer should do it implicitly.
#[derive(Debug)]
struct StoreHandle {
    path: PathBuf,
    model_path: PathBuf,
    flush_on_drop: bool,
}

/// The integrated-reasoning dispatcher.
///
/// Cloning a dispatcher shares its result cache (the cache sits behind an `Arc`), so
/// one cache can serve every method of a program — or a whole suite — while each clone
/// keeps its own configuration. Under [`CacheMode::Persistent`] the cache is
/// warm-started from the on-disk proof store at construction and merge-written back
/// when the last sharing dispatcher is dropped (or on [`Dispatcher::flush_store`]).
#[derive(Debug, Clone)]
pub struct Dispatcher {
    /// Configuration (prover order, threads, caching, hint usage).
    pub config: DispatcherConfig,
    cache: Arc<SequentCache>,
    batches: Arc<AtomicUsize>,
    store: Option<Arc<StoreHandle>>,
    /// Measured attempt costs, shared by clones like the cache. Observations are
    /// buffered during a batch and committed only between batches, so every routed
    /// order within one `prove_all` is computed against a frozen model.
    model: Arc<CostModel>,
    /// The armed fault plane (shared by clones so operation counting stays one
    /// deterministic sequence per dispatcher tree). Empty config → no-op plane.
    faults: Arc<FaultPlane>,
    /// Store/cost-model write attempts that had to be retried after a transient
    /// I/O failure (shared by clones; see [`Dispatcher::store_retries`]).
    store_retries: Arc<AtomicUsize>,
}

impl Default for Dispatcher {
    fn default() -> Self {
        Dispatcher::with_config(DispatcherConfig::default())
    }
}

impl Dispatcher {
    /// Creates a dispatcher with the default prover order and a fresh cache.
    pub fn new() -> Self {
        Dispatcher::default()
    }

    /// Creates a dispatcher with the given configuration and a fresh cache. Under
    /// [`CacheMode::Persistent`] the proof store is loaded here (missing file =
    /// silent cold start; corrupt or version-mismatched file = warned cold start).
    /// A store directory that cannot be created or written warns once and degrades
    /// the cache to [`CacheMode::Memory`] — an unwritable cache dir must never turn
    /// into a panic at drop time or a silent loss of the in-memory cache.
    pub fn with_config(mut config: DispatcherConfig) -> Self {
        let faults = Arc::new(FaultPlane::new(&config.faults));
        if let CacheMode::Persistent { dir, .. } = &config.cache {
            if let Err(e) = probe_store_dir(dir) {
                eprintln!(
                    "warning: proof-store directory {} is not writable ({e}); \
                     degrading to the in-memory cache",
                    dir.display()
                );
                config.cache = CacheMode::Memory;
            }
        }
        let cache = Arc::new(SequentCache::new());
        let model = Arc::new(CostModel::new());
        let store = if let CacheMode::Persistent { dir, flush } = &config.cache {
            let path = store_path(dir);
            cache.absorb(store::load_or_warn_with(&path, &faults));
            let model_path = costmodel::cost_model_path(dir);
            model.absorb(costmodel::load_or_warn_with(&model_path, &faults));
            Some(Arc::new(StoreHandle {
                path,
                model_path,
                flush_on_drop: *flush,
            }))
        } else {
            None
        };
        Dispatcher {
            config,
            cache,
            batches: Arc::new(AtomicUsize::new(0)),
            store,
            model,
            faults,
            store_retries: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Merge-writes the cache's current contents into the persistent proof store and
    /// returns the number of verdict entries the store now holds. A dispatcher
    /// without a [`CacheMode::Persistent`] cache flushes nothing and returns
    /// `Ok(0)`. Concurrent flushers never torn-write (each writes a private tmp file
    /// and atomically renames it over the store) and never lose each other's
    /// entries (each re-reads the store and overlays its own snapshot before
    /// writing).
    /// Transient I/O failures (including injected ones) are retried with a short
    /// backoff before the error is surfaced; [`Dispatcher::store_retries`] counts
    /// the retries.
    pub fn flush_store(&self) -> std::io::Result<usize> {
        match &self.store {
            Some(handle) => {
                self.model.commit();
                if !self.model.is_empty() {
                    self.with_retry(|| {
                        costmodel::merge_write_with(
                            &handle.model_path,
                            self.model.export(),
                            &self.faults,
                        )
                    })?;
                }
                self.with_retry(|| {
                    store::merge_write_with(&handle.path, self.cache.export(), &self.faults)
                })
            }
            None => Ok(0),
        }
    }

    /// Number of store/cost-model write attempts that failed transiently and were
    /// retried (shared across clones). Zero unless the filesystem — or an injected
    /// `store:`/`costmodel:` fault — made a flush fail and a retry rescued it.
    pub fn store_retries(&self) -> usize {
        self.store_retries.load(Ordering::Relaxed)
    }

    /// Runs a store write up to three times, sleeping briefly between attempts.
    /// Merge-writes are idempotent (each re-reads the file and overlays the same
    /// snapshot), so retrying a failed attempt is always safe.
    fn with_retry<T>(&self, mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
        const BACKOFF_MS: [u64; 2] = [1, 5];
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < BACKOFF_MS.len() => {
                    std::thread::sleep(Duration::from_millis(BACKOFF_MS[attempt]));
                    self.store_retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The implicit last-drop flush, factored out of `Drop` so tests can exercise it
    /// without capturing stderr: performs the retried merge-writes and returns one
    /// warning line per store file that still could not be written.
    fn drop_flush_warnings(&self) -> Vec<String> {
        let mut warnings = Vec::new();
        if let Some(handle) = &self.store {
            if let Err(e) = self.with_retry(|| {
                store::merge_write_with(&handle.path, self.cache.export(), &self.faults)
            }) {
                warnings.push(format!(
                    "warning: failed to flush proof store {}: {e}",
                    handle.path.display()
                ));
            }
            self.model.commit();
            if !self.model.is_empty() {
                if let Err(e) = self.with_retry(|| {
                    costmodel::merge_write_with(
                        &handle.model_path,
                        self.model.export(),
                        &self.faults,
                    )
                }) {
                    warnings.push(format!(
                        "warning: failed to flush cost model {}: {e}",
                        handle.model_path.display()
                    ));
                }
            }
        }
        warnings
    }
}

/// Checks that `dir` exists (creating it if needed) and is writable, by creating and
/// removing a uniquely named probe file. Called once per dispatcher construction so
/// an unusable [`CacheMode::Persistent`] directory degrades up front instead of
/// failing at the final flush.
fn probe_store_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let probe = dir.join(format!(".jahob-probe.{}", std::process::id()));
    std::fs::write(&probe, b"probe")?;
    std::fs::remove_file(&probe)
}

impl Drop for Dispatcher {
    /// Flushes the persistent store when this is the last dispatcher sharing the
    /// cache and the mode asked for it (`flush: true`). A failed implicit flush only
    /// warns — dropping must not panic, even if the flush path itself panics; call
    /// [`Dispatcher::flush_store`] explicitly to observe the error. (Two clones
    /// dropped concurrently can in principle both see a sharer and skip; the
    /// explicit call is the reliable path.)
    fn drop(&mut self) {
        if let Some(handle) = &self.store {
            if handle.flush_on_drop && Arc::strong_count(&self.cache) == 1 {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.drop_flush_warnings()
                }));
                match outcome {
                    Ok(warnings) => {
                        for w in warnings {
                            eprintln!("{w}");
                        }
                    }
                    Err(_) => eprintln!(
                        "warning: implicit flush of proof store {} panicked; store left as-is",
                        handle.path.display()
                    ),
                }
            }
        }
    }
}

impl Dispatcher {
    /// Creates a dispatcher with an explicit prover order.
    pub fn with_order(order: Vec<ProverId>) -> Self {
        Dispatcher::with_config(DispatcherConfig {
            order,
            ..DispatcherConfig::default()
        })
    }

    /// The result cache shared by this dispatcher and all its clones.
    pub fn cache(&self) -> &SequentCache {
        &self.cache
    }

    /// The measured cost model shared by this dispatcher and all its clones. Empty
    /// until a budgeted batch completes (or, under [`CacheMode::Persistent`], until
    /// a profile is warm-loaded from `cost-model.jahob` at construction).
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Number of `prove_all` calls this dispatcher (and its clones) has dispatched.
    /// The driver's program-wide batching contract — `verify_program` issues exactly
    /// one batch per program, `run_suite` one per suite — is asserted against this.
    pub fn batches_dispatched(&self) -> usize {
        self.batches.load(Ordering::Relaxed)
    }

    /// Proves one tagged batch, returning a per-obligation report stream in batch
    /// order. Each obligation is proved under **its own** [`ProverContext`] (carried by
    /// its [`BatchEntry`]), which is what lets one batch span every method of a program
    /// — the main reason the previous fixed-context signature could not batch across
    /// methods.
    ///
    /// With `threads > 1`, workers claim entries from one shared atomic queue
    /// ([`DispatcherConfig::granularity`] entries per claim) instead of being
    /// pre-assigned contiguous chunks: a single expensive obligation then occupies one
    /// worker while the others drain the rest of the queue. Per-obligation results are
    /// written into per-index slots and emitted in batch order, so the folded reports —
    /// including every method's `unproved` list — are identical for every thread count.
    pub fn prove_all(&self, batch: &ObligationBatch) -> BatchReport {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let entries = batch.entries();
        let threads = self.config.threads.max(1).min(entries.len().max(1));
        let reports: Vec<VerificationReport> = if threads <= 1 {
            entries.iter().map(|e| self.prove_entry(e)).collect()
        } else {
            let granularity = self.config.granularity.max(1);
            let next = AtomicUsize::new(0);
            let slots: Vec<OnceLock<VerificationReport>> =
                (0..entries.len()).map(|_| OnceLock::new()).collect();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let next = &next;
                    let slots = &slots;
                    scope.spawn(move || loop {
                        let lo = next.fetch_add(granularity, Ordering::Relaxed);
                        if lo >= entries.len() {
                            break;
                        }
                        let hi = (lo + granularity).min(entries.len());
                        for (i, entry) in entries[lo..hi].iter().enumerate() {
                            let one = self.prove_entry(entry);
                            slots[lo + i]
                                .set(one)
                                .expect("obligation indices are claimed exactly once");
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("every claimed obligation stores a result")
                })
                .collect()
        };
        // The batch boundary is the only place observations become visible: routed
        // orders within the batch were all computed against the model as of its
        // start, so per-obligation results are independent of dispatch order.
        self.model.commit();
        BatchReport {
            per_obligation: entries
                .iter()
                .zip(reports)
                .map(|(entry, report)| TaggedReport {
                    tag: entry.tag.clone(),
                    report,
                })
                .collect(),
            total_time: start.elapsed(),
        }
    }

    /// Proves a uniform-context batch and aggregates the result — the per-method view
    /// retained for callers that hold plain obligation slices (unit tests, microbenches,
    /// obligation dumps).
    pub fn prove_obligations(
        &self,
        obligations: &[ProofObligation],
        context: &ProverContext,
    ) -> VerificationReport {
        self.prove_all(&ObligationBatch::uniform(obligations, context))
            .aggregate()
    }

    /// Proves one batch entry, stamping the report with the obligation's wall time (so
    /// per-method folds sum to a meaningful method time even inside a program-wide
    /// batch).
    fn prove_entry(&self, entry: &BatchEntry) -> VerificationReport {
        let start = Instant::now();
        let mut report = self.prove_one_inner(&entry.obligation, &entry.context);
        report.total_time = start.elapsed();
        report
    }

    /// Attempts one obligation, consulting the result cache first when enabled.
    /// A direct call is a batch of one: its timing observations are committed to the
    /// cost model on return (batched callers commit once per `prove_all` instead).
    pub fn prove_one(
        &self,
        obligation: &ProofObligation,
        context: &ProverContext,
    ) -> VerificationReport {
        let report = self.prove_one_inner(obligation, context);
        self.model.commit();
        report
    }

    fn prove_one_inner(
        &self,
        obligation: &ProofObligation,
        context: &ProverContext,
    ) -> VerificationReport {
        // §5.3: before any prover runs, substitute the definitions of the intermediate
        // variables introduced by the VC generator (assignment temporaries, pre-state
        // snapshots, splitter renamings). Every prover then works on the collapsed
        // sequent. The hinted variant — label-selected assumptions, any library lemmas
        // the hints name, and the instances produced by `inst` hints ([`inst`]) — is
        // what the provers try first; instantiation runs before inlining and keying,
        // so routing, `SequentKey` and the failure memo all see the instantiated
        // sequent (entries never alias across witnesses).
        let use_hints = self.config.use_hints && !obligation.hints.is_empty();
        let hinted = use_hints.then(|| {
            let selected = obligation.hinted_sequent_with_lemmas(context.lemmas.named_lemmas());
            inline_definitions(&apply_inst_hints(&selected, &obligation.hints))
        });
        // The full-sequent fallback keeps the instantiations too: label hints are
        // advice the retry may discard, but an `inst` witness is information the
        // provers cannot rediscover — dropping it on retry would lose proofs whenever
        // a label hint misselected the assumptions.
        let full = if use_hints {
            inline_definitions(&apply_inst_hints(&obligation.sequent, &obligation.hints))
        } else {
            inline_definitions(&obligation.sequent)
        };
        if !self.config.cache.is_enabled() {
            return self.prove_one_uncached(obligation, context, hinted.as_ref(), &full, None);
        }
        // The canonical sequent keys and variable classifications are computed once
        // and shared between the verdict cache key and the failure memo of the
        // cascade below.
        let full_key = SequentKey::of_inlined(&full);
        let hinted_key = hinted.as_ref().map(SequentKey::of_inlined);
        let full_classes = var_classes(context, &full);
        let hinted_classes = hinted.as_ref().map(|h| var_classes(context, h));
        let key = CacheKey {
            sequent: full_key.clone(),
            hinted: hinted_key.clone(),
            var_classes: match hinted_classes.as_deref() {
                Some(h) => format!("{full_classes}|{h}"),
                None => full_classes.clone(),
            },
            lemma_registered: context.lemmas.contains(obligation),
            config_fingerprint: self.config.fingerprint(),
        };
        if let Some(outcome) = self.cache.lookup(&key) {
            return self.report_from_cache(obligation, outcome);
        }
        let memo = FailureMemo {
            cache: &self.cache,
            full: FailureKey {
                sequent: full_key,
                var_classes: full_classes,
            },
            hinted: match (hinted_key, hinted_classes) {
                (Some(sequent), Some(var_classes)) => Some(FailureKey {
                    sequent,
                    var_classes,
                }),
                _ => None,
            },
        };
        let mut report =
            self.prove_one_uncached(obligation, context, hinted.as_ref(), &full, Some(&memo));
        report.cache_misses = 1;
        // A cascade that contained a crash or a deadline stop has attempts with
        // *unknown* verdicts: caching its outcome would freeze a fault-perturbed
        // verdict into the store and replay it on healthy runs. Leave it uncached —
        // the next run (without the fault) recomputes it cleanly.
        if report.crashes() > 0 || report.deadline_aborts() > 0 {
            return report;
        }
        let prover = report
            .per_prover
            .iter()
            .find(|(_, s)| s.proved > 0)
            .map(|(id, _)| *id);
        let attempted = report
            .per_prover
            .iter()
            .map(|(id, s)| (*id, s.attempted))
            .collect();
        let skipped = report
            .per_prover
            .iter()
            .filter(|(_, s)| s.skipped > 0)
            .map(|(id, s)| (*id, s.skipped))
            .collect();
        let budget_aborts = report
            .per_prover
            .iter()
            .filter(|(_, s)| s.budget_aborts > 0)
            .map(|(id, s)| (*id, s.budget_aborts))
            .collect();
        self.cache.insert(
            key,
            CachedOutcome {
                proved: report.proved_sequents == 1,
                prover,
                attempted,
                skipped,
                budget_aborts,
                rescued: report.rescue_retries > 0,
                from_disk: false,
            },
        );
        report
    }

    /// Materialises a per-obligation report from a cached verdict: the attempted and
    /// skipped counts of the original run are replayed (with zero time) and the
    /// original prover is credited, so Figure 7/15 attributions agree with an uncached
    /// run.
    fn report_from_cache(
        &self,
        obligation: &ProofObligation,
        outcome: CachedOutcome,
    ) -> VerificationReport {
        let mut report = VerificationReport {
            total_sequents: 1,
            cache_hits: 1,
            cache_disk_hits: outcome.from_disk as usize,
            ..VerificationReport::default()
        };
        for (prover, attempted) in &outcome.attempted {
            report.per_prover.entry(*prover).or_default().attempted += attempted;
        }
        for (prover, skipped) in &outcome.skipped {
            report.per_prover.entry(*prover).or_default().skipped += skipped;
        }
        for (prover, aborts) in &outcome.budget_aborts {
            report.per_prover.entry(*prover).or_default().budget_aborts += aborts;
        }
        report.rescue_retries = outcome.rescued as usize;
        if outcome.proved {
            report.proved_sequents = 1;
            if let Some(prover) = outcome.prover {
                let stats = report.per_prover.entry(prover).or_default();
                stats.proved += 1;
                stats.cache_hits += 1;
            }
        } else {
            report.unproved.push(obligation.sequent.describe());
        }
        report
    }

    /// The prover order for one attempted sequent: with routing *and* budgets on,
    /// the measured-cost permutation of the global order (identical to the static
    /// route until the model calibrates); with routing alone, the hand-tuned static
    /// route; otherwise the global order itself.
    fn attempt_order(&self, features: &SequentFeatures) -> Vec<ProverId> {
        if self.config.route && self.config.budgets {
            router::route_with_model(features, &self.config.order, &self.model)
        } else if self.config.route {
            router::route(features, &self.config.order)
        } else {
            self.config.order.clone()
        }
    }

    /// Attempts one obligation with each prover in (routed) order; the first success
    /// wins. `hinted` is the inlined hint-filtered sequent (tried first when present)
    /// and `full` the inlined full sequent. `memo` carries the failure-memo handles
    /// when the cache is enabled: attempts the negative cache already knows dead are
    /// skipped (counted per prover in [`ProverStats::skipped`]), and fresh failures
    /// are recorded.
    fn prove_one_uncached(
        &self,
        obligation: &ProofObligation,
        context: &ProverContext,
        hinted: Option<&jahob_logic::Sequent>,
        full: &jahob_logic::Sequent,
        memo: Option<&FailureMemo<'_>>,
    ) -> VerificationReport {
        let mut report = VerificationReport {
            total_sequents: 1,
            ..VerificationReport::default()
        };
        let sequent = hinted.unwrap_or(full);
        // Each phase's attempt site key was built once in `prove_one`; every prover of
        // the phase borrows the same key (the failure map stores per-prover bits).
        let phase_memo = memo.map(|m| (m.cache, m.hinted.as_ref().unwrap_or(&m.full)));
        // With budgets on, MONA and FOL run with feature-dependent fuel; every
        // aborted (prover, phase) pair is remembered so the rescue pass below can
        // retry exactly those attempts without fuel.
        let budgeted = self.config.budgets;
        let mut aborted_hinted: Vec<ProverId> = Vec::new();
        if self.cascade(
            &mut report,
            sequent,
            obligation,
            context,
            phase_memo,
            false,
            budgeted,
            &mut aborted_hinted,
            None,
        ) {
            return report;
        }
        // When hints narrowed the sequent and nothing succeeded, retry the provers with
        // the full assumption set — still instantiated — because the hints are advice,
        // not a restriction. With instantiation-only hints the two sequents coincide
        // and the retry would re-run an identical cascade, so it is skipped.
        let retry = hinted.filter(|h| *h != full);
        let mut aborted_full: Vec<ProverId> = Vec::new();
        if retry.is_some() {
            let retry_memo = memo.map(|m| (m.cache, &m.full));
            if self.cascade(
                &mut report,
                full,
                obligation,
                context,
                retry_memo,
                true,
                budgeted,
                &mut aborted_full,
                None,
            ) {
                return report;
            }
        }
        // Rescue pass: a budgeted cascade that failed with aborts proved nothing —
        // but the aborted attempts have *unknown* verdicts, so completeness demands
        // re-running exactly them without fuel. Completed budgeted attempts are not
        // retried: their verdicts are already identical to unbudgeted runs.
        if budgeted && (!aborted_hinted.is_empty() || !aborted_full.is_empty()) {
            report.rescue_retries = 1;
            if !aborted_hinted.is_empty()
                && self.cascade(
                    &mut report,
                    sequent,
                    obligation,
                    context,
                    phase_memo,
                    false,
                    false,
                    &mut Vec::new(),
                    Some(&aborted_hinted),
                )
            {
                return report;
            }
            if !aborted_full.is_empty() {
                let retry_memo = memo.map(|m| (m.cache, &m.full));
                if self.cascade(
                    &mut report,
                    full,
                    obligation,
                    context,
                    retry_memo,
                    true,
                    false,
                    &mut Vec::new(),
                    Some(&aborted_full),
                ) {
                    return report;
                }
            }
        }
        // An unproved obligation whose cascade contained crashes or deadline stops is
        // attributed: the reader of the report can tell "no prover could prove this"
        // apart from "the provers that might have proved this were stopped". Faults
        // off and no deadline → the suffix never appears and the line is byte-for-byte
        // what it always was.
        let mut description = obligation.sequent.describe();
        let (crashes, deadlines) = (report.crashes(), report.deadline_aborts());
        if crashes > 0 || deadlines > 0 {
            description.push_str(&format!(
                " [contained: {crashes} crashed, {deadlines} deadline-stopped]"
            ));
        }
        report.unproved.push(description);
        report
    }

    /// Runs one prover cascade over `sequent`, accumulating per-prover stats into
    /// `report`; returns `true` on the first success. With `memo` present (the shared
    /// cache and this phase's attempt-site key), attempts known to fail are skipped
    /// and fresh failures recorded (the interactive prover is exempt: its verdict
    /// depends on the obligation's label path and the lemma library, not on the
    /// sequent alone).
    ///
    /// With `budgeted` set, MONA and FOL run under the feature-dependent fuel of
    /// [`fuel_for`]; an attempt that exhausts its fuel is *aborted* — counted in
    /// [`ProverStats::budget_aborts`], pushed onto `aborted`, and crucially **not**
    /// recorded in the failure memo, because its verdict is unknown. Attempts that
    /// complete within budget fail exactly as they would unbudgeted and are memoized
    /// as usual. `only` restricts the cascade to the listed provers — the rescue
    /// pass uses it to retry precisely the aborted attempts without fuel.
    #[allow(clippy::too_many_arguments)]
    fn cascade(
        &self,
        report: &mut VerificationReport,
        sequent: &jahob_logic::Sequent,
        obligation: &ProofObligation,
        context: &ProverContext,
        memo: Option<(&SequentCache, &FailureKey)>,
        skip_syntactic: bool,
        budgeted: bool,
        aborted: &mut Vec<ProverId>,
        only: Option<&[ProverId]>,
    ) -> bool {
        // One lock + hash fetches the phase's whole failure mask; each prover then
        // tests its own bit locally.
        let failed_mask = memo.map_or(0, |(cache, site)| cache.failed_mask(site));
        let features = SequentFeatures::of(sequent);
        let bucket = features.bucket();
        let fuel = budgeted.then(|| fuel_for(&features));
        for prover in self.attempt_order(&features) {
            if skip_syntactic && matches!(prover, ProverId::Syntactic) {
                continue;
            }
            if only.is_some_and(|list| !list.contains(&prover)) {
                continue;
            }
            let memoized = match memo {
                Some((cache, site)) if prover != ProverId::Interactive => Some((cache, site)),
                _ => None,
            };
            if let Some((cache, _)) = memoized {
                if cache::mask_contains(failed_mask, prover) {
                    cache.note_failure_hit();
                    report.per_prover.entry(prover).or_default().skipped += 1;
                    continue;
                }
            }
            let start = Instant::now();
            let deadline = self
                .config
                .deadline_ms
                .map(|ms| start + Duration::from_millis(ms));
            let outcome = contained_attempt(
                &self.faults,
                prover,
                sequent,
                obligation,
                context,
                fuel.as_ref(),
                deadline,
            );
            let elapsed = start.elapsed();
            if self.config.budgets {
                self.model.observe(
                    prover,
                    bucket,
                    elapsed.as_nanos() as u64,
                    outcome == AttemptOutcome::Proved,
                );
            }
            let stats = report.per_prover.entry(prover).or_default();
            stats.attempted += 1;
            stats.time += elapsed;
            match outcome {
                AttemptOutcome::Proved => {
                    stats.proved += 1;
                    report.proved_sequents = 1;
                    return true;
                }
                AttemptOutcome::BudgetAborted => {
                    // Unknown verdict: no failure memo, but remember the attempt so
                    // the rescue pass can rerun it without fuel.
                    stats.budget_aborts += 1;
                    aborted.push(prover);
                }
                AttemptOutcome::Crashed => {
                    // Unknown verdict, like a budget abort — but not rescued (a
                    // rerun would crash again) and never memoized. The cascade just
                    // moves on to the next prover.
                    stats.crashes += 1;
                }
                AttemptOutcome::DeadlineExceeded => {
                    // The attempt hit the configured wall-clock deadline; its
                    // verdict is unknown, so it is neither memoized nor rescued
                    // (rescue exists for fuel aborts, whose reruns are bounded —
                    // rerunning a deadline stop would just burn the deadline again).
                    stats.deadline_aborts += 1;
                }
                AttemptOutcome::Failed => {
                    if let Some((cache, site)) = memoized {
                        cache.record_failure(site, prover);
                    }
                }
            }
        }
        false
    }
}

/// The failure-memo handles of one obligation's cascade: the shared cache plus the
/// attempt-site keys of the two sequents the cascade can attempt (the hinted variant,
/// then the full sequent on retry), each built once per obligation.
struct FailureMemo<'a> {
    cache: &'a SequentCache,
    full: FailureKey,
    hinted: Option<FailureKey>,
}

/// The set/function classification of the free variables of `sequent` under `context`
/// — part of every cache key, because the classification steers the SMT/FOL
/// translations.
fn var_classes(context: &ProverContext, sequent: &jahob_logic::Sequent) -> String {
    let mut classes = String::new();
    for v in &sequent.free_vars() {
        if context.set_vars.contains(v) {
            classes.push_str("S:");
            classes.push_str(v);
            classes.push(';');
        }
        if context.fun_vars.contains(v) {
            classes.push_str("F:");
            classes.push_str(v);
            classes.push(';');
        }
    }
    classes
}

/// The verdict of one prover attempt. `Failed` is a completed negative run
/// — identical to what an unbudgeted run would conclude, so it may be memoized.
/// `BudgetAborted` means the attempt ran out of fuel with the verdict still unknown;
/// it must be neither memoized nor treated as a failure. The two containment
/// outcomes are likewise unknown-verdict stops: `Crashed` is a prover panic caught
/// at the attempt boundary, `DeadlineExceeded` a cooperative wall-clock stop
/// ([`DispatcherConfig::deadline_ms`]). Neither is memoized, neither is rescued —
/// a crash would just crash again, and a deadline exists precisely to bound the
/// attempt's wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptOutcome {
    Proved,
    Failed,
    BudgetAborted,
    Crashed,
    DeadlineExceeded,
}

/// Cooperative fuel for one budgeted cascade: deterministic work units, not wall
/// time, so abort decisions are reproducible across runs and machines.
#[derive(Debug, Clone, Copy)]
struct FuelBudget {
    /// MONA automaton-construction work ([`jahob_mona::MonaOptions::max_work`]).
    mona_work: u64,
    /// MONA per-automaton state cap ([`jahob_mona::MonaOptions::max_states`]).
    mona_states: usize,
    /// FOL given-clause iterations ([`jahob_folp::ResolutionLimits::max_iterations`]).
    fol_iterations: usize,
    /// SMT ground-search steps ([`jahob_smt::GroundLimits::max_steps`] — DPLL
    /// decisions + conflicts). The ground search is deterministic, so a budgeted run
    /// that completes (`Sat`/`Unsat`) is bit-identical to the unbudgeted verdict; only
    /// a truncated search (`Unknown`) becomes a budget abort.
    smt_steps: usize,
}

/// The feature-dependent fuel policy. Reachability sequents legitimately build large
/// automata and quantified sequents legitimately saturate longer, so those buckets
/// keep generous budgets; everything else gets fuel sized so that the provers'
/// *successful* runs fit comfortably while hopeless runs abort at a small fraction
/// of their unbudgeted cost. Aborts are always rescued unbudgeted, so these
/// constants trade only time, never verdicts.
///
/// The SMT step budget is the big saver on the §7 suite: every winning ground search
/// there closes after unit propagation alone (a single DPLL step), while the searches
/// that end in a countermodel (a genuine SMT failure some later prover then
/// discharges) burn hundreds of decision steps at tens of milliseconds per attempt.
fn fuel_for(features: &SequentFeatures) -> FuelBudget {
    let (mona_work, mona_states) = if features.reachability_atoms > 0 {
        (2_000_000, 768)
    } else {
        (150_000, 256)
    };
    let fol_iterations = if features.quantifiers > 0 { 120 } else { 60 };
    FuelBudget {
        mona_work,
        mona_states,
        fol_iterations,
        smt_steps: 32,
    }
}

/// Runs a single prover on a sequent. With `fuel` present, MONA and FOL run under
/// its limits and report [`AttemptOutcome::BudgetAborted`] when they hit them;
/// without it they run with their standing (effectively unlimited) budgets, and a
/// resource stop is reported as a plain failure exactly as before.
///
/// With `deadline` present, the long-running provers (MONA, SMT, FOL) additionally
/// check the wall clock at their existing fuel sites and stop with
/// [`AttemptOutcome::DeadlineExceeded`] once it passes. The deadline check is
/// independent of `fuel`: it fires with budgets off too. The syntactic, BAPA and
/// interactive provers have no long-running loops and are exempt.
fn attempt(
    prover: ProverId,
    sequent: &jahob_logic::Sequent,
    obligation: &ProofObligation,
    context: &ProverContext,
    fuel: Option<&FuelBudget>,
    deadline: Option<Instant>,
) -> AttemptOutcome {
    let verdict = |proved: bool| {
        if proved {
            AttemptOutcome::Proved
        } else {
            AttemptOutcome::Failed
        }
    };
    match prover {
        ProverId::Syntactic => verdict(syntactic_prover(sequent)),
        ProverId::Mona => {
            let mut opts = jahob_mona::MonaOptions::default();
            if let Some(fuel) = fuel {
                opts.max_work = fuel.mona_work;
                opts.max_states = fuel.mona_states;
            }
            opts.deadline = deadline;
            let result = jahob_mona::prove_sequent(sequent, &opts);
            if result.proved {
                AttemptOutcome::Proved
            } else if result.deadline_exceeded {
                AttemptOutcome::DeadlineExceeded
            } else if fuel.is_some() && result.budget_exhausted {
                AttemptOutcome::BudgetAborted
            } else {
                AttemptOutcome::Failed
            }
        }
        ProverId::Smt => {
            let mut opts = jahob_smt::SmtOptions {
                set_vars: context.set_vars.clone(),
                fun_vars: context.fun_vars.clone(),
                ..jahob_smt::SmtOptions::default()
            };
            if let Some(fuel) = fuel {
                opts.ground_limits.max_steps = fuel.smt_steps.min(opts.ground_limits.max_steps);
            }
            opts.ground_limits.deadline = deadline;
            let result = jahob_smt::prove_sequent(sequent, &opts);
            if result.proved {
                AttemptOutcome::Proved
            } else if result.outcome == jahob_smt::GroundOutcome::Deadline {
                AttemptOutcome::DeadlineExceeded
            } else if fuel.is_some() && result.outcome == jahob_smt::GroundOutcome::Unknown {
                // `Unknown` is a truncated search (step budget or clause cap), not a
                // countermodel; the deterministic DPLL search means any *completed*
                // budgeted verdict equals the unbudgeted one.
                AttemptOutcome::BudgetAborted
            } else {
                AttemptOutcome::Failed
            }
        }
        ProverId::Fol => {
            let mut opts = jahob_folp::FolOptions::default();
            opts.translate.set_vars = context.set_vars.clone();
            opts.translate.fun_vars = context.fun_vars.clone();
            // Keep the resolution budget modest: the FOL prover is a fallback behind the
            // SMT prover in the default order.
            opts.limits.max_iterations = fuel.map_or(300, |f| f.fol_iterations.min(300));
            opts.limits.deadline = deadline;
            let result = jahob_folp::prove_sequent(sequent, &opts);
            if result.proved {
                AttemptOutcome::Proved
            } else if result.deadline_exceeded() {
                AttemptOutcome::DeadlineExceeded
            } else if fuel.is_some() && result.resource_limited() {
                AttemptOutcome::BudgetAborted
            } else {
                AttemptOutcome::Failed
            }
        }
        ProverId::Bapa => {
            verdict(jahob_bapa::prove_sequent(sequent, &jahob_bapa::BapaOptions::default()).proved)
        }
        ProverId::Interactive => verdict(context.lemmas.contains(obligation)),
    }
}

/// Runs one prover attempt inside the fault-containment boundary: any injected fault
/// for `prover` fires first (so delays count against the attempt's own deadline),
/// and the whole attempt runs under [`std::panic::catch_unwind`]. A panicking prover
/// — injected or genuine — becomes [`AttemptOutcome::Crashed`] instead of unwinding
/// through the dispatcher (and, under threaded dispatch, aborting the process).
/// Injected panics are silenced by the quiet panic hook; genuine prover panics still
/// print their message before being contained.
fn contained_attempt(
    faults: &FaultPlane,
    prover: ProverId,
    sequent: &jahob_logic::Sequent,
    obligation: &ProofObligation,
    context: &ProverContext,
    fuel: Option<&FuelBudget>,
    deadline: Option<Instant>,
) -> AttemptOutcome {
    faults::install_quiet_panic_hook();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        faults.prover_attempt(prover);
        attempt(prover, sequent, obligation, context, fuel, deadline)
    }));
    faults::clear_injected_panic_marker();
    match outcome {
        Ok(verdict) => verdict,
        Err(_) => AttemptOutcome::Crashed,
    }
}

/// The syntactic prover (§6.1): trivial validity checks that discharge a large share of
/// the sequents (null-check obligations repeated along paths, invariants re-established
/// verbatim, and so on).
///
/// The checks are applied twice: once on the lightly simplified sequent, and once after
/// inlining the definitional equalities of generated variables and canonicalising
/// commutative operators — the "simple syntactic transformations that preserve validity"
/// the paper alludes to. Both passes are sound: they only rewrite the sequent into
/// equivalent form and then look for the goal among the assumptions.
pub fn syntactic_prover(sequent: &jahob_logic::Sequent) -> bool {
    if syntactic_check(sequent, false) {
        return true;
    }
    let inlined = inline_definitions(sequent);
    syntactic_check(&inlined, true)
}

/// One pass of the syntactic validity checks. When `canonical` is set, formulas are
/// compared modulo commutativity/associativity of `&`, `|`, `Un`, `Int`, `+`, `=` and
/// membership expansion; otherwise only simplification and comment stripping are applied.
fn syntactic_check(sequent: &jahob_logic::Sequent, canonical: bool) -> bool {
    let norm = |f: &Form| -> Form {
        if canonical {
            canonicalize(f)
        } else {
            simplify(&strip_comments_deep(f))
        }
    };
    let goal = norm(&sequent.goal);
    if goal.is_true() {
        return true;
    }
    // Reflexive equality.
    if let Some((l, r)) = goal.as_eq() {
        if l == r {
            return true;
        }
    }
    let assumptions: Vec<Form> = sequent.assumptions.iter().map(norm).collect();
    // A false assumption proves anything.
    if assumptions.iter().any(Form::is_false) {
        return true;
    }
    // The goal (or each of its conjuncts) appears among the assumptions, possibly as a
    // conjunct of an assumption, possibly as a symmetric equality.
    let mut available: BTreeSet<Form> = BTreeSet::new();
    for a in &assumptions {
        for c in a.conjuncts() {
            available.insert(c.clone());
            if let Some((l, r)) = c.as_eq() {
                available.insert(Form::eq(r.clone(), l.clone()));
            }
        }
    }
    goal.conjuncts().iter().all(|c| {
        available.contains(*c) || c.as_eq().map(|(l, r)| l == r).unwrap_or(false) || c.is_true()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::{parse_form, Sequent};
    use jahob_vcgen::Hint;

    fn ob(assumptions: &[&str], goal: &str) -> ProofObligation {
        ProofObligation {
            sequent: Sequent::new(
                assumptions
                    .iter()
                    .map(|a| parse_form(a).expect("parse"))
                    .collect(),
                parse_form(goal).expect("parse"),
            ),
            hints: Vec::new(),
        }
    }

    #[test]
    fn syntactic_prover_discharges_trivial_sequents() {
        assert!(syntactic_prover(&ob(&["x ~= null"], "x ~= null").sequent));
        assert!(syntactic_prover(&ob(&["p & q"], "q").sequent));
        assert!(syntactic_prover(&ob(&["a = b"], "b = a").sequent));
        assert!(syntactic_prover(&ob(&["False"], "anything = 1").sequent));
        assert!(syntactic_prover(&ob(&[], "x = x").sequent));
        assert!(!syntactic_prover(&ob(&["p | q"], "p").sequent));
    }

    #[test]
    fn dispatcher_routes_to_the_right_prover() {
        let dispatcher = Dispatcher::new();
        let context = ProverContext::default();
        // Syntactic.
        let r = dispatcher.prove_one(&ob(&["p"], "p"), &context);
        assert_eq!(r.per_prover[&ProverId::Syntactic].proved, 1);
        // Arithmetic goes to the SMT prover.
        let r = dispatcher.prove_one(&ob(&["x = y + 1", "0 <= y"], "1 <= x"), &context);
        assert!(r.succeeded());
        assert_eq!(r.per_prover[&ProverId::Smt].proved, 1);
        // Cardinality goes to BAPA.
        let r = dispatcher.prove_one(
            &ob(
                &[
                    "size = card content",
                    "x ~: content",
                    "content1 = content Un {x}",
                ],
                "size + 1 = card content1",
            ),
            &context,
        );
        assert!(r.succeeded());
        assert_eq!(r.per_prover[&ProverId::Bapa].proved, 1);
    }

    #[test]
    fn unproved_obligations_are_reported() {
        let dispatcher = Dispatcher::new();
        let context = ProverContext::default();
        let r = dispatcher.prove_one(&ob(&["p"], "q"), &context);
        assert!(!r.succeeded());
        assert_eq!(r.unproved.len(), 1);
    }

    #[test]
    fn interactive_lemmas_are_honoured() {
        let dispatcher = Dispatcher::new();
        let mut context = ProverContext::default();
        let hard = ob(&["complicated : thing"], "deep_theorem = True");
        context.lemmas.register(LemmaLibrary::key_of(&hard));
        let r = dispatcher.prove_one(&hard, &context);
        assert!(r.succeeded());
        assert_eq!(r.per_prover[&ProverId::Interactive].proved, 1);
    }

    #[test]
    fn hints_filter_assumptions_but_do_not_lose_proofs() {
        let dispatcher = Dispatcher::new();
        let context = ProverContext::default();
        let mut o = ob(
            &["comment ''key'' (a = b)", "comment ''noise'' (c : d)"],
            "b = a",
        );
        o.hints = vec![Hint::label("key")];
        assert!(dispatcher.prove_one(&o, &context).succeeded());
        // A hint pointing at the wrong assumption still succeeds via the full-sequent
        // retry.
        o.hints = vec![Hint::label("noise")];
        assert!(dispatcher.prove_one(&o, &context).succeeded());
    }

    #[test]
    fn batch_and_parallel_runs_agree() {
        let obs = vec![
            ob(&["p"], "p"),
            ob(&["x = y", "y = z"], "x = z"),
            ob(&["0 <= n"], "0 <= n + 1"),
            ob(&["p"], "q"),
        ];
        let context = ProverContext::default();
        let sequential = Dispatcher::new().prove_obligations(&obs, &context);
        let mut parallel = Dispatcher::new();
        parallel.config.threads = 3;
        let par = parallel.prove_obligations(&obs, &context);
        assert_eq!(sequential.proved_sequents, 3);
        assert_eq!(par.proved_sequents, 3);
        assert_eq!(sequential.total_sequents, par.total_sequents);
    }

    #[test]
    fn report_renders_figure7_style_output() {
        let obs = vec![ob(&["p"], "p"), ob(&["x = y"], "y = x")];
        let context = ProverContext::default();
        let report = Dispatcher::new().prove_obligations(&obs, &context);
        let text = report.render("List.add");
        assert!(text.contains("Built-in checker proved"));
        assert!(text.contains("A total of 2 sequents out of 2 proved."));
        assert!(text.contains("Verification SUCCEEDED"));
    }

    #[test]
    fn tagged_batch_preserves_per_method_attribution_and_contexts() {
        // Two "methods" with different contexts in one batch: the cardinality method
        // classifies `content` as a set (required for BAPA/SMT translation options to
        // line up with a per-method run), the propositional one proves syntactically.
        let mut card_context = ProverContext::default();
        card_context.set_vars.insert("content".into());
        let mut batch = ObligationBatch::new();
        batch.push_method(
            "S",
            "List.add",
            Arc::new(card_context),
            vec![ob(
                &["size = card content", "x ~: content"],
                "size + 1 = card (content Un {x})",
            )],
        );
        batch.push_method(
            "S",
            "List.isEmpty",
            Arc::new(ProverContext::default()),
            vec![ob(&["p"], "p"), ob(&["p"], "q")],
        );
        let dispatcher = Dispatcher::new();
        let report = dispatcher.prove_all(&batch);
        assert_eq!(dispatcher.batches_dispatched(), 1);
        assert_eq!(report.per_obligation.len(), 3);
        let tags: Vec<(&str, usize)> = report
            .per_obligation
            .iter()
            .map(|t| (t.tag.method.as_str(), t.tag.index))
            .collect();
        assert_eq!(
            tags,
            vec![("List.add", 0), ("List.isEmpty", 0), ("List.isEmpty", 1)]
        );
        assert!(report.per_obligation[0].report.succeeded());
        assert!(report.per_obligation[1].report.succeeded());
        assert!(!report.per_obligation[2].report.succeeded());
        let aggregate = report.aggregate();
        assert_eq!(aggregate.total_sequents, 3);
        assert_eq!(aggregate.proved_sequents, 2);
        assert_eq!(aggregate.unproved.len(), 1);
    }

    #[test]
    fn cache_keys_on_the_per_obligation_context() {
        // The same sequent under two contexts that classify its free variables
        // differently must not share a cache entry: the classification steers the
        // SMT/FOL translations, so a cross-context hit could be unsound.
        let o = ob(&["s = t"], "card s = card t");
        let mut set_context = ProverContext::default();
        set_context.set_vars.insert("s".into());
        set_context.set_vars.insert("t".into());
        let mut batch = ObligationBatch::new();
        batch.push_method("", "a", Arc::new(set_context), vec![o.clone()]);
        batch.push_method("", "b", Arc::new(ProverContext::default()), vec![o]);
        // Pinned config: under `Dispatcher::new()` the JAHOB_* env overrides apply, and
        // with threads > 1 two workers can race the same cold key (both miss), making
        // the exact hit/miss counts below indeterminate.
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().build());
        dispatcher.prove_all(&batch);
        let stats = dispatcher.cache().stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 2),
            "distinct contexts must produce distinct cache keys"
        );
        // The same context twice, on the other hand, hits.
        let o = ob(&["s = t"], "card s = card t");
        let mut batch = ObligationBatch::new();
        batch.push_method("", "a", Arc::new(ProverContext::default()), vec![o.clone()]);
        batch.push_method("", "b", Arc::new(ProverContext::default()), vec![o]);
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().build());
        let report = dispatcher.prove_all(&batch);
        assert_eq!(report.aggregate().cache_hits, 1);
    }

    #[test]
    fn router_miss_falls_back_to_the_global_cascade() {
        // Pure arithmetic scores both MONA and BAPA hopeless (no membership atoms, no
        // set algebra), so with `order = [Mona, Bapa]` the routed primary cascade is
        // empty and both provers run in the fallback tail — where BAPA, handed a
        // sequent it can actually decide (pure Presburger), still proves it. A router
        // that *dropped* hopeless provers instead of demoting them would report this
        // sequent unproved.
        let mut config = DispatcherConfig::builder().cache(CacheMode::Off).build();
        config.order = vec![ProverId::Mona, ProverId::Bapa];
        config.route = true;
        let dispatcher = Dispatcher::with_config(config);
        let o = ob(&["0 <= x"], "0 <= x + 1");
        let report = dispatcher.prove_one(&o, &ProverContext::default());
        assert!(
            report.succeeded(),
            "fallback cascade must still run on a router miss: {report:?}"
        );
        assert_eq!(report.per_prover[&ProverId::Bapa].proved, 1);
        // And the routed run proves exactly what the unrouted one does.
        let mut unrouted = DispatcherConfig::builder().cache(CacheMode::Off).build();
        unrouted.order = vec![ProverId::Mona, ProverId::Bapa];
        unrouted.route = false;
        let baseline = Dispatcher::with_config(unrouted).prove_one(&o, &ProverContext::default());
        assert_eq!(report.proved_sequents, baseline.proved_sequents);
    }

    #[test]
    fn routing_reorders_but_never_changes_verdicts() {
        let obs = vec![
            ob(&["p"], "p"),
            ob(&["x = y + 1", "0 <= y"], "1 <= x"),
            ob(
                &[
                    "size = card content",
                    "x ~: content",
                    "content1 = content Un {x}",
                ],
                "size + 1 = card content1",
            ),
            ob(&["p"], "q"),
        ];
        let context = ProverContext::default();
        let mut routed_config = DispatcherConfig::builder().cache(CacheMode::Off).build();
        routed_config.route = true;
        let mut unrouted_config = routed_config.clone();
        unrouted_config.route = false;
        let routed = Dispatcher::with_config(routed_config).prove_obligations(&obs, &context);
        let unrouted = Dispatcher::with_config(unrouted_config).prove_obligations(&obs, &context);
        assert_eq!(routed.proved_sequents, unrouted.proved_sequents);
        assert_eq!(routed.unproved, unrouted.unproved);
        // Routing spares MONA the cardinality sequent it cannot decide: fewer MONA
        // attempts than the fixed global order pays.
        let mona_attempts = |r: &VerificationReport| {
            r.per_prover
                .get(&ProverId::Mona)
                .map(|s| s.attempted)
                .unwrap_or(0)
        };
        assert!(
            mona_attempts(&routed) < mona_attempts(&unrouted),
            "routed: {routed:?}\nunrouted: {unrouted:?}"
        );
    }

    #[test]
    fn failure_memo_skips_repeated_dead_attempts() {
        // Two obligations share the same (unprovable) full sequent but carry different
        // hints, so their verdict cache keys differ and the second misses the positive
        // cache — yet its full-sequent retry skips every prover the first obligation
        // already saw fail on that canonical sequent.
        let mut first = ob(&["comment ''a'' (p = q)", "comment ''b'' (q = s)"], "r = t");
        first.hints = vec![Hint::label("a")];
        let mut second = first.clone();
        second.hints = vec![Hint::label("b")];
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().build());
        let context = ProverContext::default();
        let r1 = dispatcher.prove_one(&first, &context);
        assert!(!r1.succeeded());
        assert_eq!(r1.failure_skips(), 0, "first cascade has nothing to skip");
        let r2 = dispatcher.prove_one(&second, &context);
        assert!(!r2.succeeded());
        assert!(
            r2.failure_skips() >= 3,
            "the full-sequent retry must skip the memoized failures: {r2:?}"
        );
        assert!(dispatcher.cache().stats().failure_hits >= 3);
        // Skipped attempts are not counted as attempted.
        for (id, stats) in &r2.per_prover {
            assert!(
                stats.skipped == 0 || stats.attempted < r1.per_prover[id].attempted,
                "{id}: skipped attempts must reduce the attempted count"
            );
        }
    }

    #[test]
    fn jahob_threads_invalid_value_warns_and_keeps_the_default() {
        assert_eq!(parse_count_knob("JAHOB_THREADS", "4"), Ok(4));
        assert_eq!(parse_count_knob("JAHOB_THREADS", "0"), Ok(1), "clamped");
        let warning = parse_count_knob("JAHOB_THREADS", "many").unwrap_err();
        assert!(warning.contains("JAHOB_THREADS"), "{warning}");
        assert!(warning.contains("\"many\""), "{warning}");
        assert!(warning.starts_with("warning:"), "{warning}");
    }

    #[test]
    fn jahob_granularity_invalid_value_warns_and_keeps_the_default() {
        assert_eq!(parse_count_knob("JAHOB_GRANULARITY", " 3 "), Ok(3));
        let warning = parse_count_knob("JAHOB_GRANULARITY", "-2").unwrap_err();
        assert!(warning.contains("JAHOB_GRANULARITY"), "{warning}");
        assert!(warning.contains("\"-2\""), "{warning}");
    }

    #[test]
    fn jahob_cache_invalid_value_warns_and_keeps_the_default() {
        assert_eq!(parse_switch_knob("JAHOB_CACHE", "on"), Ok(true));
        assert_eq!(parse_switch_knob("JAHOB_CACHE", "NO"), Ok(false));
        let warning = parse_switch_knob("JAHOB_CACHE", "ture").unwrap_err();
        assert!(warning.contains("JAHOB_CACHE"), "{warning}");
        assert!(warning.contains("\"ture\""), "{warning}");
        assert!(warning.starts_with("warning:"), "{warning}");
    }

    #[test]
    fn jahob_route_invalid_value_warns_and_keeps_the_default() {
        assert_eq!(parse_switch_knob("JAHOB_ROUTE", "0"), Ok(false));
        let warning = parse_switch_knob("JAHOB_ROUTE", "enabled").unwrap_err();
        assert!(warning.contains("JAHOB_ROUTE"), "{warning}");
        assert!(warning.contains("\"enabled\""), "{warning}");
    }

    #[test]
    fn jahob_budgets_invalid_value_warns_and_keeps_the_default() {
        assert_eq!(parse_switch_knob("JAHOB_BUDGETS", "off"), Ok(false));
        assert_eq!(parse_switch_knob("JAHOB_BUDGETS", "1"), Ok(true));
        let warning = parse_switch_knob("JAHOB_BUDGETS", "fast").unwrap_err();
        assert!(warning.contains("JAHOB_BUDGETS"), "{warning}");
        assert!(warning.contains("\"fast\""), "{warning}");
    }

    #[test]
    fn budgets_are_part_of_the_cache_fingerprint() {
        // Budgets change attempt counts and attribution (never verdicts), and cached
        // outcomes replay those counts — so a budgets-on entry must not answer a
        // budgets-off lookup.
        let on = DispatcherConfig::builder().build();
        let off = DispatcherConfig::builder().budgets(false).build();
        assert!(on.budgets && !off.budgets);
        assert_ne!(on.fingerprint(), off.fingerprint());
        assert!(
            on.fingerprint().contains("budgets=true"),
            "{}",
            on.fingerprint()
        );
    }

    /// An unprovable sequent whose set/quantifier structure blows MONA's non-reach
    /// fuel (and FOL's quantified iteration fuel) while still completing unbudgeted.
    fn fuel_hungry_unprovable() -> ProofObligation {
        ob(
            &[
                "ALL x. x : a --> x : b",
                "ALL x. x : b --> x : c",
                "ALL x. x : c --> x : d",
                "ALL x. x : d --> x : e",
                "ALL x. x : e --> x : f",
            ],
            "ALL x. x : a --> x : g",
        )
    }

    /// A valid sequent only MONA can prove (the second-order existential is native
    /// WS1S but approximated away by the FOL/SMT translations) whose automaton
    /// exceeds the non-reach fuel — so with budgets on, *only* the unbudgeted
    /// rescue pass can discharge it.
    fn rescue_only_provable() -> ProofObligation {
        ob(
            &[
                "ALL x. x : a --> x : b | x : c",
                "ALL x. x : b --> x : d",
                "ALL x. x : c --> x : d",
                "ALL x. x : d --> x : e",
                "ALL x. x : e --> x : f",
            ],
            "EX s. ALL x. (x : a --> x : s) & (x : s --> x : f)",
        )
    }

    #[test]
    fn fuel_budgets_abort_hopeless_attempts_without_changing_the_verdict() {
        let o = fuel_hungry_unprovable();
        let context = ProverContext::default();
        let on = Dispatcher::with_config(DispatcherConfig::builder().cache(CacheMode::Off).build())
            .prove_one(&o, &context);
        let off = Dispatcher::with_config(
            DispatcherConfig::builder()
                .cache(CacheMode::Off)
                .budgets(false)
                .build(),
        )
        .prove_one(&o, &context);
        assert!(!on.succeeded() && !off.succeeded(), "verdicts must agree");
        assert!(on.budget_aborts() > 0, "the budgets must engage: {on:?}");
        assert_eq!(on.rescue_retries, 1, "aborts + failure = one rescue retry");
        assert_eq!(off.budget_aborts(), 0, "budgets off never aborts");
        assert_eq!(off.rescue_retries, 0, "budgets off never rescues");
        // The budgeted run pays strictly less prover time on the aborted attempts
        // only when they abort early; what it must never do is attempt fewer
        // *distinct* provers than the unbudgeted run in total (rescue included).
        assert_eq!(on.per_prover.len(), off.per_prover.len());
    }

    #[test]
    fn rescue_pass_recovers_proofs_the_budgets_interrupted() {
        let o = rescue_only_provable();
        let context = ProverContext::default();
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().build());
        let report = dispatcher.prove_one(&o, &context);
        assert!(
            report.succeeded(),
            "the rescue pass must recover the MONA proof: {report:?}"
        );
        assert_eq!(report.per_prover[&ProverId::Mona].proved, 1);
        assert!(report.budget_aborts() > 0, "{report:?}");
        assert_eq!(report.rescue_retries, 1);
        // The rescue pass retried MONA even though its budgeted attempt was aborted
        // moments earlier — proof that aborts are not memoized as failures (a
        // poisoned memo would skip MONA in the rescue cascade and lose the proof).
        // The cached outcome replays the abort counts and the rescued bit too.
        let replay = dispatcher.prove_one(&o, &context);
        assert_eq!(replay.cache_hits, 1, "{replay:?}");
        assert_eq!(replay.budget_aborts(), report.budget_aborts());
        assert_eq!(replay.rescue_retries, 1);
        assert_eq!(replay.per_prover[&ProverId::Mona].proved, 1);
    }

    #[test]
    fn budgets_off_restores_the_pre_cost_model_dispatcher_exactly() {
        // With budgets off the dispatcher must neither collect observations nor
        // consult the model: the cost model stays empty across a whole run.
        let dispatcher = Dispatcher::with_config(
            DispatcherConfig::builder()
                .cache(CacheMode::Off)
                .budgets(false)
                .build(),
        );
        let context = ProverContext::default();
        let r = dispatcher.prove_one(&ob(&["x = y + 1", "0 <= y"], "1 <= x"), &context);
        assert!(r.succeeded());
        assert!(dispatcher.cost_model().is_empty(), "no observations");
    }

    #[test]
    fn budgeted_runs_calibrate_the_cost_model_between_batches() {
        let dispatcher =
            Dispatcher::with_config(DispatcherConfig::builder().cache(CacheMode::Off).build());
        let context = ProverContext::default();
        let obs = vec![ob(&["x = y + 1", "0 <= y"], "1 <= x"), ob(&["p"], "q")];
        let before = dispatcher.cost_model().len();
        assert_eq!(before, 0, "cold model");
        dispatcher.prove_obligations(&obs, &context);
        assert!(
            !dispatcher.cost_model().is_empty(),
            "the batch boundary must commit the observations"
        );
    }

    #[test]
    fn persistent_mode_round_trips_the_cost_model_profile() {
        let dir = std::env::temp_dir().join(format!(
            "jahob-provers-persist-{}-cost-model",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let persistent = || {
            DispatcherConfig::builder()
                .cache(CacheMode::Persistent {
                    dir: dir.clone(),
                    flush: false,
                })
                .build()
        };
        let o = ob(&["x = y + 1", "0 <= y"], "1 <= x");
        let cold = Dispatcher::with_config(persistent());
        assert!(cold.prove_one(&o, &ProverContext::default()).succeeded());
        cold.flush_store().expect("flush");
        assert!(
            costmodel::cost_model_path(&dir).exists(),
            "the profile must be written next to the proof store"
        );
        let warm = Dispatcher::with_config(persistent());
        assert!(
            !warm.cost_model().is_empty(),
            "a fresh dispatcher warm-loads the profile"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inst_hints_discharge_sequents_no_prover_can_instantiate() {
        // The universal relates `card` of arbitrary slices of `content` to `used`:
        // BAPA cannot see through the quantifier, FOL/SMT cannot bridge the `card`
        // arithmetic, and the needed witness `m - excluded` is a compound term the
        // SMT candidate pool never contains. Only the inst hint makes the sequent
        // provable.
        let mut o = ob(
            &["comment ''capBound'' (ALL s. card (content Int s) <= used)"],
            "card (content Int (m - excluded)) <= used + 1",
        );
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().build());
        let context = ProverContext::default();
        let without = dispatcher.prove_one(&o, &context);
        assert!(!without.succeeded(), "unhinted sequent must be unprovable");
        o.hints = vec![Hint::inst("s", parse_form("m - excluded").expect("parse"))];
        let with = dispatcher.prove_one(&o, &context);
        assert!(
            with.succeeded(),
            "inst hint should ground the universal: {with:?}"
        );
    }

    #[test]
    fn inst_hints_survive_the_full_sequent_retry() {
        // A misselecting label hint narrows the hinted sequent to an assumption that
        // cannot carry the proof, so the hinted cascade fails; the full-sequent retry
        // must keep the instantiation (the witness is information no prover can
        // rediscover), or combining a wrong label with a right witness would lose a
        // proof the witness alone delivers.
        let mut o = ob(
            &[
                "comment ''noise'' (c : d)",
                "comment ''capBound'' (ALL s. card (content Int s) <= used)",
            ],
            "card (content Int (m - excluded)) <= used + 1",
        );
        o.hints = vec![
            Hint::label("noise"),
            Hint::inst("s", parse_form("m - excluded").expect("parse")),
        ];
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().build());
        let report = dispatcher.prove_one(&o, &ProverContext::default());
        assert!(
            report.succeeded(),
            "the retry must re-apply the inst hint: {report:?}"
        );
    }

    #[test]
    fn joint_witnesses_ground_a_multi_variable_binder() {
        // Both variables of one universal binder get witnesses; only their joint,
        // fully ground instance is provable (partial instances stay quantified and
        // BAPA drops them).
        let mut o = ob(
            &["comment ''cap'' (ALL s t. card (content Int (s Un t)) <= used)"],
            "card (content Int (a Un b)) <= used + 1",
        );
        o.hints = vec![
            Hint::inst("s", parse_form("a").expect("parse")),
            Hint::inst("t", parse_form("b").expect("parse")),
        ];
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().build());
        let report = dispatcher.prove_one(&o, &ProverContext::default());
        assert!(report.succeeded(), "joint instantiation: {report:?}");
    }

    #[test]
    fn inst_hints_key_the_cache_per_witness() {
        // Two obligations identical up to the witness: the hinted sequent differs, so
        // they must not alias to one cache entry (a hit would replay the wrong
        // verdict). Same obligation + same witness, on the other hand, hits.
        let base = ob(
            &["comment ''capBound'' (ALL s. card (content Int s) <= used)"],
            "card (content Int (m - excluded)) <= used + 1",
        );
        let mut good = base.clone();
        good.hints = vec![Hint::inst("s", parse_form("m - excluded").expect("parse"))];
        let mut bad = base.clone();
        bad.hints = vec![Hint::inst("s", parse_form("excluded").expect("parse"))];
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().build());
        let context = ProverContext::default();
        assert!(dispatcher.prove_one(&good, &context).succeeded());
        let miss = dispatcher.prove_one(&bad, &context);
        assert_eq!(miss.cache_hits, 0, "different witnesses must not alias");
        assert!(
            !miss.succeeded(),
            "the useless witness leaves the goal unprovable"
        );
        let hit = dispatcher.prove_one(&good, &context);
        assert_eq!(hit.cache_hits, 1, "same witness re-hits its own entry");
        assert!(hit.succeeded());
    }

    #[test]
    fn inst_hints_specialise_injected_lemmas_too() {
        // The lemma is itself universally quantified; `by lemma` injects it and
        // `by inst` specialises the injected assumption in the same hint list.
        let mut o = ob(
            &["comment ''noise'' (c : d)"],
            "card (content Int (m - excluded)) <= used + 1",
        );
        o.hints = vec![
            Hint::lemma("capBound"),
            Hint::inst("s", parse_form("m - excluded").expect("parse")),
        ];
        let mut context = ProverContext::default();
        context.lemmas.register_lemma(
            "capBound",
            parse_form("ALL s. card (content Int s) <= used").expect("parse"),
        );
        let dispatcher = Dispatcher::new();
        let report = dispatcher.prove_one(&o, &context);
        assert!(
            report.succeeded(),
            "inst must apply to lemma-injected assumptions: {report:?}"
        );
        // Without the inst hint the injected lemma alone is not enough.
        o.hints = vec![Hint::lemma("capBound")];
        assert!(!dispatcher.prove_one(&o, &context).succeeded());
    }

    #[test]
    fn lemma_hints_let_the_library_discharge_sequents() {
        // The goal follows syntactically from the lemma, but from nothing in the
        // sequent itself: only the injected lemma assumption can discharge it.
        let mut o = ob(&["comment ''noise'' (c : d)"], "null ~: alloc");
        o.hints = vec![Hint::lemma("nullFresh")];
        let dispatcher = Dispatcher::new();
        let without = dispatcher.prove_one(&o, &ProverContext::default());
        assert!(
            !without.succeeded(),
            "unhinted sequent must not be provable"
        );
        let mut context = ProverContext::default();
        context
            .lemmas
            .register_lemma("nullFresh", parse_form("null ~: alloc").expect("parse"));
        let with = dispatcher.prove_one(&o, &context);
        assert!(
            with.succeeded(),
            "lemma hint should inject the library fact"
        );
        // A plain (unprefixed) hint resolves against the library too.
        o.hints = vec![Hint::label("nullFresh")];
        assert!(dispatcher.prove_one(&o, &context).succeeded());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_pinned_shim_matches_the_builder() {
        // External callers may still hold `pinned`; its historical meaning must be
        // exactly what the builder spells out (the differential harness itself now
        // uses the builder directly).
        assert_eq!(
            DispatcherConfig::pinned(4, true, 2),
            DispatcherConfig::builder()
                .threads(4)
                .cache(CacheMode::Memory)
                .granularity(2)
                .build()
        );
        assert_eq!(
            DispatcherConfig::pinned(1, false, 1),
            DispatcherConfig::builder().cache(CacheMode::Off).build()
        );
    }

    #[test]
    fn builder_clamps_counts_and_keeps_explicit_knobs() {
        let config = DispatcherConfig::builder()
            .threads(0)
            .granularity(0)
            .hints(false)
            .route(false)
            .order(vec![ProverId::Smt])
            .build();
        assert_eq!(config.threads, 1, "clamped");
        assert_eq!(config.granularity, 1, "clamped");
        assert!(!config.use_hints);
        assert!(!config.route);
        assert_eq!(config.order, vec![ProverId::Smt]);
        assert_eq!(config.cache, CacheMode::Memory, "default mode");
    }

    #[test]
    fn jahob_cache_dir_invalid_value_warns_and_keeps_the_default() {
        assert_eq!(
            parse_dir_knob("JAHOB_CACHE_DIR", " /tmp/store "),
            Ok(PathBuf::from("/tmp/store"))
        );
        let warning = parse_dir_knob("JAHOB_CACHE_DIR", "  ").unwrap_err();
        assert!(warning.contains("JAHOB_CACHE_DIR"), "{warning}");
        assert!(warning.starts_with("warning:"), "{warning}");
    }

    #[test]
    fn cache_mode_displays_its_shape() {
        assert_eq!(CacheMode::Off.to_string(), "off");
        assert_eq!(CacheMode::Memory.to_string(), "memory");
        let persistent = CacheMode::Persistent {
            dir: PathBuf::from("/tmp/s"),
            flush: true,
        };
        assert_eq!(persistent.to_string(), "persistent(/tmp/s)");
        assert_eq!(
            persistent.persistent_dir(),
            Some(std::path::Path::new("/tmp/s"))
        );
        let no_flush = CacheMode::Persistent {
            dir: PathBuf::from("/tmp/s"),
            flush: false,
        };
        assert_eq!(no_flush.to_string(), "persistent(/tmp/s, no flush on drop)");
        assert!(no_flush.is_enabled() && !CacheMode::Off.is_enabled());
    }

    #[test]
    fn persistent_store_warm_starts_a_second_dispatcher() {
        let dir = std::env::temp_dir().join(format!(
            "jahob-provers-persist-{}-warm-start",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let persistent = |flush: bool| {
            DispatcherConfig::builder()
                .cache(CacheMode::Persistent {
                    dir: dir.clone(),
                    flush,
                })
                .build()
        };
        let o = ob(&["x = y"], "y = x");
        // First process stand-in: prove, then flush explicitly (flush:false keeps the
        // drop silent so the test controls exactly when the store is written).
        let cold = Dispatcher::with_config(persistent(false));
        let first = cold.prove_one(&o, &ProverContext::default());
        assert!(first.succeeded());
        assert_eq!(first.cache_disk_hits, 0, "cold run proves, not replays");
        let written = cold.flush_store().expect("flush");
        assert!(written >= 1, "the verdict must reach the store");
        // Second process stand-in: a fresh dispatcher warm-loads the verdict.
        let warm = Dispatcher::with_config(persistent(false));
        let replay = warm.prove_one(&o, &ProverContext::default());
        assert!(replay.succeeded());
        assert_eq!(replay.cache_hits, 1, "must be answered from the cache");
        assert_eq!(
            replay.cache_disk_hits, 1,
            "and attributed to the disk store"
        );
        assert_eq!(warm.cache().stats().disk_hits, 1);
        // A non-persistent dispatcher flushes nothing and reports so.
        let memory = Dispatcher::with_config(DispatcherConfig::builder().build());
        assert_eq!(memory.flush_store().expect("no-op flush"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_the_last_persistent_dispatcher_flushes_the_store() {
        let dir = std::env::temp_dir().join(format!(
            "jahob-provers-persist-{}-drop-flush",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let o = ob(&["x = y"], "y = x");
        {
            let dispatcher = Dispatcher::with_config(
                DispatcherConfig::builder()
                    .cache(CacheMode::Persistent {
                        dir: dir.clone(),
                        flush: true,
                    })
                    .build(),
            );
            // A clone shares the cache; dropping it must NOT flush yet.
            let clone = dispatcher.clone();
            assert!(clone.prove_one(&o, &ProverContext::default()).succeeded());
            drop(clone);
            assert!(
                !store_path(&dir).exists(),
                "a surviving sharer must keep the store unwritten"
            );
        }
        assert!(
            store_path(&dir).exists(),
            "dropping the last sharer must write the store"
        );
        let warm = Dispatcher::with_config(
            DispatcherConfig::builder()
                .cache(CacheMode::Persistent {
                    dir: dir.clone(),
                    flush: false,
                })
                .build(),
        );
        let replay = warm.prove_one(&o, &ProverContext::default());
        assert_eq!(
            replay.cache_disk_hits, 1,
            "the drop-flushed verdict replays"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jahob_deadline_ms_invalid_value_warns_and_keeps_the_default() {
        assert_eq!(parse_millis_knob("JAHOB_DEADLINE_MS", "250"), Ok(250));
        assert_eq!(parse_millis_knob("JAHOB_DEADLINE_MS", "0"), Ok(0));
        let warning = parse_millis_knob("JAHOB_DEADLINE_MS", "fast").unwrap_err();
        assert!(warning.contains("JAHOB_DEADLINE_MS"), "{warning}");
        assert!(warning.contains("\"fast\""), "{warning}");
        assert!(warning.starts_with("warning:"), "{warning}");
    }

    #[test]
    fn jahob_faults_invalid_value_warns_and_keeps_the_default() {
        let spec = parse_faults_knob("JAHOB_FAULTS", "smt:panic@3;store:io@2").expect("valid spec");
        assert_eq!(spec.to_string(), "smt:panic@3;store:io@2");
        let warning = parse_faults_knob("JAHOB_FAULTS", "smt:reboot").unwrap_err();
        assert!(warning.contains("JAHOB_FAULTS"), "{warning}");
        assert!(warning.contains("\"smt:reboot\""), "{warning}");
        assert!(warning.starts_with("warning:"), "{warning}");
    }

    #[test]
    fn deadline_is_part_of_the_cache_fingerprint_only_when_set() {
        // Deadline stops perturb attempt counts and verdict attribution, so deadline
        // runs must not share cache entries with unconstrained runs — but the common
        // no-deadline case must keep the exact pre-deadline fingerprint so existing
        // proof stores stay warm.
        let plain = DispatcherConfig::builder().build();
        let bounded = DispatcherConfig::builder().deadline_ms(250).build();
        assert!(
            !plain.fingerprint().contains("deadline"),
            "{}",
            plain.fingerprint()
        );
        assert!(
            bounded.fingerprint().contains("|deadline=250"),
            "{}",
            bounded.fingerprint()
        );
        assert_ne!(plain.fingerprint(), bounded.fingerprint());
    }

    #[test]
    fn injected_prover_panics_are_contained_and_attributed() {
        // Crash every prover on every attempt: the cascade must walk its whole
        // order, contain each panic, and degrade to an attributed Unproved — the
        // process-survival half of the tentpole in miniature.
        let spec = FaultSpec::parse(
            "syntactic:panic@1;smt:panic@1;mona:panic@1;bapa:panic@1;fol:panic@1;\
             interactive:panic@1",
        )
        .expect("valid spec");
        let dispatcher = Dispatcher::with_config(
            DispatcherConfig::builder()
                .cache(CacheMode::Off)
                .faults(spec)
                .build(),
        );
        let o = ob(&["x = y"], "y = x");
        let report = dispatcher.prove_one(&o, &ProverContext::default());
        assert!(!report.succeeded(), "every prover crashed");
        assert_eq!(report.crashes(), ProverId::default_order().len());
        assert_eq!(report.proved_sequents, 0);
        assert!(
            report.unproved[0].contains("[contained: 6 crashed, 0 deadline-stopped]"),
            "{:?}",
            report.unproved
        );
        let rendered = report.render("t");
        assert!(
            rendered.contains("Fault containment: 6 prover crashes contained"),
            "{rendered}"
        );
    }

    #[test]
    fn faults_against_losing_provers_leave_verdicts_unchanged() {
        // Crashing a prover that would not have won must not change the verdict:
        // the syntactic prover still proves the sequent after SMT's crash is
        // contained... but SMT comes later in the default order, so crash the
        // syntactic prover itself and let SMT pick the sequent up.
        let spec = FaultSpec::parse("syntactic:panic@1").expect("valid spec");
        let dispatcher = Dispatcher::with_config(
            DispatcherConfig::builder()
                .cache(CacheMode::Off)
                .faults(spec)
                .build(),
        );
        let o = ob(&["x = y + 1", "0 <= y"], "1 <= x");
        let report = dispatcher.prove_one(&o, &ProverContext::default());
        assert!(report.succeeded(), "{report:?}");
        assert_eq!(report.crashes(), 1);
        assert!(
            !report.render("t").contains("unproved"),
            "the verdict must not change"
        );
    }

    #[test]
    fn contained_cascades_are_never_cached() {
        // A fault-perturbed outcome must not be frozen into the cache: the second
        // prove_one must be a fresh miss, not a replay of the crashed run.
        let spec = FaultSpec::parse("interactive:panic@1").expect("valid spec");
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().faults(spec).build());
        let o = ob(&["p"], "q");
        let context = ProverContext::default();
        let first = dispatcher.prove_one(&o, &context);
        assert!(!first.succeeded() && first.crashes() > 0, "{first:?}");
        assert_eq!(first.cache_misses, 1);
        let second = dispatcher.prove_one(&o, &context);
        assert_eq!(second.cache_hits, 0, "contained cascade must not be cached");
        assert_eq!(second.cache_misses, 1);
    }

    #[test]
    fn zero_deadline_stops_fuel_hooked_provers_but_not_cheap_ones() {
        // deadline_ms = 0 is the degenerate always-expired deadline: every
        // cooperative check fires immediately, so MONA/SMT/FOL attempts become
        // deadline stops — while the syntactic prover (no long loops, exempt)
        // still proves its sequents, keeping trivial verification alive.
        let config = || {
            DispatcherConfig::builder()
                .cache(CacheMode::Off)
                .deadline_ms(0)
                .build()
        };
        let dispatcher = Dispatcher::with_config(config());
        let context = ProverContext::default();
        let trivial = dispatcher.prove_one(&ob(&["x = y"], "y = x"), &context);
        assert!(trivial.succeeded(), "syntactic proofs are deadline-exempt");
        let hard = dispatcher.prove_one(&fuel_hungry_unprovable(), &context);
        assert!(!hard.succeeded());
        assert!(
            hard.deadline_aborts() > 0,
            "the fuel-hooked provers must stop at the deadline: {hard:?}"
        );
        assert!(
            hard.unproved[0].contains("deadline-stopped]"),
            "{:?}",
            hard.unproved
        );
    }

    #[test]
    fn transient_store_faults_are_retried_and_counted() {
        let dir =
            std::env::temp_dir().join(format!("jahob-provers-faults-{}-retry", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Every third store I/O operation fails. The construction-time warm load is
        // op 1; flush #1 is then (read 2, write 3) — the write fails and the bounded
        // retry re-runs the idempotent merge-write (ops 4, 5) to completion; flush
        // #2 opens with a failing read (op 6) and is rescued the same way (7, 8).
        let spec = FaultSpec::parse("store:io@3").expect("valid spec");
        let dispatcher = Dispatcher::with_config(
            DispatcherConfig::builder()
                .cache(CacheMode::Persistent {
                    dir: dir.clone(),
                    flush: false,
                })
                .faults(spec)
                .build(),
        );
        let o = ob(&["x = y"], "y = x");
        assert!(dispatcher
            .prove_one(&o, &ProverContext::default())
            .succeeded());
        assert!(
            dispatcher
                .flush_store()
                .expect("first flush survives the fault")
                >= 1
        );
        assert_eq!(dispatcher.store_retries(), 1, "one rescue retry");
        assert!(
            dispatcher
                .flush_store()
                .expect("second flush survives the fault")
                >= 1
        );
        assert_eq!(dispatcher.store_retries(), 2, "one more rescue retry");
        let warm = Dispatcher::with_config(
            DispatcherConfig::builder()
                .cache(CacheMode::Persistent {
                    dir: dir.clone(),
                    flush: false,
                })
                .build(),
        );
        let replay = warm.prove_one(&o, &ProverContext::default());
        assert_eq!(replay.cache_disk_hits, 1, "the retried flush reached disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_drop_flush_warns_once_per_file_and_never_panics() {
        let dir = std::env::temp_dir().join(format!(
            "jahob-provers-faults-{}-drop-warn",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Every store I/O operation fails, so all three retry attempts of the
        // store merge-write fail; the cost-model file is unfaulted and flushes.
        let spec = FaultSpec::parse("store:io@1").expect("valid spec");
        let dispatcher = Dispatcher::with_config(
            DispatcherConfig::builder()
                .cache(CacheMode::Persistent {
                    dir: dir.clone(),
                    flush: true,
                })
                .faults(spec)
                .build(),
        );
        assert!(dispatcher
            .prove_one(&ob(&["x = y"], "y = x"), &ProverContext::default())
            .succeeded());
        let warnings = dispatcher.drop_flush_warnings();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(
            warnings[0].starts_with("warning: failed to flush proof store"),
            "{warnings:?}"
        );
        assert!(
            warnings[0].contains(&store_path(&dir).display().to_string()),
            "the warning must name the path: {warnings:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_cache_dir_degrades_to_memory_mode() {
        // A store dir nested under a regular file can never be created, for root
        // and non-root alike (read-only permission bits are ignored under root, so
        // this is the portable way to make `create_dir_all` fail).
        let blocker = std::env::temp_dir().join(format!(
            "jahob-provers-faults-{}-blocker",
            std::process::id()
        ));
        std::fs::write(&blocker, b"not a directory").expect("create blocker file");
        let dir = blocker.join("store");
        let dispatcher = Dispatcher::with_config(
            DispatcherConfig::builder()
                .cache(CacheMode::Persistent {
                    dir: dir.clone(),
                    flush: true,
                })
                .build(),
        );
        assert_eq!(
            dispatcher.config.cache,
            CacheMode::Memory,
            "unusable persistent dir must degrade to the in-memory cache"
        );
        let o = ob(&["x = y"], "y = x");
        let report = dispatcher.prove_one(&o, &ProverContext::default());
        assert!(report.succeeded());
        assert_eq!(dispatcher.flush_store().expect("no-op flush"), 0);
        drop(dispatcher); // must not warn or panic: there is no store handle
        let _ = std::fs::remove_file(&blocker);
    }
}
