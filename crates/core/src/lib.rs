//! # jahob
//!
//! The top-level driver of the Jahob reproduction (*Full Functional Verification of
//! Linked Data Structures*, Zee–Kuncak–Rinard, PLDI 2008): it ties together the frontend
//! (`jahob-frontend`), the verification-condition generator (`jahob-vcgen`) and the
//! integrated reasoning system (`jahob-provers`), and ships the verified data structure
//! suite of §7 ([`suite`]).
//!
//! # Example
//!
//! ```
//! use jahob::{verify_program, VerifyOptions};
//!
//! // Verify the sized list of Figure 6 (the Figure 7 scenario).
//! let program = jahob::suite::sized_list();
//! let results = verify_program(&program, &VerifyOptions::default());
//! let add = results.iter().find(|r| r.method == "List.addNew").expect("addNew verified");
//! assert!(add.report.proved_sequents > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod prelude;
pub mod suite;
pub mod verifier;

use batch::{assemble_program_batch, fold_method_results};
use jahob_frontend::{MethodTask, Program};
use jahob_provers::{Dispatcher, LemmaLibrary, ProverId, VerificationReport};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

pub use jahob_provers::{
    store_path, BatchEntry, BatchReport, CacheMode, CacheStats, DispatcherConfig,
    DispatcherConfigBuilder, ObligationBatch, ObligationTag, ProverStats, SequentCache,
    TaggedReport, STORE_VERSION,
};
pub use verifier::{ProgramReport, Verifier};

/// Options for a verification run.
#[derive(Debug, Clone, Default)]
pub struct VerifyOptions {
    /// Dispatcher configuration (prover order, threads, hint usage).
    pub dispatcher: DispatcherConfig,
    /// Interactively proven lemmas to load (§6.6).
    pub lemmas: LemmaLibrary,
}

/// The verification result of one method.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// `Class.method`.
    pub method: String,
    /// The per-prover report.
    pub report: VerificationReport,
}

impl MethodResult {
    /// `true` if every sequent of the method was proved.
    pub fn verified(&self) -> bool {
        self.report.succeeded()
    }

    /// Renders the method result in the style of Figure 7.
    pub fn render(&self) -> String {
        self.report.render(&self.method)
    }
}

/// Verifies one method task with a fresh dispatcher (and hence a fresh result cache).
/// To share one cache across methods, build a [`Dispatcher`] once and use
/// [`verify_task_with`].
pub fn verify_task(task: &MethodTask, options: &VerifyOptions) -> MethodResult {
    verify_task_with(
        &Dispatcher::with_config(options.dispatcher.clone()),
        task,
        &options.lemmas,
    )
}

/// Verifies one method task with an existing dispatcher: a single-method batch through
/// the same assemble → prove → fold pipeline as [`verify_program_with`] — this is the
/// per-method dispatch path the batched differential test compares against. Because
/// cloned dispatchers share their result cache, calling this with the same dispatcher
/// for every method of a program lets obligations proved once (class invariants
/// re-established on every path) be answered from the cache for all later methods.
pub fn verify_task_with(
    dispatcher: &Dispatcher,
    task: &MethodTask,
    lemmas: &LemmaLibrary,
) -> MethodResult {
    let method = task.qualified_name();
    let obligations = task.obligations();
    let plan = (method.clone(), obligations.len());
    let mut batch = ObligationBatch::new();
    batch.push_method(
        "",
        &method,
        Arc::new(task.prover_context(lemmas)),
        obligations,
    );
    let report = dispatcher.prove_all(&batch);
    fold_method_results(&report, "", std::slice::from_ref(&plan))
        .pop()
        .expect("one method in, one result out")
}

/// Verifies every method of a program. One dispatcher — and therefore one result
/// cache — is shared across all methods.
pub fn verify_program(program: &Program, options: &VerifyOptions) -> Vec<MethodResult> {
    verify_program_with(
        &Dispatcher::with_config(options.dispatcher.clone()),
        program,
        &options.lemmas,
    )
}

/// Verifies every method of a program with an existing dispatcher (sharing its cache):
/// assembles **one** program-wide tagged batch, proves it with a single
/// [`Dispatcher::prove_all`] call — so the work-stealing queue sees the whole
/// obligation pool at once — and folds the tagged per-obligation reports back into
/// per-method results.
pub fn verify_program_with(
    dispatcher: &Dispatcher,
    program: &Program,
    lemmas: &LemmaLibrary,
) -> Vec<MethodResult> {
    let (batch, methods) = assemble_program_batch("", program, lemmas);
    let report = dispatcher.prove_all(&batch);
    fold_method_results(&report, "", &methods)
}

/// One row of the Figure 15 table: per-prover sequent counts and times for a whole data
/// structure (all verified methods aggregated).
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// The data structure name.
    pub name: String,
    /// Aggregated per-prover statistics.
    pub per_prover: BTreeMap<ProverId, ProverStats>,
    /// Total number of sequents.
    pub total_sequents: usize,
    /// Number of proved sequents.
    pub proved_sequents: usize,
    /// Sequents answered from the result cache.
    pub cache_hits: usize,
    /// Of `cache_hits`, sequents answered by entries warm-loaded from the persistent
    /// proof store (0 unless the cache mode is [`CacheMode::Persistent`]).
    pub cache_disk_hits: usize,
    /// Sequents that fell through the cache to the provers (0 when caching is off).
    pub cache_misses: usize,
    /// Sequents retried in the dispatcher's unbudgeted rescue pass after a budgeted
    /// cascade failed with fuel aborts (0 with budgets off).
    pub rescue_retries: usize,
    /// Total verification time.
    pub total_time: Duration,
}

impl SuiteRow {
    /// Aggregates the per-method reports of one data structure into a row.
    fn from_results(name: &str, results: &[MethodResult]) -> SuiteRow {
        let mut row = SuiteRow {
            name: name.to_string(),
            per_prover: BTreeMap::new(),
            total_sequents: 0,
            proved_sequents: 0,
            cache_hits: 0,
            cache_disk_hits: 0,
            cache_misses: 0,
            rescue_retries: 0,
            total_time: Duration::ZERO,
        };
        for r in results {
            for (id, s) in &r.report.per_prover {
                let e = row.per_prover.entry(*id).or_default();
                e.proved += s.proved;
                e.attempted += s.attempted;
                e.cache_hits += s.cache_hits;
                e.skipped += s.skipped;
                e.budget_aborts += s.budget_aborts;
                e.crashes += s.crashes;
                e.deadline_aborts += s.deadline_aborts;
                e.time += s.time;
            }
            row.total_sequents += r.report.total_sequents;
            row.proved_sequents += r.report.proved_sequents;
            row.cache_hits += r.report.cache_hits;
            row.cache_disk_hits += r.report.cache_disk_hits;
            row.cache_misses += r.report.cache_misses;
            row.rescue_retries += r.report.rescue_retries;
            row.total_time += r.report.total_time;
        }
        row
    }
}

/// Runs the whole suite of §7 and returns one row per data structure (Figure 15).
/// The entire suite is assembled into **one** tagged batch and proved with a single
/// [`Dispatcher::prove_all`] call, so the work-stealing queue balances the full,
/// skewed obligation pool of all structures at once while the tags keep per-structure
/// (and per-method) attribution intact. The shared result cache answers invariant
/// obligations recurring across structures and methods after their first proof.
pub fn run_suite(options: &VerifyOptions) -> Vec<SuiteRow> {
    run_suite_with(
        &Dispatcher::with_config(options.dispatcher.clone()),
        &options.lemmas,
    )
}

/// Runs the whole suite through an existing dispatcher (one batch, one `prove_all`).
pub fn run_suite_with(dispatcher: &Dispatcher, lemmas: &LemmaLibrary) -> Vec<SuiteRow> {
    let entries = suite::full_suite();
    let mut batch = ObligationBatch::new();
    let mut structures: Vec<(&str, Vec<batch::MethodPlan>)> = Vec::new();
    for entry in &entries {
        let (program_batch, methods) = assemble_program_batch(entry.name, &entry.program, lemmas);
        batch.append(program_batch);
        structures.push((entry.name, methods));
    }
    let report = dispatcher.prove_all(&batch);
    structures
        .iter()
        .map(|(name, methods)| {
            let results = fold_method_results(&report, name, methods);
            SuiteRow::from_results(name, &results)
        })
        .collect()
}

/// Total prover attempts the failure memo skipped across `rows`, all provers summed —
/// the number behind the Figure 15 footer, the `suite_failure_skips` bench metric and
/// the differential harness's memo assertions.
pub fn suite_failure_skips(rows: &[SuiteRow]) -> usize {
    rows.iter()
        .flat_map(|r| r.per_prover.values())
        .map(|s| s.skipped)
        .sum()
}

/// Total prover attempts aborted on a fuel budget across `rows`, all provers summed —
/// the number behind the Figure 15 footer, the `suite_budget_aborts` bench metric and
/// the `routing-efficiency` CI gauge (a healthy budgeted suite run aborts *some*
/// hopeless attempts; zero means the budgets are not engaging).
pub fn suite_budget_aborts(rows: &[SuiteRow]) -> usize {
    rows.iter()
        .flat_map(|r| r.per_prover.values())
        .map(|s| s.budget_aborts)
        .sum()
}

/// Total sequents retried in the unbudgeted rescue pass across `rows` — the
/// completeness side of the fuel budgets: every sequent whose budgeted cascades
/// aborted an attempt and still failed gets exactly one unbudgeted retry.
pub fn suite_rescue_retries(rows: &[SuiteRow]) -> usize {
    rows.iter().map(|r| r.rescue_retries).sum()
}

/// Total prover panics contained at the attempt boundary across `rows`, all provers
/// summed — the number behind the Figure 15 footer and the `suite_crashes` bench
/// gauge. Zero on every healthy run; nonzero only when a prover genuinely panicked
/// or `JAHOB_FAULTS` injected one.
pub fn suite_crashes(rows: &[SuiteRow]) -> usize {
    rows.iter()
        .flat_map(|r| r.per_prover.values())
        .map(|s| s.crashes)
        .sum()
}

/// Total prover attempts stopped at the configured wall-clock deadline across
/// `rows` — the `suite_deadline_aborts` bench gauge. Zero unless
/// `JAHOB_DEADLINE_MS` (or [`jahob_provers::DispatcherConfig::deadline_ms`]) is set.
pub fn suite_deadline_aborts(rows: &[SuiteRow]) -> usize {
    rows.iter()
        .flat_map(|r| r.per_prover.values())
        .map(|s| s.deadline_aborts)
        .sum()
}

/// Renders suite rows as a Figure 15-style table. Each prover cell shows
/// `proved/attempted` (with the prover's total time), so the cost of failed cascade
/// attempts — what per-sequent routing and the failure memo exist to remove — is
/// visible in the suite table, not just in benches.
pub fn render_figure15(rows: &[SuiteRow]) -> String {
    let provers = [
        ProverId::Syntactic,
        ProverId::Mona,
        ProverId::Smt,
        ProverId::Fol,
        ProverId::Bapa,
        ProverId::Interactive,
    ];
    let mut out = String::new();
    out.push_str(&format!("{:<24}", "Data Structure"));
    for p in provers {
        out.push_str(&format!("{:>16}", p.display_name()));
    }
    out.push_str(&format!(
        "{:>10}{:>10}{:>12}{:>10}\n",
        "Proved", "Total", "Time", "Hit rate"
    ));
    let subtitle = format!("{:>16}", "(proved/att)").repeat(provers.len());
    out.push_str(&format!("{:<24}{subtitle}\n", ""));
    for row in rows {
        out.push_str(&format!("{:<24}", row.name));
        for p in provers {
            match row.per_prover.get(&p) {
                Some(s) if s.proved > 0 || s.attempted > 0 => {
                    let cell = format!(
                        "{}/{} ({:.1}s)",
                        s.proved,
                        s.attempted,
                        s.time.as_secs_f64()
                    );
                    out.push_str(&format!("{cell:>16}"));
                }
                _ => out.push_str(&format!("{:>16}", "")),
            }
        }
        let lookups = row.cache_hits + row.cache_misses;
        let hit_rate = if lookups > 0 {
            format!("{:.1}%", 100.0 * row.cache_hits as f64 / lookups as f64)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{:>10}{:>10}{:>11.1}s{:>10}\n",
            row.proved_sequents,
            row.total_sequents,
            row.total_time.as_secs_f64(),
            hit_rate
        ));
    }
    let hits: usize = rows.iter().map(|r| r.cache_hits).sum();
    let disk_hits: usize = rows.iter().map(|r| r.cache_disk_hits).sum();
    let misses: usize = rows.iter().map(|r| r.cache_misses).sum();
    if hits + misses > 0 {
        let from_disk = if disk_hits > 0 {
            format!(" ({disk_hits} from disk)")
        } else {
            String::new()
        };
        out.push_str(&format!(
            "Result cache: {} hits{}, {} misses ({:.1}% hit rate) across the suite.\n",
            hits,
            from_disk,
            misses,
            100.0 * hits as f64 / (hits + misses) as f64
        ));
    }
    let skipped = suite_failure_skips(rows);
    if skipped > 0 {
        out.push_str(&format!(
            "Failure memo: {skipped} dead prover attempts skipped across the suite.\n"
        ));
    }
    let aborts = suite_budget_aborts(rows);
    let rescues = suite_rescue_retries(rows);
    if aborts > 0 || rescues > 0 {
        out.push_str(&format!(
            "Fuel budgets: {aborts} attempts aborted, {rescues} sequents rescued unbudgeted across the suite.\n"
        ));
    }
    let crashes = suite_crashes(rows);
    let deadline_aborts = suite_deadline_aborts(rows);
    if crashes > 0 || deadline_aborts > 0 {
        out.push_str(&format!(
            "Fault containment: {crashes} prover crashes contained, {deadline_aborts} attempts \
             deadline-stopped across the suite.\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_list_add_combines_multiple_provers() {
        // The Figure 7 scenario: verifying List.addNew requires the syntactic prover plus
        // specialised reasoners (cardinality via BAPA, ground reasoning via SMT).
        let program = suite::sized_list();
        let results = verify_program(&program, &VerifyOptions::default());
        let add = results
            .iter()
            .find(|r| r.method == "List.addNew")
            .expect("addNew task exists");
        assert!(add.report.total_sequents >= 5);
        // Several sequents are discharged automatically by different reasoners; the
        // exact proved/total ratio depends on the resource budgets of the provers and is
        // recorded in EXPERIMENTS.md.
        assert!(add.report.proved_sequents >= 2);
        let used: Vec<ProverId> = add
            .report
            .per_prover
            .iter()
            .filter(|(_, s)| s.proved > 0)
            .map(|(id, _)| *id)
            .collect();
        assert!(used.len() >= 2, "expected multiple provers, got {used:?}");
        let text = add.render();
        assert!(text.contains("sequents"));
    }

    #[test]
    fn singly_linked_list_is_mostly_automated() {
        // The paper discharges the residue of hard sequents interactively (§6.6); this
        // reproduction ships no proof scripts, so the assertion is that the integrated
        // reasoner automates the bulk of the obligations. EXPERIMENTS.md records the
        // exact proved/total ratios.
        let program = suite::singly_linked_list();
        let results = verify_program(&program, &VerifyOptions::default());
        let total: usize = results.iter().map(|r| r.report.total_sequents).sum();
        let proved: usize = results.iter().map(|r| r.report.proved_sequents).sum();
        assert!(total >= 4);
        assert!(
            proved * 3 >= total * 2,
            "automation below 2/3: {proved}/{total}\n{}",
            results
                .iter()
                .map(|r| r.render())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn verify_program_dispatches_exactly_one_batch() {
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().build());
        let program = suite::sized_list();
        let results = verify_program_with(&dispatcher, &program, &LemmaLibrary::new());
        assert_eq!(
            dispatcher.batches_dispatched(),
            1,
            "verify_program must issue exactly one prove_all call per program"
        );
        assert!(results.iter().any(|r| r.method == "List.addNew"));
    }

    #[test]
    fn run_suite_dispatches_exactly_one_batch() {
        let dispatcher = Dispatcher::with_config(DispatcherConfig::builder().build());
        let rows = run_suite_with(&dispatcher, &LemmaLibrary::new());
        assert_eq!(
            dispatcher.batches_dispatched(),
            1,
            "run_suite must issue exactly one prove_all call per suite"
        );
        assert_eq!(rows.len(), suite::full_suite().len());
        // Per-structure cache hit rates appear as a table column when caching is on.
        let table = render_figure15(&rows);
        assert!(table.contains("Hit rate"));
        assert!(table.contains('%'));
    }

    #[test]
    fn figure15_table_renders_all_rows() {
        // Use a subset-friendly rendering test on two structures to keep the unit test
        // fast; the full table is produced by the bench harness and examples.
        let options = VerifyOptions::default();
        let rows: Vec<SuiteRow> = suite::full_suite()
            .iter()
            .take(2)
            .map(|entry| {
                let results = verify_program(&entry.program, &options);
                SuiteRow::from_results(entry.name, &results)
            })
            .collect();
        let table = render_figure15(&rows);
        assert!(table.contains("Association List"));
        assert!(table.contains("Data Structure"));
    }
}
