//! The one-import surface of the driver: `use jahob::prelude::*;`.
//!
//! Re-exports the [`Verifier`] facade (parse → batch → prove → report in one call)
//! together with the handful of types an embedding actually touches — the typed
//! configuration surface ([`DispatcherConfig`], [`CacheMode`]), the driver entry
//! points ([`verify_program`], [`run_suite`], [`render_figure15`]) and their result
//! types. Everything else (batching internals, individual prover crates) stays
//! behind the full module paths.

pub use crate::suite;
pub use crate::verifier::{ProgramReport, Verifier};
pub use crate::{
    render_figure15, run_suite, suite_budget_aborts, suite_crashes, suite_deadline_aborts,
    suite_failure_skips, suite_rescue_retries, verify_program, MethodResult, SuiteRow,
    VerifyOptions,
};
pub use jahob_provers::{
    CacheMode, CacheStats, DispatcherConfig, DispatcherConfigBuilder, FaultSpec, ProverId,
    VerificationReport,
};
