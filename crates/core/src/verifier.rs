//! The one-call verification facade: parse → batch → prove → report.
//!
//! [`Verifier`] wraps the whole driver pipeline — frontend parsing, program-wide
//! obligation batching, the integrated-reasoning dispatcher with its (optionally
//! persistent) result cache, and per-method report folding — behind a handful of
//! methods, so an embedding (an example, a CI harness, a service endpoint) does not
//! have to wire the crates together by hand:
//!
//! ```
//! use jahob::prelude::*;
//!
//! let source = r#"
//!     class Counter {
//!         private static int count;
//!         /*: invariant countNonNeg: "0 <= count"; */
//!         public static void bump()
//!         /*: modifies count ensures "count = old count + 1" */
//!         {
//!             count = count + 1;
//!         }
//!     }
//! "#;
//! let verifier = Verifier::new();
//! let report = verifier.verify_source(source).expect("parses");
//! assert!(report.verified(), "{}", report.render());
//! ```
//!
//! The facade holds one [`Dispatcher`] for its whole lifetime, so every program and
//! suite it verifies shares one result cache — and, under
//! [`CacheMode::Persistent`](jahob_provers::CacheMode::Persistent), one on-disk proof
//! store flushed when the verifier is dropped (or on [`Verifier::flush`]).

use crate::{run_suite_with, verify_program_with, MethodResult, SuiteRow, VerifyOptions};
use jahob_frontend::{parse_program, Program, SourceError};
use jahob_provers::{CacheStats, Dispatcher, DispatcherConfig, LemmaLibrary};

/// The result of verifying one program through the [`Verifier`] facade: every
/// method's [`MethodResult`], plus whole-program convenience views.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Per-method results, in program order.
    pub methods: Vec<MethodResult>,
}

impl ProgramReport {
    /// `true` if every sequent of every method was proved.
    pub fn verified(&self) -> bool {
        self.methods.iter().all(|m| m.verified())
    }

    /// The result of one method, by its `Class.method` qualified name.
    pub fn method(&self, qualified_name: &str) -> Option<&MethodResult> {
        self.methods.iter().find(|m| m.method == qualified_name)
    }

    /// Total sequents across all methods.
    pub fn total_sequents(&self) -> usize {
        self.methods.iter().map(|m| m.report.total_sequents).sum()
    }

    /// Proved sequents across all methods.
    pub fn proved_sequents(&self) -> usize {
        self.methods.iter().map(|m| m.report.proved_sequents).sum()
    }

    /// Of the sequents answered from the result cache, how many came from entries
    /// warm-loaded off the persistent proof store.
    pub fn cache_disk_hits(&self) -> usize {
        self.methods.iter().map(|m| m.report.cache_disk_hits).sum()
    }

    /// Renders every method's Figure 7-style report, concatenated in program order.
    pub fn render(&self) -> String {
        self.methods
            .iter()
            .map(|m| m.render())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The parse → batch → prove → report facade. See the [module docs](self) for an
/// end-to-end example.
///
/// Construction is where the cache mode takes effect: a
/// [`CacheMode::Persistent`](jahob_provers::CacheMode::Persistent) configuration
/// warm-starts the dispatcher from the on-disk proof store here, and the store is
/// merge-written back when the verifier is dropped (`flush: true`) or when
/// [`Verifier::flush`] is called.
#[derive(Debug, Clone, Default)]
pub struct Verifier {
    dispatcher: Dispatcher,
    lemmas: LemmaLibrary,
}

impl Verifier {
    /// A verifier with the default configuration ([`DispatcherConfig::default`],
    /// which honours the `JAHOB_*` environment knobs) and an empty lemma library.
    pub fn new() -> Self {
        Verifier::default()
    }

    /// A verifier with an explicit dispatcher configuration (build one with
    /// [`DispatcherConfig::builder`]) and an empty lemma library.
    pub fn with_config(config: DispatcherConfig) -> Self {
        Verifier {
            dispatcher: Dispatcher::with_config(config),
            lemmas: LemmaLibrary::new(),
        }
    }

    /// A verifier from full [`VerifyOptions`] (configuration plus lemma library).
    pub fn from_options(options: &VerifyOptions) -> Self {
        Verifier {
            dispatcher: Dispatcher::with_config(options.dispatcher.clone()),
            lemmas: options.lemmas.clone(),
        }
    }

    /// The dispatcher configuration this verifier runs under.
    pub fn config(&self) -> &DispatcherConfig {
        &self.dispatcher.config
    }

    /// Parses `source` and verifies every method of the resulting program: one
    /// program-wide batch, one `prove_all` call, per-method attribution preserved.
    pub fn verify_source(&self, source: &str) -> Result<ProgramReport, SourceError> {
        Ok(self.verify(&parse_program(source)?))
    }

    /// Verifies every method of an already-parsed program (sharing this verifier's
    /// cache with every earlier call).
    pub fn verify(&self, program: &Program) -> ProgramReport {
        ProgramReport {
            methods: verify_program_with(&self.dispatcher, program, &self.lemmas),
        }
    }

    /// Runs the whole §7 suite through this verifier's dispatcher (one batch), one
    /// Figure 15 row per structure.
    pub fn verify_suite(&self) -> Vec<SuiteRow> {
        run_suite_with(&self.dispatcher, &self.lemmas)
    }

    /// Cumulative cache statistics (memory hits, disk hits, misses, failure-memo
    /// hits) across everything this verifier has proved.
    pub fn cache_stats(&self) -> CacheStats {
        self.dispatcher.cache().stats()
    }

    /// Merge-writes the persistent proof store now (no-op `Ok(0)` without
    /// [`CacheMode::Persistent`](jahob_provers::CacheMode::Persistent)), returning
    /// the store's verdict-entry count.
    pub fn flush(&self) -> std::io::Result<usize> {
        self.dispatcher.flush_store()
    }

    /// Number of `(prover, feature-bucket)` cells the measured cost model currently
    /// holds — 0 until a budgeted batch commits its observations or a persistent
    /// `cost-model.jahob` profile warm-loads at construction.
    pub fn cost_model_cells(&self) -> usize {
        self.dispatcher.cost_model().len()
    }

    /// Store/cost-model flushes that failed transiently and were rescued by the
    /// dispatcher's bounded retry (see `Dispatcher::store_retries`).
    pub fn store_retries(&self) -> usize {
        self.dispatcher.store_retries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_provers::CacheMode;

    const COUNTER: &str = r#"
        class Counter {
            private static int count;
            /*: invariant countNonNeg: "0 <= count"; */
            public static void bump()
            /*: modifies count ensures "count = old count + 1" */
            {
                count = count + 1;
            }
        }
    "#;

    #[test]
    fn facade_verifies_source_end_to_end() {
        let verifier = Verifier::with_config(DispatcherConfig::builder().build());
        let report = verifier.verify_source(COUNTER).expect("parses");
        assert!(report.verified(), "{}", report.render());
        assert!(report.method("Counter.bump").is_some());
        assert_eq!(report.proved_sequents(), report.total_sequents());
        assert!(verifier.cache_stats().misses > 0, "the cache was consulted");
        assert_eq!(verifier.flush().expect("no-op"), 0, "no persistent store");
    }

    #[test]
    fn facade_rejects_bad_source_instead_of_panicking() {
        let verifier = Verifier::new();
        assert!(verifier.verify_source("class {{{{").is_err());
    }

    #[test]
    fn facade_shares_one_persistent_store_across_instances() {
        let dir =
            std::env::temp_dir().join(format!("jahob-verifier-facade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || {
            DispatcherConfig::builder()
                .cache(CacheMode::Persistent {
                    dir: dir.clone(),
                    flush: false,
                })
                .build()
        };
        let cold = Verifier::with_config(config());
        assert!(cold.verify_source(COUNTER).expect("parses").verified());
        assert!(cold.flush().expect("flush") >= 1);
        let warm = Verifier::with_config(config());
        let report = warm.verify_source(COUNTER).expect("parses");
        assert!(report.verified());
        assert!(
            report.cache_disk_hits() > 0,
            "warm facade must replay from the store"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
