//! The verified data structure suite (§7 of the paper).
//!
//! Each function returns the annotated program for one of the data structures listed in
//! §7: the concrete Java-subset implementation, the abstract state (ghost or defined
//! specification variables), class invariants, and method contracts. The specification
//! formulas follow the paper's examples (Figures 2–6) in the ASCII syntax of
//! `jahob-logic`.
//!
//! Method coverage is reduced with respect to the paper (typically the insertion /
//! lookup operations that the paper's examples discuss); EXPERIMENTS.md records the
//! exact coverage and the automation level achieved per structure.

use jahob_frontend::{ClassDef, Expr, Hint, JavaType, Lvalue, MethodBuilder, Program, Stmt};
use jahob_logic::parse_form;

fn obj() -> JavaType {
    JavaType::Ref("Object".into())
}

fn ghost(form: &str) -> jahob_logic::Form {
    parse_form(form).expect("specification formula")
}

/// The sized list of Figure 6: a global singly linked list with `nodes`, `content` and a
/// cardinality invariant tying `size` to `content`.
pub fn sized_list() -> Program {
    let list = ClassDef::new("List")
        .field("next", JavaType::Ref("List".into()))
        .field("data", obj())
        .static_field("root", JavaType::Ref("List".into()))
        .static_field("size", JavaType::Int)
        .ghost_var("nodes", "obj set", false)
        .ghost_var("content", "obj set", true)
        .invariant("sizeInv", "size = card content")
        .invariant("rootNodes", "root = null | root : nodes")
        .method(
            MethodBuilder::public("addNew")
                .static_method()
                .param("x", obj())
                .requires("comment ''xFresh'' (x ~: content) & x ~= null")
                .modifies(&["content"])
                .ensures("content = old content Un {x}")
                .body(vec![
                    Stmt::Local {
                        name: "n1".into(),
                        ty: JavaType::Ref("List".into()),
                        init: None,
                    },
                    Stmt::New {
                        target: Lvalue::Local("n1".into()),
                        class: "List".into(),
                    },
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n1"), "next".into()),
                        Expr::Static("root".into()),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n1"), "data".into()),
                        Expr::local("x"),
                    ),
                    Stmt::Assign(Lvalue::Static("root".into()), Expr::local("n1")),
                    Stmt::Assign(
                        Lvalue::Static("size".into()),
                        Expr::Plus(
                            Box::new(Expr::Static("size".into())),
                            Box::new(Expr::IntLit(1)),
                        ),
                    ),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{n1} Un nodes"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("{x} Un content"),
                    },
                    Stmt::SpecNote {
                        label: Some("sizeStep".into()),
                        form: ghost("size = old size + 1 & content = old content Un {x}"),
                        hints: vec![],
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("isEmpty")
                .static_method()
                .returns(JavaType::Bool)
                .ensures("(result = True) = (card content = 0)")
                .body(vec![Stmt::Return(Some(Expr::Eq(
                    Box::new(Expr::Static("size".into())),
                    Box::new(Expr::IntLit(0)),
                )))])
                .build(),
        );
    Program::new(vec![list])
}

/// The association list of Figure 2: a list of key/value pairs with a relational
/// abstract state `content :: (obj * obj) set`.
pub fn assoc_list() -> Program {
    let node = ClassDef::new("Node")
        .field("key", obj())
        .field("value", obj())
        .field("next", JavaType::Ref("Node".into()));
    let assoc = ClassDef::new("AssocList")
        .static_field("first", JavaType::Ref("Node".into()))
        .ghost_var("content", "(obj * obj) set", true)
        .ghost_var("nodes", "obj set", false)
        .invariant("firstNodes", "first = null | first : nodes")
        .method(
            MethodBuilder::public("put")
                .static_method()
                .param("k0", obj())
                .param("v0", obj())
                .requires("k0 ~= null & v0 ~= null & ~(EX v. (k0, v) : content)")
                .modifies(&["content"])
                .ensures("content = old content Un {(k0, v0)}")
                .body(vec![
                    Stmt::Local {
                        name: "n".into(),
                        ty: JavaType::Ref("Node".into()),
                        init: None,
                    },
                    Stmt::New {
                        target: Lvalue::Local("n".into()),
                        class: "Node".into(),
                    },
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "key".into()),
                        Expr::local("k0"),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "value".into()),
                        Expr::local("v0"),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "next".into()),
                        Expr::Static("first".into()),
                    ),
                    Stmt::Assign(Lvalue::Static("first".into()), Expr::local("n")),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{n} Un nodes"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("content Un {(k0, v0)}"),
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("isEmpty")
                .static_method()
                .returns(JavaType::Bool)
                .requires("first = null --> content = {}")
                .ensures("result = True --> content = {}")
                .body(vec![Stmt::Return(Some(Expr::is_null(Expr::Static(
                    "first".into(),
                ))))])
                .build(),
        )
        .method(
            MethodBuilder::public("removeAll")
                .static_method()
                .modifies(&["content"])
                .ensures("content = {}")
                .body(vec![
                    Stmt::Assign(Lvalue::Static("first".into()), Expr::Null),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                ])
                .build(),
        );
    Program::new(vec![node, assoc])
}

/// A null-terminated singly-linked list implementing a set interface (§7).
pub fn singly_linked_list() -> Program {
    let node = ClassDef::new("SllNode")
        .field("data", obj())
        .field("next", JavaType::Ref("SllNode".into()));
    let list = ClassDef::new("SinglyLinkedList")
        .static_field("first", JavaType::Ref("SllNode".into()))
        .ghost_var("content", "obj set", true)
        .ghost_var("nodes", "obj set", false)
        .invariant("firstNull", "first = null --> nodes = {}")
        .method(
            MethodBuilder::public("add")
                .static_method()
                .param("x", obj())
                .requires("x ~= null & x ~: content")
                .modifies(&["content"])
                .ensures("content = old content Un {x}")
                .body(vec![
                    Stmt::Local {
                        name: "n".into(),
                        ty: JavaType::Ref("SllNode".into()),
                        init: None,
                    },
                    Stmt::New {
                        target: Lvalue::Local("n".into()),
                        class: "SllNode".into(),
                    },
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "data".into()),
                        Expr::local("x"),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "next".into()),
                        Expr::Static("first".into()),
                    ),
                    Stmt::Assign(Lvalue::Static("first".into()), Expr::local("n")),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{n} Un nodes"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("content Un {x}"),
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("clear")
                .static_method()
                .modifies(&["content"])
                .ensures("content = {}")
                .body(vec![
                    Stmt::Assign(Lvalue::Static("first".into()), Expr::Null),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("addTwo")
                .static_method()
                .param("x", obj())
                .param("y", obj())
                .requires("x ~= null & y ~= null & x ~= y & x ~: content & y ~: content")
                .modifies(&["content"])
                .ensures("content = old content Un {x} Un {y}")
                .body(vec![
                    Stmt::Local {
                        name: "n".into(),
                        ty: JavaType::Ref("SllNode".into()),
                        init: None,
                    },
                    Stmt::New {
                        target: Lvalue::Local("n".into()),
                        class: "SllNode".into(),
                    },
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "data".into()),
                        Expr::local("x"),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "next".into()),
                        Expr::Static("first".into()),
                    ),
                    Stmt::Assign(Lvalue::Static("first".into()), Expr::local("n")),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{n} Un nodes"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("content Un {x}"),
                    },
                    Stmt::Local {
                        name: "m".into(),
                        ty: JavaType::Ref("SllNode".into()),
                        init: None,
                    },
                    Stmt::New {
                        target: Lvalue::Local("m".into()),
                        class: "SllNode".into(),
                    },
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("m"), "data".into()),
                        Expr::local("y"),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("m"), "next".into()),
                        Expr::Static("first".into()),
                    ),
                    Stmt::Assign(Lvalue::Static("first".into()), Expr::local("m")),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{m} Un nodes"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("content Un {y}"),
                    },
                ])
                .build(),
        );
    Program::new(vec![node, list])
}

/// A circular doubly-linked list implementing a set interface (§7).
pub fn circular_list() -> Program {
    let node = ClassDef::new("DllNode")
        .field("data", obj())
        .field("next", JavaType::Ref("DllNode".into()))
        .field("prev", JavaType::Ref("DllNode".into()));
    let list = ClassDef::new("CircularList")
        .static_field("head", JavaType::Ref("DllNode".into()))
        .ghost_var("content", "obj set", true)
        .ghost_var("nodes", "obj set", false)
        .invariant("headNodes", "head = null | head : nodes")
        .method(
            MethodBuilder::public("addFirst")
                .static_method()
                .param("x", obj())
                .requires("x ~= null & x ~: content & head ~= null & head : nodes")
                .modifies(&["content"])
                .ensures("content = old content Un {x}")
                .body(vec![
                    Stmt::Local {
                        name: "n".into(),
                        ty: JavaType::Ref("DllNode".into()),
                        init: None,
                    },
                    Stmt::New {
                        target: Lvalue::Local("n".into()),
                        class: "DllNode".into(),
                    },
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "data".into()),
                        Expr::local("x"),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "next".into()),
                        Expr::Static("head".into()),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "prev".into()),
                        Expr::field(Expr::Static("head".into()), "prev"),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::Static("head".into()), "prev".into()),
                        Expr::local("n"),
                    ),
                    Stmt::Assign(Lvalue::Static("head".into()), Expr::local("n")),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{n} Un nodes"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("content Un {x}"),
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("removeAll")
                .static_method()
                .modifies(&["content"])
                .ensures("content = {}")
                .body(vec![
                    Stmt::Assign(Lvalue::Static("head".into()), Expr::Null),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                ])
                .build(),
        );
    Program::new(vec![node, list])
}

/// A list with a cursor for iteration (§7), modelled by a `content` set and an
/// `iterated` set recording the elements already returned.
pub fn cursor_list() -> Program {
    let node = ClassDef::new("CurNode")
        .field("data", obj())
        .field("next", JavaType::Ref("CurNode".into()));
    let list = ClassDef::new("CursorList")
        .static_field("first", JavaType::Ref("CurNode".into()))
        .static_field("cursor", JavaType::Ref("CurNode".into()))
        .ghost_var("content", "obj set", true)
        .ghost_var("toVisit", "obj set", true)
        .invariant("toVisitContent", "toVisit subseteq content")
        .method(
            MethodBuilder::public("reset")
                .static_method()
                .modifies(&["toVisit"])
                .ensures("toVisit = content")
                .body(vec![
                    Stmt::Assign(
                        Lvalue::Static("cursor".into()),
                        Expr::Static("first".into()),
                    ),
                    Stmt::GhostAssign {
                        target: "toVisit".into(),
                        receiver: None,
                        value: ghost("content"),
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("advance")
                .static_method()
                .param("x", obj())
                .requires("cursor ~= null & x : toVisit")
                .modifies(&["toVisit"])
                .ensures("toVisit = old toVisit - {x} & toVisit subseteq content")
                .body(vec![
                    Stmt::Assign(
                        Lvalue::Static("cursor".into()),
                        Expr::field(Expr::Static("cursor".into()), "next"),
                    ),
                    Stmt::GhostAssign {
                        target: "toVisit".into(),
                        receiver: None,
                        value: ghost("toVisit - {x}"),
                    },
                ])
                .build(),
        );
    Program::new(vec![node, list])
}

/// An array-backed list implementing a map from a dense range of integers to objects
/// (modelled after `java.util.ArrayList`, §7).
pub fn array_list() -> Program {
    let list = ClassDef::new("ArrayList")
        .static_field("elems", JavaType::ObjArray)
        .static_field("count", JavaType::Int)
        .ghost_var("content", "(int * obj) set", true)
        .invariant("countNonNeg", "0 <= count")
        .invariant("elemsNotNull", "elems ~= null")
        .invariant("countBound", "count <= Array.length elems")
        .method(
            MethodBuilder::public("add")
                .static_method()
                .param("v", obj())
                .requires("v ~= null & count < Array.length elems")
                .modifies(&["content"])
                .ensures("content = old content Un {(old count, v)} & count = old count + 1")
                .body(vec![
                    Stmt::Assign(
                        Lvalue::ArrayElem(
                            Expr::Static("elems".into()),
                            Expr::Static("count".into()),
                        ),
                        Expr::local("v"),
                    ),
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("content Un {(count, v)}"),
                    },
                    Stmt::Assign(
                        Lvalue::Static("count".into()),
                        Expr::Plus(
                            Box::new(Expr::Static("count".into())),
                            Box::new(Expr::IntLit(1)),
                        ),
                    ),
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("size")
                .static_method()
                .returns(JavaType::Int)
                .ensures("result = count")
                .body(vec![Stmt::Return(Some(Expr::Static("count".into())))])
                .build(),
        )
        .method(
            // A loop whose invariant carries the bounds knowledge across iterations
            // (§3.5): repeatedly drop the last element until only `n` remain.
            MethodBuilder::public("truncate")
                .static_method()
                .param("n", JavaType::Int)
                .requires("0 <= n & n <= count")
                .modifies(&["content"])
                .ensures("count = n")
                .body(vec![
                    Stmt::While {
                        invariant: ghost("n <= count & count <= Array.length elems"),
                        cond: Expr::Lt(
                            Box::new(Expr::local("n")),
                            Box::new(Expr::Static("count".into())),
                        ),
                        body: vec![Stmt::Assign(
                            Lvalue::Static("count".into()),
                            Expr::Minus(
                                Box::new(Expr::Static("count".into())),
                                Box::new(Expr::IntLit(1)),
                            ),
                        )],
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("{p. p : content & (EX i v. p = (i, v) & i < n)}"),
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("clear")
                .static_method()
                .modifies(&["content"])
                .ensures("content = {} & count = 0")
                .body(vec![
                    Stmt::Assign(Lvalue::Static("count".into()), Expr::IntLit(0)),
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                ])
                .build(),
        );
    Program::new(vec![list])
}

/// A hash table mapping objects to objects, implemented as an array of bucket lists (§7).
/// The bucket selection arithmetic is exercised; the abstract map is a ghost relation.
pub fn hash_table() -> Program {
    let node = ClassDef::new("HashNode")
        .field("key", obj())
        .field("value", obj())
        .field("next", JavaType::Ref("HashNode".into()));
    let table = ClassDef::new("HashTable")
        .static_field("buckets", JavaType::ObjArray)
        .static_field("used", JavaType::Int)
        .ghost_var("content", "(obj * obj) set", true)
        .ghost_var("liveBucket", "(obj * obj) set", false)
        .ghost_var("tombstones", "(obj * obj) set", false)
        .invariant("bucketsNotNull", "buckets ~= null")
        .invariant("usedNonNeg", "0 <= used")
        .method(
            MethodBuilder::public("putFresh")
                .static_method()
                .param("k0", obj())
                .param("v0", obj())
                .param("h", JavaType::Int)
                .requires(
                    "k0 ~= null & v0 ~= null & ~(EX v. (k0, v) : content) & \
                     0 <= h & h < Array.length buckets",
                )
                .modifies(&["content"])
                .ensures("content = old content Un {(k0, v0)}")
                .body(vec![
                    Stmt::Local {
                        name: "n".into(),
                        ty: JavaType::Ref("HashNode".into()),
                        init: None,
                    },
                    Stmt::New {
                        target: Lvalue::Local("n".into()),
                        class: "HashNode".into(),
                    },
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "key".into()),
                        Expr::local("k0"),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "value".into()),
                        Expr::local("v0"),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "next".into()),
                        Expr::ArrayElem(
                            Box::new(Expr::Static("buckets".into())),
                            Box::new(Expr::local("h")),
                        ),
                    ),
                    Stmt::Assign(
                        Lvalue::ArrayElem(Expr::Static("buckets".into()), Expr::local("h")),
                        Expr::local("n"),
                    ),
                    Stmt::Assign(
                        Lvalue::Static("used".into()),
                        Expr::Plus(
                            Box::new(Expr::Static("used".into())),
                            Box::new(Expr::IntLit(1)),
                        ),
                    ),
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("content Un {(k0, v0)}"),
                    },
                ])
                .build(),
        )
        .method(
            // The bucket-selection arithmetic: hashing modulo a fixed table width. The
            // bounds on the result exercise the division/remainder reasoning of the SMT
            // interface.
            MethodBuilder::public("bucketIndex")
                .static_method()
                .param("h", JavaType::Int)
                .returns(JavaType::Int)
                .requires("0 <= h")
                .ensures("result = h mod 8 & 0 <= result & result < 8")
                .body(vec![Stmt::Return(Some(Expr::Mod(
                    Box::new(Expr::local("h")),
                    Box::new(Expr::IntLit(8)),
                )))])
                .build(),
        )
        .method(
            // The bucket-membership lemma (§3.5): every bucket slice of the map holds
            // at most `used` entries — a universally quantified fact over *sets* that
            // no prover can instantiate on its own (the needed witness
            // `liveBucket - tombstones` is a compound term outside the SMT candidate
            // pool, FOL cannot bridge the cardinality arithmetic, and BAPA cannot see
            // through the quantifier). The `by inst` hint supplies the witness; before
            // the hint language covered instantiations this specification had to be
            // weakened to a fixed slice.
            MethodBuilder::public("bucketMembershipBound")
                .static_method()
                .requires("comment ''bucketCap'' (ALL b. card (content Int b) <= used) & 0 <= used")
                .modifies(&[])
                .ensures("True")
                .body(vec![Stmt::SpecAssert {
                    label: Some("residueBound".into()),
                    form: ghost("card (content Int (liveBucket - tombstones)) <= used + 1"),
                    hints: vec![Hint::inst("b", ghost("liveBucket - tombstones"))],
                }])
                .build(),
        )
        .method(
            MethodBuilder::public("clear")
                .static_method()
                .modifies(&["content"])
                .ensures("content = {} & used = 0")
                .body(vec![
                    Stmt::Assign(Lvalue::Static("used".into()), Expr::IntLit(0)),
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                ])
                .build(),
        );
    Program::new(vec![node, table])
}

/// A binary search tree implementing a set (§7). The verified method inserts a fresh
/// element at the root position of an empty tree or grows the content set.
pub fn binary_search_tree() -> Program {
    let node = ClassDef::new("BstNode")
        .field("data", obj())
        .field("left", JavaType::Ref("BstNode".into()))
        .field("right", JavaType::Ref("BstNode".into()));
    let tree = ClassDef::new("BinarySearchTree")
        .static_field("root", JavaType::Ref("BstNode".into()))
        .ghost_var("content", "obj set", true)
        .ghost_var("nodes", "obj set", false)
        .ghost_var("smaller", "obj set", false)
        .ghost_var("larger", "obj set", false)
        .invariant("rootNodes", "root = null | root : nodes")
        .method(
            MethodBuilder::public("insertRoot")
                .static_method()
                .param("x", obj())
                .requires("x ~= null & x ~: content & root = null")
                .modifies(&["content"])
                .ensures("content = old content Un {x}")
                .body(vec![
                    Stmt::Local {
                        name: "n".into(),
                        ty: JavaType::Ref("BstNode".into()),
                        init: None,
                    },
                    Stmt::New {
                        target: Lvalue::Local("n".into()),
                        class: "BstNode".into(),
                    },
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "data".into()),
                        Expr::local("x"),
                    ),
                    Stmt::Assign(Lvalue::Static("root".into()), Expr::local("n")),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{n} Un nodes"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("content Un {x}"),
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("isEmpty")
                .static_method()
                .returns(JavaType::Bool)
                .requires("root = null --> content = {}")
                .ensures("result = True --> content = {}")
                .body(vec![Stmt::Return(Some(Expr::is_null(Expr::Static(
                    "root".into(),
                ))))])
                .build(),
        )
        .method(
            // Growing the tree below an existing interior node: the shape bookkeeping is
            // the `nodes` ghost set, the abstract effect is on `content`.
            MethodBuilder::public("insertLeftChild")
                .static_method()
                .param("parent", JavaType::Ref("BstNode".into()))
                .param("x", obj())
                .requires("parent ~= null & parent : nodes & x ~= null & x ~: content")
                .modifies(&["content"])
                .ensures("content = old content Un {x}")
                .body(vec![
                    Stmt::Local {
                        name: "n".into(),
                        ty: JavaType::Ref("BstNode".into()),
                        init: None,
                    },
                    Stmt::New {
                        target: Lvalue::Local("n".into()),
                        class: "BstNode".into(),
                    },
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("n"), "data".into()),
                        Expr::local("x"),
                    ),
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("parent"), "left".into()),
                        Expr::local("n"),
                    ),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{n} Un nodes"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("content Un {x}"),
                    },
                ])
                .build(),
        )
        .method(
            // The ordering step of a search: the elements smaller and larger than the
            // pivot partition the visited part of the tree, and since every stored
            // element occupies a distinct node, any slice of `content` has at most
            // `card nodes` elements. The universally quantified slice bound cannot be
            // instantiated by any prover (the witness `smaller Un larger` is a
            // compound set term), so without the `by inst` hint this step had to be
            // hand-weakened; with it, the ground instance is pure BAPA.
            MethodBuilder::public("orderedSplitStep")
                .static_method()
                .requires(
                    "comment ''sliceBound'' (ALL s. card (content Int s) <= card nodes) & \
                     smaller subseteq content & larger subseteq content",
                )
                .modifies(&[])
                .ensures("True")
                .body(vec![Stmt::SpecAssert {
                    label: Some("splitBound".into()),
                    form: ghost("card (content Int (smaller Un larger)) <= card nodes + 1"),
                    hints: vec![Hint::inst("s", ghost("smaller Un larger"))],
                }])
                .build(),
        )
        .method(
            MethodBuilder::public("clear")
                .static_method()
                .modifies(&["content"])
                .ensures("content = {}")
                .body(vec![
                    Stmt::Assign(Lvalue::Static("root".into()), Expr::Null),
                    Stmt::GhostAssign {
                        target: "nodes".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                ])
                .build(),
        );
    Program::new(vec![node, tree])
}

/// A priority queue stored as a complete binary tree in a dense array (§7), with parent
/// and child indices computed arithmetically. The verified method appends at the end.
pub fn priority_queue() -> Program {
    let queue = ClassDef::new("PriorityQueue")
        .static_field("heap", JavaType::ObjArray)
        .static_field("length", JavaType::Int)
        .ghost_var("content", "obj set", true)
        .invariant("lenNonNeg", "0 <= length")
        .invariant("heapNotNull", "heap ~= null")
        .invariant("lenBound", "length <= Array.length heap")
        .method(
            MethodBuilder::public("insertLast")
                .static_method()
                .param("x", obj())
                .requires("x ~= null & x ~: content & length < Array.length heap")
                .modifies(&["content"])
                .ensures("content = old content Un {x} & length = old length + 1")
                .body(vec![
                    Stmt::Assign(
                        Lvalue::ArrayElem(
                            Expr::Static("heap".into()),
                            Expr::Static("length".into()),
                        ),
                        Expr::local("x"),
                    ),
                    Stmt::Assign(
                        Lvalue::Static("length".into()),
                        Expr::Plus(
                            Box::new(Expr::Static("length".into())),
                            Box::new(Expr::IntLit(1)),
                        ),
                    ),
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("content Un {x}"),
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("parentIndex")
                .static_method()
                .param("i", JavaType::Int)
                .returns(JavaType::Int)
                .requires("1 <= i")
                .ensures("result = (i - 1) div 2 & 0 <= result")
                .body(vec![Stmt::Return(Some(Expr::Div(
                    Box::new(Expr::Minus(
                        Box::new(Expr::local("i")),
                        Box::new(Expr::IntLit(1)),
                    )),
                    Box::new(Expr::IntLit(2)),
                )))])
                .build(),
        )
        .method(
            MethodBuilder::public("leftChildIndex")
                .static_method()
                .param("i", JavaType::Int)
                .returns(JavaType::Int)
                .requires("0 <= i")
                .ensures("result = 2 * i + 1 & i < result")
                .body(vec![Stmt::Return(Some(Expr::Plus(
                    Box::new(Expr::Times(
                        Box::new(Expr::IntLit(2)),
                        Box::new(Expr::local("i")),
                    )),
                    Box::new(Expr::IntLit(1)),
                )))])
                .build(),
        )
        .method(
            MethodBuilder::public("clear")
                .static_method()
                .modifies(&["content"])
                .ensures("content = {} & length = 0")
                .body(vec![
                    Stmt::Assign(Lvalue::Static("length".into()), Expr::IntLit(0)),
                    Stmt::GhostAssign {
                        target: "content".into(),
                        receiver: None,
                        value: ghost("{}"),
                    },
                ])
                .build(),
        );
    Program::new(vec![queue])
}

/// A spanning tree of a graph (§7): adding an edge from a tree node to a fresh node keeps
/// the vertex set growing and the fresh node reachable.
pub fn spanning_tree() -> Program {
    let vertex = ClassDef::new("Vertex").field("parent", JavaType::Ref("Vertex".into()));
    let tree = ClassDef::new("SpanningTree")
        .static_field("treeRoot", JavaType::Ref("Vertex".into()))
        .ghost_var("vertices", "obj set", true)
        .invariant("rootVertex", "treeRoot = null | treeRoot : vertices")
        .method(
            MethodBuilder::public("attach")
                .static_method()
                .param("v", JavaType::Ref("Vertex".into()))
                .param("p", JavaType::Ref("Vertex".into()))
                .requires("v ~= null & p ~= null & p : vertices & v ~: vertices")
                .modifies(&["vertices"])
                .ensures("vertices = old vertices Un {v} & p : vertices")
                .body(vec![
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("v"), "parent".into()),
                        Expr::local("p"),
                    ),
                    Stmt::GhostAssign {
                        target: "vertices".into(),
                        receiver: None,
                        value: ghost("vertices Un {v}"),
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("initRoot")
                .static_method()
                .param("v", JavaType::Ref("Vertex".into()))
                .requires("v ~= null & vertices = {}")
                .modifies(&["vertices"])
                .ensures("vertices = {v} & treeRoot = v")
                .body(vec![
                    Stmt::Assign(Lvalue::Static("treeRoot".into()), Expr::local("v")),
                    Stmt::Assign(Lvalue::Field(Expr::local("v"), "parent".into()), Expr::Null),
                    Stmt::GhostAssign {
                        target: "vertices".into(),
                        receiver: None,
                        value: ghost("{v}"),
                    },
                ])
                .build(),
        );
    Program::new(vec![vertex, tree])
}

/// A three-dimensional space subdivision tree (octree, §7): internal nodes keep their
/// children in an eight-element array; inserting a point into a leaf cell records it in
/// the abstract point set.
pub fn space_subdivision_tree() -> Program {
    let cell = ClassDef::new("Cell")
        .field("children", JavaType::ObjArray)
        .field("point", obj());
    let tree = ClassDef::new("SpaceSubdivisionTree")
        .static_field("top", JavaType::Ref("Cell".into()))
        .ghost_var("points", "obj set", true)
        .invariant("topCell", "top = null | top : Cell")
        .method(
            MethodBuilder::public("insertIntoLeaf")
                .static_method()
                .param("leaf", JavaType::Ref("Cell".into()))
                .param("p", obj())
                .requires("leaf ~= null & p ~= null & p ~: points")
                .modifies(&["points"])
                .ensures("points = old points Un {p}")
                .body(vec![
                    Stmt::Assign(
                        Lvalue::Field(Expr::local("leaf"), "point".into()),
                        Expr::local("p"),
                    ),
                    Stmt::GhostAssign {
                        target: "points".into(),
                        receiver: None,
                        value: ghost("points Un {p}"),
                    },
                ])
                .build(),
        )
        .method(
            MethodBuilder::public("childSlot")
                .static_method()
                .param("octant", JavaType::Int)
                .param("node", JavaType::Ref("Cell".into()))
                .returns(obj())
                .requires(
                    "node ~= null & node..children ~= null & \
                           0 <= octant & octant < 8 & 8 <= Array.length (node..children)",
                )
                .ensures("True")
                .body(vec![Stmt::Return(Some(Expr::ArrayElem(
                    Box::new(Expr::field(Expr::local("node"), "children")),
                    Box::new(Expr::local("octant")),
                )))])
                .build(),
        );
    Program::new(vec![cell, tree])
}

/// A named entry of the suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// The data structure name as used in Figure 15.
    pub name: &'static str,
    /// The annotated program.
    pub program: Program,
}

/// The full suite, in the order of Figure 15.
pub fn full_suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "Association List",
            program: assoc_list(),
        },
        SuiteEntry {
            name: "Space Subdivision Tree",
            program: space_subdivision_tree(),
        },
        SuiteEntry {
            name: "Spanning Tree",
            program: spanning_tree(),
        },
        SuiteEntry {
            name: "Hash Table",
            program: hash_table(),
        },
        SuiteEntry {
            name: "Binary Search Tree",
            program: binary_search_tree(),
        },
        SuiteEntry {
            name: "Priority Queue",
            program: priority_queue(),
        },
        SuiteEntry {
            name: "Array List",
            program: array_list(),
        },
        SuiteEntry {
            name: "Circular List",
            program: circular_list(),
        },
        SuiteEntry {
            name: "Singly-Linked List",
            program: singly_linked_list(),
        },
        SuiteEntry {
            name: "Cursor List",
            program: cursor_list(),
        },
        SuiteEntry {
            name: "Sized List",
            program: sized_list(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_the_figure15_structures_plus_sized_list() {
        let suite = full_suite();
        assert_eq!(suite.len(), 11);
        let names: Vec<&str> = suite.iter().map(|e| e.name).collect();
        for expected in [
            "Association List",
            "Hash Table",
            "Binary Search Tree",
            "Priority Queue",
            "Array List",
            "Circular List",
            "Singly-Linked List",
            "Cursor List",
            "Sized List",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn every_structure_has_at_least_one_contracted_method() {
        for entry in full_suite() {
            let methods: usize = entry.program.classes.iter().map(|c| c.methods.len()).sum();
            assert!(methods >= 1, "{} has no methods", entry.name);
        }
    }

    #[test]
    fn all_specifications_parse_and_translate() {
        for entry in full_suite() {
            let tasks = jahob_frontend::program_tasks(&entry.program);
            assert!(!tasks.is_empty(), "{} has no tasks", entry.name);
            for task in tasks {
                let obligations = task.obligations();
                assert!(
                    !obligations.is_empty(),
                    "{}::{} produced no obligations",
                    entry.name,
                    task.qualified_name()
                );
            }
        }
    }
}
