//! Batch assembly and result folding: the layer between the frontend's per-method
//! tasks and the dispatcher's program-wide obligation pool.
//!
//! The paper's integrated reasoner treats a verification run's proof obligations as one
//! pool to split and dispatch (§3.5, §6) while reporting results per method (Figures 7
//! and 15). This module realises that separation between *dispatch* and *attribution*:
//! [`assemble_program_batch`] flattens every method of a program into one tagged
//! [`ObligationBatch`] (each obligation carrying its provenance and its method's
//! [`ProverContext`](jahob_provers::ProverContext)), and [`fold_method_results`] folds
//! the tagged per-obligation reports back into the per-method
//! [`MethodResult`] shape — in batch order, so the per-method
//! `unproved` ordering is identical to a per-method dispatch.

use crate::MethodResult;
use jahob_frontend::{program_tasks, Program};
use jahob_provers::{BatchReport, LemmaLibrary, ObligationBatch, VerificationReport};
use std::collections::VecDeque;
use std::sync::Arc;

/// One method of an assembled batch: its qualified name and how many obligations it
/// contributed. The counts are what let [`fold_method_results`] align results with
/// methods positionally — by name alone, same-named methods (Java-style overloads,
/// which the frontend does not reject) or methods with zero obligations would be
/// ambiguous.
pub type MethodPlan = (String, usize);

/// Assembles the program-wide obligation batch of `program`: one tagged entry per
/// obligation of every method, tagged `(structure, Class.method, index)` and carrying
/// the method's prover context. Returns the batch together with the per-method plan in
/// program order, so methods that produce no obligations still get an (empty,
/// trivially verified) result when folding.
pub fn assemble_program_batch(
    structure: &str,
    program: &Program,
    lemmas: &LemmaLibrary,
) -> (ObligationBatch, Vec<MethodPlan>) {
    let mut batch = ObligationBatch::new();
    let mut methods = Vec::new();
    for task in program_tasks(program) {
        let method = task.qualified_name();
        let context = Arc::new(task.prover_context(lemmas));
        let obligations = task.obligations();
        methods.push((method.clone(), obligations.len()));
        batch.push_method(structure, &method, context, obligations);
    }
    (batch, methods)
}

/// Folds the tagged per-obligation reports of one structure back into per-method
/// results, one per entry of `methods` (in that order). Per-obligation reports merge
/// in batch order, so each method's report — counts, per-prover attribution and the
/// `unproved` ordering — is identical to what a dedicated per-method `prove_all` call
/// produces; a method's `total_time` is the sum of its obligations' wall times.
///
/// Alignment is positional, driven by the plan's obligation counts: the k-th
/// obligation-contributing method of the plan takes the k-th contiguous run of entries
/// (assembly emits each method's obligations contiguously), so same-named methods and
/// zero-obligation methods both fold correctly.
pub fn fold_method_results(
    report: &BatchReport,
    structure: &str,
    methods: &[MethodPlan],
) -> Vec<MethodResult> {
    let mut remaining: VecDeque<&jahob_provers::TaggedReport> = report
        .per_obligation
        .iter()
        .filter(|t| t.tag.structure == structure)
        .collect();
    methods
        .iter()
        .map(|(method, count)| {
            let mut merged = VerificationReport::default();
            for _ in 0..*count {
                let tagged = remaining
                    .pop_front()
                    .expect("batch report shorter than the method plan it was proved from");
                debug_assert_eq!(
                    &tagged.tag.method, method,
                    "method plan out of step with batch order"
                );
                merged.merge(&tagged.report);
            }
            MethodResult {
                method: method.clone(),
                report: merged,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use std::collections::BTreeMap;

    #[test]
    fn assembly_tags_every_obligation_with_its_method() {
        let program = suite::sized_list();
        let (batch, methods) = assemble_program_batch("Sized List", &program, &LemmaLibrary::new());
        let names: Vec<&str> = methods.iter().map(|(m, _)| m.as_str()).collect();
        assert_eq!(names, vec!["List.addNew", "List.isEmpty"]);
        assert_eq!(
            methods.iter().map(|(_, n)| n).sum::<usize>(),
            batch.len(),
            "plan counts add up to the batch size"
        );
        assert!(batch.len() >= 5, "expected several obligations");
        let mut seen = BTreeMap::new();
        for entry in batch.entries() {
            assert_eq!(entry.tag.structure, "Sized List");
            let next = seen.entry(entry.tag.method.clone()).or_insert(0usize);
            assert_eq!(entry.tag.index, *next, "indices are dense per method");
            *next += 1;
        }
        assert_eq!(seen.len(), methods.len());
    }

    #[test]
    fn folding_separates_same_named_method_occurrences() {
        use jahob_provers::{ObligationTag, TaggedReport};
        // Three methods sharing the qualified name "List.add" (overloads), the middle
        // one with zero obligations: the plan's counts align results positionally, so
        // each overload keeps its own report instead of the first absorbing all of
        // them and the others reporting trivially verified.
        let one = |method: &str, index: usize, proved: usize| TaggedReport {
            tag: ObligationTag {
                structure: String::new(),
                method: method.to_string(),
                index,
            },
            report: VerificationReport {
                total_sequents: 1,
                proved_sequents: proved,
                unproved: if proved == 0 {
                    vec![format!("{method}#{index}")]
                } else {
                    Vec::new()
                },
                ..VerificationReport::default()
            },
        };
        let report = BatchReport {
            per_obligation: vec![
                one("List.add", 0, 1),
                one("List.add", 1, 1),
                one("List.add", 0, 0),
            ],
            ..BatchReport::default()
        };
        let methods = vec![
            ("List.add".to_string(), 2),
            ("List.add".to_string(), 0),
            ("List.add".to_string(), 1),
        ];
        let results = fold_method_results(&report, "", &methods);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].report.total_sequents, 2);
        assert!(results[0].verified());
        assert_eq!(results[1].report.total_sequents, 0);
        assert!(results[1].verified());
        assert_eq!(results[2].report.total_sequents, 1);
        assert!(!results[2].verified());
        assert_eq!(results[2].report.unproved, vec!["List.add#0".to_string()]);
    }

    #[test]
    fn folding_keeps_methods_without_obligations() {
        let report = BatchReport::default();
        let methods = vec![("A.empty".to_string(), 0)];
        let results = fold_method_results(&report, "", &methods);
        assert_eq!(results.len(), 1);
        assert!(
            results[0].verified(),
            "an empty report is trivially verified"
        );
    }
}
