//! Cold vs warm suite verification through the persistent proof store.
//!
//! `suite_warm_start/cold` runs the whole §7 suite with a persistent cache pointed at
//! a directory that never receives a store: every iteration pays the full prover
//! cascade. `suite_warm_start/warm` points the same configuration at a directory
//! seeded by one flushed cold run: every iteration constructs a fresh dispatcher,
//! warm-loads the store and answers the suite from disk. The pair is the PR's
//! headline gauge in `BENCH_results.json`; the recorded `suite_warm_disk_hits` /
//! `suite_warm_total` metrics pin how much of the suite the store actually covered.
use criterion::{criterion_group, criterion_main, Criterion};
use jahob::{run_suite, CacheMode, Verifier, VerifyOptions};
use std::path::Path;
use std::time::Duration;

/// Options with fixed dispatcher knobs (immune to env overrides so the bench ids mean
/// what they claim): sequential, routed, persistent cache on `dir`, no implicit flush
/// (measurement iterations must stay read-only).
fn options(dir: &Path) -> VerifyOptions {
    VerifyOptions {
        dispatcher: jahob::DispatcherConfig::builder()
            .cache(CacheMode::Persistent {
                dir: dir.to_path_buf(),
                flush: false,
            })
            .build(),
        ..VerifyOptions::default()
    }
}

fn suite_warm_start(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("jahob-warm-bench-{}", std::process::id()));
    let cold_dir = base.join("cold");
    let warm_dir = base.join("warm");
    let _ = std::fs::remove_dir_all(&base);

    // Cold: the store directory stays empty (flush is off), so every iteration is a
    // full cold-start proof of the suite.
    c.bench_function("suite_warm_start/cold", |b| {
        b.iter(|| run_suite(&options(&cold_dir)))
    });

    // Seed the warm directory with one flushed cold run.
    let seeder = Verifier::from_options(&options(&warm_dir));
    seeder.verify_suite();
    let entries = seeder.flush().expect("seeding flush");
    criterion::record_metric("suite_warm_store_entries", entries as f64);

    // Warm: every iteration warm-loads the seeded store and replays the suite.
    c.bench_function("suite_warm_start/warm", |b| {
        b.iter(|| run_suite(&options(&warm_dir)))
    });

    // Record how much of the suite the warm path actually answered from disk.
    let rows = run_suite(&options(&warm_dir));
    let total: usize = rows.iter().map(|r| r.total_sequents).sum();
    let disk: usize = rows.iter().map(|r| r.cache_disk_hits).sum();
    criterion::record_metric("suite_warm_total", total as f64);
    criterion::record_metric("suite_warm_disk_hits", disk as f64);
    assert!(
        disk * 10 >= total * 9,
        "warm suite must answer >=90% of {total} obligations from disk, got {disk}"
    );

    let _ = std::fs::remove_dir_all(&base);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets = suite_warm_start
}
criterion_main!(benches);
