//! Microbenchmarks of the individual reasoners on representative sequents (supports the
//! §5.2 discussion of why cheap provers run first).
use criterion::{criterion_group, criterion_main, Criterion};
use jahob_logic::{parse_form, Sequent};
use std::time::Duration;

fn sequent(assumptions: &[&str], goal: &str) -> Sequent {
    Sequent::new(
        assumptions.iter().map(|a| parse_form(a).unwrap()).collect(),
        parse_form(goal).unwrap(),
    )
}

fn provers(c: &mut Criterion) {
    let trivial = sequent(&["x ~= null", "p & q"], "x ~= null");
    let arith = sequent(&["size = old_size + 1", "0 <= old_size"], "1 <= size");
    let card = sequent(
        &[
            "size = card content",
            "x ~: content",
            "content1 = content Un {x}",
        ],
        "size + 1 = card content1",
    );
    let monadic = sequent(
        &["ALL x. x : nodes --> x : alloc", "n : nodes"],
        "n : alloc",
    );
    let quantified = sequent(
        &[
            "ALL x. x : Node & x ~= null --> x..next : Node",
            "n : Node",
            "n ~= null",
        ],
        "n..next : Node",
    );

    c.bench_function("prover/syntactic", |b| {
        b.iter(|| jahob_provers::syntactic_prover(&trivial))
    });
    c.bench_function("prover/smt_arith", |b| {
        b.iter(|| jahob_smt::prove_sequent(&arith, &jahob_smt::SmtOptions::default()))
    });
    c.bench_function("prover/bapa_card", |b| {
        b.iter(|| jahob_bapa::prove_sequent(&card, &jahob_bapa::BapaOptions::default()))
    });
    c.bench_function("prover/mona_monadic", |b| {
        b.iter(|| jahob_mona::prove_sequent(&monadic, &jahob_mona::MonaOptions::default()))
    });
    c.bench_function("prover/fol_quantified", |b| {
        b.iter(|| jahob_folp::prove_sequent(&quantified, &jahob_folp::FolOptions::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets = provers
}
criterion_main!(benches);
