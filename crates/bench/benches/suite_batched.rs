//! The `suite_batched` ablation: per-method dispatch (one `prove_all` per method, the
//! pre-batching seed behaviour) versus whole-program batched dispatch (one `prove_all`
//! for the entire §7 suite, the `run_suite` default) under threads ∈ {1, 2, 4, 8}.
//!
//! The point of program-wide batching is to hand the work-stealing queue the whole
//! obligation pool at once: per-method dispatch gives each `prove_all` call only a
//! handful of obligations — too few for the queue to balance the ~100 ms outliers —
//! and pays one thread spawn/join per method instead of one per suite. On a
//! single-core box both paths measure overhead only (see EXPERIMENTS.md); the batched
//! path's load-balancing win needs multiple cores to appear in wall time.
use criterion::{criterion_group, criterion_main, Criterion};
use jahob::{run_suite, suite, verify_task_with, VerifyOptions};
use jahob_provers::Dispatcher;
use std::time::Duration;

/// Options with fixed dispatcher knobs (immune to env overrides so the bench ids mean
/// what they claim). The cache stays on: it is the production default, and both paths
/// fill a fresh cache per iteration, so the comparison is fair.
fn options(threads: usize) -> VerifyOptions {
    VerifyOptions {
        dispatcher: jahob::DispatcherConfig::builder().threads(threads).build(),
        ..VerifyOptions::default()
    }
}

/// The per-method seed path: one shared dispatcher (and cache), one `prove_all` call
/// per method of every structure of the suite.
fn run_suite_per_method(options: &VerifyOptions) {
    let dispatcher = Dispatcher::with_config(options.dispatcher.clone());
    for entry in suite::full_suite() {
        for task in jahob_frontend::program_tasks(&entry.program) {
            verify_task_with(&dispatcher, &task, &options.lemmas);
        }
    }
}

fn suite_batched(c: &mut Criterion) {
    for threads in [1usize, 2, 4, 8] {
        c.bench_function(format!("suite_batched/per_method_{threads}threads"), |b| {
            b.iter(|| run_suite_per_method(&options(threads)))
        });
        c.bench_function(
            format!("suite_batched/whole_program_{threads}threads"),
            |b| b.iter(|| run_suite(&options(threads))),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = suite_batched
}
criterion_main!(benches);
