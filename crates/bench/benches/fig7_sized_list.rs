//! Figure 7: verification of the sized list `addNew` method, which needs the combination
//! of the syntactic prover, the SMT/FOL provers and the BAPA decision procedure.
//!
//! Measured both with per-sequent routing (the production default: the cardinality
//! sequent goes straight to BAPA) and without (the fixed §5.2 global order, where MONA
//! burns ~100 ms failing on that sequent first) — the before/after pair
//! `fig7_sized_list_addNew` / `fig7_sized_list_addNew_noroute` is recorded in
//! `BENCH_results.json` for regression tracking.
use criterion::{criterion_group, criterion_main, Criterion};
use jahob::{suite, verify_program, VerifyOptions};
use std::time::Duration;

/// Options with fixed dispatcher knobs (immune to env overrides so the recorded
/// numbers always measure what their bench id claims).
fn options(route: bool) -> VerifyOptions {
    VerifyOptions {
        dispatcher: jahob::DispatcherConfig::builder().route(route).build(),
        ..VerifyOptions::default()
    }
}

fn fig7(c: &mut Criterion) {
    let program = suite::sized_list();
    c.bench_function("fig7_sized_list_addNew", |b| {
        b.iter(|| verify_program(&program, &options(true)))
    });
    c.bench_function("fig7_sized_list_addNew_noroute", |b| {
        b.iter(|| verify_program(&program, &options(false)))
    });
    // Print the Figure 7-style report once so the bench output can be compared with the
    // paper's console transcript, and record the proved/total counts.
    let results = verify_program(&program, &options(true));
    let mut proved = 0usize;
    let mut total = 0usize;
    for r in results {
        proved += r.report.proved_sequents;
        total += r.report.total_sequents;
        println!("{}", r.render());
    }
    criterion::record_metric("fig7_proved", proved as f64);
    criterion::record_metric("fig7_total", total as f64);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets = fig7
}
criterion_main!(benches);
