//! Figure 7: verification of the sized list `addNew` method, which needs the combination
//! of the syntactic prover, the SMT/FOL provers and the BAPA decision procedure.
use criterion::{criterion_group, criterion_main, Criterion};
use jahob::{suite, verify_program, VerifyOptions};
use std::time::Duration;

fn fig7(c: &mut Criterion) {
    let program = suite::sized_list();
    c.bench_function("fig7_sized_list_addNew", |b| {
        b.iter(|| verify_program(&program, &VerifyOptions::default()))
    });
    // Print the Figure 7-style report once so the bench output can be compared with the
    // paper's console transcript.
    let results = verify_program(&program, &VerifyOptions::default());
    for r in results {
        println!("{}", r.render());
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets = fig7
}
criterion_main!(benches);
