//! Figure 15: per-data-structure verification statistics (sequents proved per prover and
//! verification times) for the whole suite of §7, plus the result-cache summary.
use criterion::{criterion_group, criterion_main, Criterion};
use jahob::{render_figure15, run_suite, suite, verify_program, VerifyOptions};
use std::time::Duration;

/// Options with fixed dispatcher knobs (immune to env overrides so the recorded
/// numbers always measure what their bench id claims).
fn options(threads: usize, cache: bool) -> VerifyOptions {
    let mode = if cache {
        jahob::CacheMode::Memory
    } else {
        jahob::CacheMode::Off
    };
    VerifyOptions {
        dispatcher: jahob::DispatcherConfig::builder()
            .threads(threads)
            .cache(mode)
            .build(),
        ..VerifyOptions::default()
    }
}

fn fig15(c: &mut Criterion) {
    // Per-structure timed benchmarks for three representative structures (a list, an
    // array-backed structure and a tree), giving the relative cost ordering; the full
    // per-structure table is emitted once below.
    for entry in suite::full_suite() {
        if !matches!(
            entry.name,
            "Singly-Linked List" | "Array List" | "Binary Search Tree"
        ) {
            continue;
        }
        let id = format!("fig15/{}", entry.name.replace(' ', "_"));
        c.bench_function(&id, |b| {
            b.iter(|| verify_program(&entry.program, &options(1, false)))
        });
    }
    // The dispatcher scaling knobs over the whole suite: threads=1 vs 4, cache on/off.
    for (id, threads, cache) in [
        ("fig15/suite_threads1_cache_off", 1, false),
        ("fig15/suite_threads1_cache_on", 1, true),
        ("fig15/suite_threads4_cache_off", 4, false),
        ("fig15/suite_threads4_cache_on", 4, true),
    ] {
        c.bench_function(id, |b| b.iter(|| run_suite(&options(threads, cache))));
    }
    // Emit the full Figure 15-style table (with the cache summary footer) once, and
    // record the suite-level counters in BENCH_results.json: proved/total sequents,
    // result-cache hits/misses and failure-memo skips.
    let rows = run_suite(&options(1, true));
    println!("{}", render_figure15(&rows));
    let proved: usize = rows.iter().map(|r| r.proved_sequents).sum();
    let total: usize = rows.iter().map(|r| r.total_sequents).sum();
    let hits: usize = rows.iter().map(|r| r.cache_hits).sum();
    let misses: usize = rows.iter().map(|r| r.cache_misses).sum();
    let skipped = jahob::suite_failure_skips(&rows);
    criterion::record_metric("suite_proved", proved as f64);
    criterion::record_metric("suite_total", total as f64);
    criterion::record_metric("suite_cache_hits", hits as f64);
    criterion::record_metric("suite_cache_misses", misses as f64);
    criterion::record_metric("suite_failure_skips", skipped as f64);
    // The fuel-budget gauges: aborts prove the budgets engage, rescue retries bound
    // the completeness cost (each is one extra unbudgeted cascade), and the
    // `routing-efficiency` CI job asserts both against this file.
    criterion::record_metric(
        "suite_budget_aborts",
        jahob::suite_budget_aborts(&rows) as f64,
    );
    criterion::record_metric(
        "suite_rescue_retries",
        jahob::suite_rescue_retries(&rows) as f64,
    );
    // The fault-containment gauges: always recorded so a healthy run pins them at
    // exactly 0 — any nonzero value in BENCH_results.json means a prover panicked
    // (and was contained) or a wall-clock deadline fired during the bench run.
    criterion::record_metric("suite_crashes", jahob::suite_crashes(&rows) as f64);
    criterion::record_metric(
        "suite_deadline_aborts",
        jahob::suite_deadline_aborts(&rows) as f64,
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets = fig15
}
criterion_main!(benches);
