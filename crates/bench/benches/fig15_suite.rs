//! Figure 15: per-data-structure verification statistics (sequents proved per prover and
//! verification times) for the whole suite of §7.
use criterion::{criterion_group, criterion_main, Criterion};
use jahob::{render_figure15, run_suite, suite, verify_program, VerifyOptions};
use std::time::Duration;

fn fig15(c: &mut Criterion) {
    // Per-structure timed benchmarks for three representative structures (a list, an
    // array-backed structure and a tree), giving the relative cost ordering; the full
    // per-structure table is emitted once below.
    for entry in suite::full_suite() {
        if !matches!(
            entry.name,
            "Singly-Linked List" | "Array List" | "Binary Search Tree"
        ) {
            continue;
        }
        let id = format!("fig15/{}", entry.name.replace(' ', "_"));
        c.bench_function(&id, |b| {
            b.iter(|| verify_program(&entry.program, &VerifyOptions::default()))
        });
    }
    // Emit the full Figure 15-style table once.
    let rows = run_suite(&VerifyOptions::default());
    println!("{}", render_figure15(&rows));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets = fig15
}
criterion_main!(benches);
