//! Ablations called out in DESIGN.md: splitting on/off is implicit in the architecture
//! (the dispatcher always receives split sequents), so the measurable ablations are the
//! prover order and parallel dispatch (§5.2).
use criterion::{criterion_group, criterion_main, Criterion};
use jahob::{suite, verify_task, VerifyOptions};
use jahob_provers::ProverId;
use std::time::Duration;

fn ablations(c: &mut Criterion) {
    let program = suite::sized_list();
    let tasks = jahob_frontend::program_tasks(&program);
    let task = tasks
        .iter()
        .find(|t| t.qualified_name() == "List.addNew")
        .expect("task");

    c.bench_function("ablation/order_cheap_first", |b| {
        b.iter(|| verify_task(task, &VerifyOptions::default()))
    });
    let mut expensive_first = VerifyOptions::default();
    expensive_first.dispatcher.order = vec![
        ProverId::Fol,
        ProverId::Bapa,
        ProverId::Mona,
        ProverId::Smt,
        ProverId::Syntactic,
        ProverId::Interactive,
    ];
    c.bench_function("ablation/order_expensive_first", |b| {
        b.iter(|| verify_task(task, &expensive_first))
    });
    let mut parallel = VerifyOptions::default();
    parallel.dispatcher.threads = 4;
    c.bench_function("ablation/parallel_dispatch", |b| {
        b.iter(|| verify_task(task, &parallel))
    });
    let mut no_hints = VerifyOptions::default();
    no_hints.dispatcher.use_hints = false;
    c.bench_function("ablation/no_hint_filtering", |b| {
        b.iter(|| verify_task(task, &no_hints))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets = ablations
}
criterion_main!(benches);
