//! Ablations called out in DESIGN.md: splitting on/off is implicit in the architecture
//! (the dispatcher always receives split sequents), so the measurable ablations are the
//! prover order, hint filtering, and the two dispatcher scaling mechanisms — the
//! work-stealing parallel dispatch and the canonical-form result cache (§5.2, §5.3).
use criterion::{criterion_group, criterion_main, Criterion};
use jahob::{run_suite, suite, verify_task, VerifyOptions};
use jahob_provers::{Dispatcher, LemmaLibrary, ObligationBatch, ProverId};
use std::time::Duration;

/// Options with the given thread count and cache switch (ignoring env overrides, so
/// the ablation axes stay fixed no matter how the bench process is invoked). Routing
/// is pinned **off** here: these ablations measure the fixed global order and the
/// other scaling knobs; the routing axis has its own `ablation/route_*` benches.
fn options(threads: usize, cache: bool) -> VerifyOptions {
    let mode = if cache {
        jahob::CacheMode::Memory
    } else {
        jahob::CacheMode::Off
    };
    VerifyOptions {
        dispatcher: jahob::DispatcherConfig::builder()
            .threads(threads)
            .cache(mode)
            .route(false)
            .build(),
        ..VerifyOptions::default()
    }
}

fn ablations(c: &mut Criterion) {
    let program = suite::sized_list();
    let tasks = jahob_frontend::program_tasks(&program);
    let task = tasks
        .iter()
        .find(|t| t.qualified_name() == "List.addNew")
        .expect("task");

    c.bench_function("ablation/order_cheap_first", |b| {
        b.iter(|| verify_task(task, &options(1, false)))
    });
    let mut expensive_first = options(1, false);
    expensive_first.dispatcher.order = vec![
        ProverId::Fol,
        ProverId::Bapa,
        ProverId::Mona,
        ProverId::Smt,
        ProverId::Syntactic,
        ProverId::Interactive,
    ];
    c.bench_function("ablation/order_expensive_first", |b| {
        b.iter(|| verify_task(task, &expensive_first))
    });
    let mut no_hints = options(1, false);
    no_hints.dispatcher.use_hints = false;
    c.bench_function("ablation/no_hint_filtering", |b| {
        b.iter(|| verify_task(task, &no_hints))
    });

    // The routing axis: the same method (and the whole suite below) with the
    // feature-directed per-sequent cascade order on vs the fixed global order. The
    // route-off baseline for the single method is `ablation/order_cheap_first`
    // above — `options()` pins routing off, so a separate route_off bench would
    // measure the identical configuration twice.
    let mut routed = options(1, false);
    routed.dispatcher.route = true;
    c.bench_function("ablation/route_on", |b| {
        b.iter(|| verify_task(task, &routed))
    });
    for (name, cache, route) in [
        ("ablation/suite_route_on", false, true),
        ("ablation/suite_route_off", false, false),
        ("ablation/suite_route_on_cache", true, true),
    ] {
        let mut opts = options(1, cache);
        opts.dispatcher.route = route;
        c.bench_function(name, |b| b.iter(|| run_suite(&opts)));
    }
    // The fuel-budget axis: the routed suite with budgets forced off measures what
    // the measured cost model and the MONA/FOL fuel buy over plain static routing
    // (`suite_route_on` above runs with the budgets baseline, i.e. on).
    let mut unbudgeted = options(1, false);
    unbudgeted.dispatcher.route = true;
    unbudgeted.dispatcher.budgets = false;
    c.bench_function("ablation/suite_budgets_off", |b| {
        b.iter(|| run_suite(&unbudgeted))
    });

    // The scaling ablations run the whole Figure 15 suite: the cache only pays off when
    // obligations recur across methods, and load balance only matters when obligation
    // costs are skewed across a real batch. Each iteration builds a fresh dispatcher
    // (inside run_suite), so cache-on measures a cold cache filled during the run.
    for (name, threads, cache) in [
        ("ablation/suite_seq_nocache", 1, false),
        ("ablation/suite_seq_cache", 1, true),
        ("ablation/suite_4threads_nocache", 4, false),
        ("ablation/suite_4threads_cache", 4, true),
    ] {
        c.bench_function(name, |b| b.iter(|| run_suite(&options(threads, cache))));
    }

    // The suite hands the dispatcher only a handful of obligations per method, which is
    // too small a batch for threads or caching to matter; the scaling regime the
    // dispatcher is built for is one large skewed batch (the "prove the whole program's
    // obligations at once" workload). Model it by tiling the sized list's obligations:
    // most are microseconds, one costs ~100ms (a MONA attempt that fails over to BAPA),
    // so a contiguous-chunk split would strand whole chunks behind the expensive
    // copies while the shared queue keeps every worker busy — and with the cache on,
    // every copy after the first is answered without running a prover.
    let context = tasks[0].prover_context(&LemmaLibrary::new());
    let obligations: Vec<_> = std::iter::repeat_with(|| tasks.iter().flat_map(|t| t.obligations()))
        .take(8)
        .flatten()
        .collect();
    let batch = ObligationBatch::uniform(&obligations, &context);
    for (name, threads, cache) in [
        ("ablation/batch_seq_nocache", 1, false),
        ("ablation/batch_4threads_nocache", 4, false),
        ("ablation/batch_seq_cache", 1, true),
        ("ablation/batch_4threads_cache", 4, true),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let dispatcher = Dispatcher::with_config(options(threads, cache).dispatcher);
                dispatcher.prove_all(&batch)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets = ablations
}
criterion_main!(benches);
