//! Translation from higher-order Jahob sequents to first-order clauses.
//!
//! This follows the approach of Bouillaguet et al. (VMCAI'07) used by Jahob's first-order
//! prover interface (§6.2 of the paper): after rewriting (definition unfolding, beta
//! reduction, expansion of set operations into membership formulas and of complex
//! equalities into extensionality), the remaining formula is approximated into a
//! first-order fragment:
//!
//! * memberships `x : S` become applications of a predicate owned by the set expression,
//! * transitive closure becomes an uninterpreted predicate constrained by *sound* axioms
//!   (reflexivity, transitivity, step inclusion) — strong enough for many reachability
//!   goals, incomplete for induction,
//! * arithmetic comparisons become predicates with a partial ordering axiomatisation,
//! * cardinality, `tree [...]` and any remaining higher-order constructs are approximated
//!   away by polarity (Figure 14).
//!
//! The result is a set of clauses whose unsatisfiability implies validity of the original
//! sequent.

use crate::fol::{Atom, Clause, Literal, Term};
use jahob_logic::approx::{approximate_implication, Polarity};
use jahob_logic::form::{Binder, Const, Form};
use jahob_logic::rewrite::{
    expand_complex_equalities, expand_field_write_applications, expand_set_membership, lift_ite,
    looks_like_set, rewrite_fixpoint,
};
use jahob_logic::simplify::{nnf, simplify};
use jahob_logic::subst::{free_vars, substitute_one};
use jahob_logic::types::Type;
use jahob_logic::Sequent;
use std::collections::{BTreeMap, BTreeSet};

/// Options controlling the translation.
#[derive(Debug, Clone)]
pub struct TranslateOptions {
    /// Names of variables known to denote sets (so equalities on them expand to
    /// extensionality).
    pub set_vars: BTreeSet<String>,
    /// Names of variables known to denote functions/fields (so equalities on them expand
    /// pointwise).
    pub fun_vars: BTreeSet<String>,
    /// Maximum number of clauses produced before giving up.
    pub max_clauses: usize,
    /// Include ordering axioms for integer comparisons.
    pub arithmetic_axioms: bool,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions::new()
    }
}

impl TranslateOptions {
    /// Default options with a clause budget.
    pub fn new() -> Self {
        TranslateOptions {
            set_vars: BTreeSet::new(),
            fun_vars: BTreeSet::new(),
            max_clauses: 4_000,
            arithmetic_axioms: true,
        }
    }
}

/// Error raised when the translation exceeds its clause budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslationOverflow;

/// Translates a sequent into a refutation task: a clause set that is unsatisfiable only
/// if the sequent is valid. Returns the clauses (assumptions, negated goal, and the
/// required theory axioms).
///
/// # Errors
///
/// Returns [`TranslationOverflow`] if clausification exceeds the configured budget.
pub fn sequent_to_clauses(
    sequent: &Sequent,
    options: &TranslateOptions,
) -> Result<Vec<Clause>, TranslationOverflow> {
    let sequent = sequent.without_comments();
    let set_typed = |f: &Form| -> bool {
        looks_like_set(f)
            || match f {
                Form::Var(v) => options.set_vars.contains(v),
                Form::App(head, _) => match head.as_ref() {
                    Form::Var(v) => options.set_vars.contains(v),
                    _ => false,
                },
                _ => false,
            }
    };

    let prep = |f: &Form| -> Form {
        let f = expand_function_equalities(f, &options.fun_vars);
        let f = expand_field_write_applications(&f);
        let f = expand_complex_equalities(&f, &set_typed);
        let f = expand_set_membership(&f);
        let f = lift_ite(&f);
        simplify(&f)
    };

    let assumptions: Vec<Form> = sequent.assumptions.iter().map(prep).collect();
    let goal = prep(&sequent.goal);

    // Polarity approximation into the first-order fragment.
    let (assumptions, goal) = approximate_implication(&assumptions, &goal, &fol_atom_filter);

    // Refutation set: assumptions plus negated goal.
    let mut cx = ClausifyCx {
        next_var: 0,
        next_skolem: 0,
        clauses: Vec::new(),
        max_clauses: options.max_clauses,
        rtrancl_bodies: Vec::new(),
        symbols: BTreeSet::new(),
        preds: BTreeSet::new(),
        used_arith: false,
    };
    for a in &assumptions {
        cx.clausify(&nnf(a))?;
    }
    cx.clausify(&nnf(&Form::not(goal.clone())))?;

    // Reachability axioms for each distinct transitive-closure body encountered.
    let bodies = cx.rtrancl_bodies.clone();
    for (idx, body) in bodies.iter().enumerate() {
        for ax in rtrancl_axioms(idx, body) {
            cx.clausify(&nnf(&ax))?;
        }
    }

    // Equality and congruence axioms for the symbols that occur.
    let mut clauses = cx.clauses.clone();
    clauses.extend(equality_axioms(&cx.symbols, &cx.preds));
    if options.arithmetic_axioms && cx.used_arith {
        for ax in arithmetic_axioms() {
            let mut c2 = ClausifyCx {
                next_var: 0,
                next_skolem: 0,
                clauses: Vec::new(),
                max_clauses: options.max_clauses,
                rtrancl_bodies: Vec::new(),
                symbols: BTreeSet::new(),
                preds: BTreeSet::new(),
                used_arith: false,
            };
            c2.clausify(&nnf(&ax))?;
            clauses.extend(c2.clauses);
        }
    }
    Ok(clauses)
}

/// Atoms representable in the first-order fragment. Cardinality, `tree`, subset atoms
/// that survived rewriting, and stray higher-order terms are rejected (and then
/// approximated away by polarity).
fn fol_atom_filter(atom: &Form, _polarity: Polarity) -> Option<Form> {
    if atom.contains_const(&Const::Card)
        || atom.contains_const(&Const::Tree)
        || atom.contains_const(&Const::Old)
        || atom.contains_binder(Binder::Comprehension)
        || atom.contains_binder(Binder::Lambda) && !is_rtrancl_atom(atom)
    {
        return None;
    }
    Some(atom.clone())
}

fn is_rtrancl_atom(atom: &Form) -> bool {
    atom.as_app_of(&Const::Rtrancl).is_some()
}

/// Expands equalities between function-typed expressions pointwise:
/// `f = g` becomes `ALL z. f z = g z` when either side is a `fieldWrite` expression or a
/// declared field variable.
fn expand_function_equalities(form: &Form, fun_vars: &BTreeSet<String>) -> Form {
    let is_fun = |f: &Form| -> bool {
        match f {
            Form::Var(v) => fun_vars.contains(v),
            // A partial `fieldWrite f x v` (exactly three arguments) denotes a function;
            // with a fourth argument it is already applied to a point and is a value.
            Form::App(head, args) => {
                matches!(head.as_ref(), Form::Const(Const::FieldWrite)) && args.len() == 3
            }
            _ => false,
        }
    };
    rewrite_fixpoint(form, &|f| {
        let [l, r] = f.as_app_of(&Const::Eq)? else {
            return None;
        };
        if is_fun(l) || is_fun(r) {
            let avoid = free_vars(f);
            let z = jahob_logic::subst::fresh_name("ptr", &avoid);
            return Some(Form::forall(
                z.clone(),
                Type::Obj,
                Form::eq(
                    Form::app(l.clone(), vec![Form::var(z.clone())]),
                    Form::app(r.clone(), vec![Form::var(z)]),
                ),
            ));
        }
        None
    })
}

/// Sound axioms for the reachability predicate `reach$idx` generated from a transitive
/// closure over `body` (a binary lambda): reflexivity, transitivity and step inclusion.
fn rtrancl_axioms(idx: usize, body: &Form) -> Vec<Form> {
    let r = |a: Form, b: Form| Form::app(Form::var(format!("reach${idx}")), vec![a, b]);
    let step = |a: Form, b: Form| -> Form { Form::app(body.clone(), vec![a, b]) };
    vec![
        // reflexivity
        Form::forall("rx", Type::Obj, r(Form::var("rx"), Form::var("rx"))),
        // step inclusion
        Form::forall_many(
            vec![("rx".to_string(), Type::Obj), ("ry".to_string(), Type::Obj)],
            Form::implies(
                step(Form::var("rx"), Form::var("ry")),
                r(Form::var("rx"), Form::var("ry")),
            ),
        ),
        // transitivity
        Form::forall_many(
            vec![
                ("rx".to_string(), Type::Obj),
                ("ry".to_string(), Type::Obj),
                ("rz".to_string(), Type::Obj),
            ],
            Form::implies(
                Form::and(vec![
                    r(Form::var("rx"), Form::var("ry")),
                    r(Form::var("ry"), Form::var("rz")),
                ]),
                r(Form::var("rx"), Form::var("rz")),
            ),
        ),
        // one-step unfolding: reach x y --> x = y | EX z. step x z & reach z y
        Form::forall_many(
            vec![("rx".to_string(), Type::Obj), ("ry".to_string(), Type::Obj)],
            Form::implies(
                r(Form::var("rx"), Form::var("ry")),
                Form::or(vec![
                    Form::eq(Form::var("rx"), Form::var("ry")),
                    Form::exists(
                        "rz",
                        Type::Obj,
                        Form::and(vec![
                            step(Form::var("rx"), Form::var("rz")),
                            r(Form::var("rz"), Form::var("ry")),
                        ]),
                    ),
                ]),
            ),
        ),
    ]
}

/// Partial axiomatisation of the integer ordering used when comparisons occur (§6.2:
/// "an incomplete set of axioms for ordering and addition").
fn arithmetic_axioms() -> Vec<Form> {
    let le = |a: Form, b: Form| Form::cmp(Const::LtEq, a, b);
    let lt = |a: Form, b: Form| Form::cmp(Const::Lt, a, b);
    let v = Form::var;
    vec![
        Form::forall("ax", Type::Int, le(v("ax"), v("ax"))),
        Form::forall_many(
            vec![
                ("ax".to_string(), Type::Int),
                ("ay".to_string(), Type::Int),
                ("az".to_string(), Type::Int),
            ],
            Form::implies(
                Form::and(vec![le(v("ax"), v("ay")), le(v("ay"), v("az"))]),
                le(v("ax"), v("az")),
            ),
        ),
        Form::forall_many(
            vec![("ax".to_string(), Type::Int), ("ay".to_string(), Type::Int)],
            Form::iff(
                lt(v("ax"), v("ay")),
                Form::and(vec![le(v("ax"), v("ay")), Form::neq(v("ax"), v("ay"))]),
            ),
        ),
        Form::forall_many(
            vec![("ax".to_string(), Type::Int), ("ay".to_string(), Type::Int)],
            Form::implies(
                Form::and(vec![le(v("ax"), v("ay")), le(v("ay"), v("ax"))]),
                Form::eq(v("ax"), v("ay")),
            ),
        ),
    ]
}

struct ClausifyCx {
    next_var: u32,
    next_skolem: u32,
    clauses: Vec<Clause>,
    max_clauses: usize,
    rtrancl_bodies: Vec<Form>,
    symbols: BTreeSet<(String, usize)>,
    preds: BTreeSet<(String, usize)>,
    used_arith: bool,
}

impl ClausifyCx {
    /// Clausifies an NNF formula and appends the clauses.
    fn clausify(&mut self, form: &Form) -> Result<(), TranslationOverflow> {
        let mut bound: BTreeMap<String, Term> = BTreeMap::new();
        let matrix = self.skolemize(form, &mut bound, &mut Vec::new());
        let cnf = self.to_cnf(&matrix)?;
        for clause in cnf {
            if clause.is_tautology() {
                continue;
            }
            self.clauses.push(clause);
            if self.clauses.len() > self.max_clauses {
                return Err(TranslationOverflow);
            }
        }
        Ok(())
    }

    /// Removes quantifiers from an NNF formula: universals become fresh free FOL
    /// variables, existentials become Skolem functions of the enclosing universals.
    fn skolemize(
        &mut self,
        form: &Form,
        bound: &mut BTreeMap<String, Term>,
        universals: &mut Vec<Term>,
    ) -> CnfTree {
        match form {
            Form::Binder(Binder::Forall, vars, body) => {
                let saved: Vec<Option<Term>> =
                    vars.iter().map(|(v, _)| bound.get(v).cloned()).collect();
                for (v, _) in vars {
                    let t = Term::Var(self.next_var);
                    self.next_var += 1;
                    universals.push(t.clone());
                    bound.insert(v.clone(), t);
                }
                let out = self.skolemize(body, bound, universals);
                for _ in vars {
                    universals.pop();
                }
                for ((v, _), old) in vars.iter().zip(saved) {
                    match old {
                        Some(t) => bound.insert(v.clone(), t),
                        None => bound.remove(v),
                    };
                }
                out
            }
            Form::Binder(Binder::Exists, vars, body) => {
                let saved: Vec<Option<Term>> =
                    vars.iter().map(|(v, _)| bound.get(v).cloned()).collect();
                for (v, _) in vars {
                    let name = format!("sk${}", self.next_skolem);
                    self.next_skolem += 1;
                    let t = Term::App(name, universals.clone());
                    bound.insert(v.clone(), t);
                }
                let out = self.skolemize(body, bound, universals);
                for ((v, _), old) in vars.iter().zip(saved) {
                    match old {
                        Some(t) => bound.insert(v.clone(), t),
                        None => bound.remove(v),
                    };
                }
                out
            }
            Form::App(head, args) => {
                if let Form::Const(c) = head.as_ref() {
                    match c {
                        Const::And => {
                            return CnfTree::And(
                                args.iter()
                                    .map(|a| self.skolemize(a, bound, universals))
                                    .collect(),
                            )
                        }
                        Const::Or => {
                            return CnfTree::Or(
                                args.iter()
                                    .map(|a| self.skolemize(a, bound, universals))
                                    .collect(),
                            )
                        }
                        Const::Not => {
                            let lit = self.atom_to_literal(&args[0], false, bound);
                            return CnfTree::Lit(lit);
                        }
                        _ => {}
                    }
                }
                CnfTree::Lit(self.atom_to_literal(form, true, bound))
            }
            Form::Const(Const::BoolLit(true)) => CnfTree::And(Vec::new()),
            Form::Const(Const::BoolLit(false)) => CnfTree::Or(Vec::new()),
            _ => CnfTree::Lit(self.atom_to_literal(form, true, bound)),
        }
    }

    fn atom_to_literal(
        &mut self,
        atom: &Form,
        positive: bool,
        bound: &BTreeMap<String, Term>,
    ) -> Literal {
        let a = self.convert_atom(atom, bound);
        if positive {
            Literal::pos(a)
        } else {
            Literal::neg(a)
        }
    }

    fn convert_atom(&mut self, atom: &Form, bound: &BTreeMap<String, Term>) -> Atom {
        if let Form::App(head, args) = atom {
            if let Form::Const(c) = head.as_ref() {
                match (c, args.as_slice()) {
                    (Const::Eq, [l, r]) => {
                        return Atom::eq(self.convert_term(l, bound), self.convert_term(r, bound))
                    }
                    (Const::Lt, [l, r]) | (Const::Gt, [r, l]) => {
                        self.used_arith = true;
                        let a = Atom::new(
                            "int$lt",
                            vec![self.convert_term(l, bound), self.convert_term(r, bound)],
                        );
                        self.preds.insert(("int$lt".to_string(), 2));
                        return a;
                    }
                    (Const::LtEq, [l, r]) | (Const::GtEq, [r, l]) => {
                        self.used_arith = true;
                        let a = Atom::new(
                            "int$le",
                            vec![self.convert_term(l, bound), self.convert_term(r, bound)],
                        );
                        self.preds.insert(("int$le".to_string(), 2));
                        return a;
                    }
                    (Const::Elem, [e, s]) => return self.convert_membership(e, s, bound),
                    (Const::Rtrancl, parts) if parts.len() == 3 => {
                        let body = parts[0].clone();
                        let idx = match self.rtrancl_bodies.iter().position(|b| *b == body) {
                            Some(i) => i,
                            None => {
                                self.rtrancl_bodies.push(body);
                                self.rtrancl_bodies.len() - 1
                            }
                        };
                        // The axioms for this predicate are stated with an application
                        // of the variable `reach$idx`, which converts through the
                        // predicate-variable path below; use the same name here.
                        let name = format!("p$reach${idx}");
                        self.preds.insert((name.clone(), 2));
                        return Atom::new(
                            name,
                            vec![
                                self.convert_term(&parts[1], bound),
                                self.convert_term(&parts[2], bound),
                            ],
                        );
                    }
                    _ => {}
                }
            }
            // Boolean-valued application of a variable, e.g. `edge x y`.
            if let Form::Var(p) = head.as_ref() {
                let converted: Vec<Term> =
                    args.iter().map(|a| self.convert_term(a, bound)).collect();
                self.preds.insert((format!("p${p}"), converted.len()));
                return Atom::new(format!("p${p}"), converted);
            }
        }
        if let Form::Var(p) = atom {
            if let Some(t) = bound.get(p) {
                // A boolean bound variable: encode as `t = true$`.
                return Atom::eq(t.clone(), Term::constant("true$"));
            }
            self.preds.insert((format!("p${p}"), 0));
            return Atom::new(format!("p${p}"), Vec::new());
        }
        // Fallback: an opaque propositional atom derived from the formula text.
        let name = format!("opaque${}", atom.size());
        self.preds.insert((name.clone(), 0));
        Atom::new(name, Vec::new())
    }

    fn convert_membership(
        &mut self,
        elem: &Form,
        set: &Form,
        bound: &BTreeMap<String, Term>,
    ) -> Atom {
        let mut components = match elem.as_app_of(&Const::Tuple) {
            Some(parts) => parts.iter().map(|p| self.convert_term(p, bound)).collect(),
            None => vec![self.convert_term(elem, bound)],
        };
        match set {
            Form::Var(s) => {
                let name = format!("in${s}");
                self.preds.insert((name.clone(), components.len()));
                Atom::new(name, components)
            }
            Form::App(head, args) => {
                if let Form::Var(f) = head.as_ref() {
                    let mut all: Vec<Term> =
                        args.iter().map(|a| self.convert_term(a, bound)).collect();
                    all.append(&mut components);
                    let name = format!("in${f}");
                    self.preds.insert((name.clone(), all.len()));
                    Atom::new(name, all)
                } else {
                    // Set-valued term we cannot decompose: use a binary membership
                    // predicate over an opaque set term.
                    let set_term = self.convert_term(set, bound);
                    components.push(set_term);
                    self.preds.insert(("in$".to_string(), components.len()));
                    Atom::new("in$", components)
                }
            }
            _ => {
                let set_term = self.convert_term(set, bound);
                components.push(set_term);
                self.preds.insert(("in$".to_string(), components.len()));
                Atom::new("in$", components)
            }
        }
    }

    fn convert_term(&mut self, term: &Form, bound: &BTreeMap<String, Term>) -> Term {
        match term {
            Form::Var(v) => match bound.get(v) {
                Some(t) => t.clone(),
                None => {
                    self.symbols.insert((v.clone(), 0));
                    Term::constant(v.clone())
                }
            },
            Form::Const(Const::Null) => Term::constant("null"),
            Form::Const(Const::IntLit(n)) => Term::constant(format!("int${n}")),
            Form::Const(Const::BoolLit(b)) => Term::constant(format!("bool${b}")),
            Form::Const(Const::EmptySet) => Term::constant("emptyset"),
            Form::Typed(inner, _) => self.convert_term(inner, bound),
            Form::App(head, args) => {
                let converted: Vec<Term> =
                    args.iter().map(|a| self.convert_term(a, bound)).collect();
                let name = match head.as_ref() {
                    Form::Var(f) => f.clone(),
                    Form::Const(Const::Plus) => {
                        self.used_arith = true;
                        "int$plus".to_string()
                    }
                    Form::Const(Const::Minus) => {
                        self.used_arith = true;
                        "int$minus".to_string()
                    }
                    Form::Const(Const::Times) => "int$times".to_string(),
                    Form::Const(Const::Div) => "int$div".to_string(),
                    Form::Const(Const::Mod) => "int$mod".to_string(),
                    Form::Const(Const::UMinus) => "int$uminus".to_string(),
                    Form::Const(Const::ArrayRead) => "array$read".to_string(),
                    Form::Const(Const::ArrayWrite) => "array$write".to_string(),
                    Form::Const(Const::FieldWrite) => "field$write".to_string(),
                    Form::Const(Const::Card) => "card".to_string(),
                    Form::Const(Const::Union) => "set$union".to_string(),
                    Form::Const(Const::Inter) => "set$inter".to_string(),
                    Form::Const(Const::Diff) => "set$diff".to_string(),
                    Form::Const(Const::FiniteSet) => "set$mk".to_string(),
                    Form::Const(Const::Tuple) => "tuple".to_string(),
                    _ => "term$opaque".to_string(),
                };
                self.symbols.insert((name.clone(), converted.len()));
                Term::App(name, converted)
            }
            _ => Term::constant("term$opaque"),
        }
    }

    fn to_cnf(&self, tree: &CnfTree) -> Result<Vec<Clause>, TranslationOverflow> {
        match tree {
            CnfTree::Lit(l) => Ok(vec![Clause::new(vec![l.clone()])]),
            CnfTree::And(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend(self.to_cnf(p)?);
                    if out.len() > self.max_clauses {
                        return Err(TranslationOverflow);
                    }
                }
                Ok(out)
            }
            CnfTree::Or(parts) => {
                let mut acc: Vec<Clause> = vec![Clause::empty()];
                for p in parts {
                    let sub = self.to_cnf(p)?;
                    let mut next = Vec::new();
                    for a in &acc {
                        for s in &sub {
                            let mut lits = a.literals.clone();
                            lits.extend(s.literals.clone());
                            next.push(Clause::new(lits));
                            if next.len() > self.max_clauses {
                                return Err(TranslationOverflow);
                            }
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
        }
    }
}

enum CnfTree {
    Lit(Literal),
    And(Vec<CnfTree>),
    Or(Vec<CnfTree>),
}

/// Equality axioms (symmetry, transitivity, and congruence for every symbol). A
/// reflexivity unit clause is added by the prover itself since it is syntactically a
/// tautology.
fn equality_axioms(
    symbols: &BTreeSet<(String, usize)>,
    preds: &BTreeSet<(String, usize)>,
) -> Vec<Clause> {
    let mut out = Vec::new();
    let x = Term::Var(0);
    let y = Term::Var(1);
    let z = Term::Var(2);
    // symmetry: x != y | y = x
    out.push(Clause::new(vec![
        Literal::neg(Atom::eq(x.clone(), y.clone())),
        Literal::pos(Atom::eq(y.clone(), x.clone())),
    ]));
    // transitivity: x != y | y != z | x = z
    out.push(Clause::new(vec![
        Literal::neg(Atom::eq(x.clone(), y.clone())),
        Literal::neg(Atom::eq(y.clone(), z.clone())),
        Literal::pos(Atom::eq(x.clone(), z.clone())),
    ]));
    // congruence for functions: xi != yi | f(xs) = f(ys)
    for (f, arity) in symbols {
        if *arity == 0 {
            continue;
        }
        let xs: Vec<Term> = (0..*arity as u32).map(Term::Var).collect();
        let ys: Vec<Term> = (0..*arity as u32)
            .map(|i| Term::Var(i + *arity as u32))
            .collect();
        let mut lits: Vec<Literal> = xs
            .iter()
            .zip(ys.iter())
            .map(|(a, b)| Literal::neg(Atom::eq(a.clone(), b.clone())))
            .collect();
        lits.push(Literal::pos(Atom::eq(
            Term::App(f.clone(), xs),
            Term::App(f.clone(), ys),
        )));
        out.push(Clause::new(lits));
    }
    // congruence for predicates: xi != yi | ~p(xs) | p(ys)
    for (p, arity) in preds {
        if *arity == 0 {
            continue;
        }
        let xs: Vec<Term> = (0..*arity as u32).map(Term::Var).collect();
        let ys: Vec<Term> = (0..*arity as u32)
            .map(|i| Term::Var(i + *arity as u32))
            .collect();
        let mut lits: Vec<Literal> = xs
            .iter()
            .zip(ys.iter())
            .map(|(a, b)| Literal::neg(Atom::eq(a.clone(), b.clone())))
            .collect();
        lits.push(Literal::neg(Atom::new(p.clone(), xs)));
        lits.push(Literal::pos(Atom::new(p.clone(), ys)));
        out.push(Clause::new(lits));
    }
    out
}

/// Instantiates the body of a transitive-closure lambda on two terms (used by the axiom
/// generator via `Form::app`, which the clausifier beta-reduces on conversion).
#[allow(dead_code)]
fn apply_body(body: &Form, a: &Form, b: &Form) -> Form {
    match body {
        Form::Binder(Binder::Lambda, vars, inner) if vars.len() == 2 => {
            let s1 = substitute_one(inner, &vars[0].0, a);
            substitute_one(&s1, &vars[1].0, b)
        }
        other => Form::app(other.clone(), vec![a.clone(), b.clone()]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::parse_form;

    fn seq(assumptions: &[&str], goal: &str) -> Sequent {
        Sequent::new(
            assumptions
                .iter()
                .map(|a| parse_form(a).expect("parse"))
                .collect(),
            parse_form(goal).expect("parse"),
        )
    }

    #[test]
    fn translates_simple_ground_sequent() {
        let s = seq(&["x = y", "y = z"], "x = z");
        let clauses = sequent_to_clauses(&s, &TranslateOptions::new()).expect("translate");
        // Three unit clauses (two assumptions and the negated goal) plus equality axioms.
        assert!(clauses
            .iter()
            .any(|c| c.literals.len() == 1 && !c.literals[0].positive));
        assert!(clauses.len() >= 4);
    }

    #[test]
    fn membership_becomes_predicates() {
        let s = seq(&["x : content"], "x : content Un {y}");
        let clauses = sequent_to_clauses(&s, &TranslateOptions::new()).expect("translate");
        let text = clauses
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("in$content"));
    }

    #[test]
    fn quantified_assumptions_become_clauses_with_variables() {
        let s = seq(
            &["ALL x. x : Node --> x..next ~= x"],
            "n : Node --> n..next ~= n",
        );
        let clauses = sequent_to_clauses(&s, &TranslateOptions::new()).expect("translate");
        assert!(clauses.iter().any(|c| !c.vars().is_empty()));
    }

    #[test]
    fn existential_goals_are_skolemized_in_assumptions() {
        // The negated goal ~(EX v. p v) becomes ALL v. ~p v, i.e. a clause with a variable;
        // an existential assumption becomes a Skolem constant.
        let s = seq(&["EX v. (k, v) : content"], "EX v. (k, v) : content");
        let clauses = sequent_to_clauses(&s, &TranslateOptions::new()).expect("translate");
        let text = clauses
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("sk$"));
    }

    #[test]
    fn rtrancl_generates_reachability_axioms() {
        let s = seq(
            &["rtrancl_pt (% u v. u..next = v) root x"],
            "rtrancl_pt (% u v. u..next = v) root x",
        );
        let clauses = sequent_to_clauses(&s, &TranslateOptions::new()).expect("translate");
        let text = clauses
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("reach$0"));
        // The reach reflexivity axiom must be present as a unit clause (the predicate is
        // emitted through the predicate-variable path, hence the `p$` prefix).
        assert!(clauses
            .iter()
            .any(|c| c.literals.len() == 1 && c.literals[0].atom.pred == "p$reach$0"));
    }

    #[test]
    fn cardinality_atoms_are_approximated_away() {
        let s = seq(&["card content = size"], "x = x");
        let clauses = sequent_to_clauses(&s, &TranslateOptions::new()).expect("translate");
        let text = clauses
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!text.contains("card"));
    }

    #[test]
    fn function_equalities_expand_pointwise() {
        let mut opts = TranslateOptions::new();
        opts.fun_vars.insert("next".to_string());
        let s = seq(
            &["next = (old_next)(x := y)"],
            "next z = old_next z | z = x",
        );
        let clauses = sequent_to_clauses(&s, &opts).expect("translate");
        let text = clauses
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("next(X"));
    }

    #[test]
    fn overflow_is_reported() {
        // A goal with a large disjunction of conjunctions blows past a tiny budget.
        let mut big = String::from("a0 = b0 & c0 = d0");
        for i in 1..10 {
            big.push_str(&format!(" | a{i} = b{i} & c{i} = d{i}"));
        }
        let s = seq(&[], &big);
        let mut opts = TranslateOptions::new();
        opts.max_clauses = 8;
        assert_eq!(sequent_to_clauses(&s, &opts), Err(TranslationOverflow));
    }
}
