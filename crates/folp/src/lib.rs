//! # jahob-folp
//!
//! A from-scratch first-order resolution prover playing the role of SPASS and E in the
//! Jahob reproduction (§6.2 of *Full Functional Verification of Linked Data Structures*,
//! PLDI 2008).
//!
//! The crate has three layers:
//!
//! * [`fol`] — first-order terms, literals, clauses, unification and matching;
//! * [`translate`] — the Jahob-style translation from higher-order sequents to clauses
//!   (set memberships become predicates, transitive closure becomes an axiomatised
//!   reachability predicate, unsupported constructs are approximated away by polarity);
//! * [`resolution`] — a given-clause saturation loop with binary resolution, factoring
//!   and subsumption.
//!
//! The convenience function [`prove_sequent`] runs the full pipeline and reports whether
//! the sequent was proved.
//!
//! # Example
//!
//! ```
//! use jahob_folp::{prove_sequent, FolOptions};
//! use jahob_logic::{parse_form, Sequent};
//!
//! let sequent = Sequent::new(
//!     vec![parse_form("ALL x. x : Node --> x..next : Node").unwrap(),
//!          parse_form("n : Node").unwrap()],
//!     parse_form("n..next : Node").unwrap(),
//! );
//! assert!(prove_sequent(&sequent, &FolOptions::default()).proved);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fol;
pub mod resolution;
pub mod translate;

pub use fol::{Atom, Clause, Literal, Term};
pub use resolution::{saturate, ResolutionLimits, ResolutionOutcome, ResolutionStats};
pub use translate::{sequent_to_clauses, TranslateOptions, TranslationOverflow};

use jahob_logic::Sequent;

/// Options for the end-to-end first-order prover.
#[derive(Debug, Clone, Default)]
pub struct FolOptions {
    /// Translation options (set/field variable declarations, clause budget).
    pub translate: TranslateOptions,
    /// Saturation limits.
    pub limits: ResolutionLimits,
}

impl FolOptions {
    /// Options with the given known set-valued and function-valued variable names.
    pub fn with_environment(
        set_vars: impl IntoIterator<Item = String>,
        fun_vars: impl IntoIterator<Item = String>,
    ) -> Self {
        let mut t = TranslateOptions::new();
        t.set_vars.extend(set_vars);
        t.fun_vars.extend(fun_vars);
        FolOptions {
            translate: t,
            limits: ResolutionLimits::default(),
        }
    }
}

/// Result of an end-to-end proof attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FolResult {
    /// `true` if the sequent was proved valid.
    pub proved: bool,
    /// The saturation outcome (or `None` if translation overflowed).
    pub outcome: Option<ResolutionOutcome>,
    /// Saturation statistics.
    pub stats: ResolutionStats,
}

impl FolResult {
    /// `true` when the attempt stopped on a resource limit (iteration/clause/time
    /// budget) rather than reaching saturation or a proof — the verdict is
    /// *unknown*, and a caller running with deliberately reduced
    /// [`ResolutionLimits`] as a fuel budget should treat the attempt as aborted,
    /// not failed. A translation overflow (`outcome == None`) is a genuine
    /// rejection: larger saturation limits cannot help a sequent that never
    /// produced clauses.
    pub fn resource_limited(&self) -> bool {
        self.outcome == Some(ResolutionOutcome::ResourceLimit)
    }

    /// `true` when the attempt stopped because it passed the wall-clock deadline of
    /// [`ResolutionLimits::deadline`] — also an unknown verdict, but attributed to
    /// time rather than fuel.
    pub fn deadline_exceeded(&self) -> bool {
        self.outcome == Some(ResolutionOutcome::DeadlineLimit)
    }
}

/// Translates a sequent to clauses and attempts to refute them.
pub fn prove_sequent(sequent: &Sequent, options: &FolOptions) -> FolResult {
    match sequent_to_clauses(sequent, &options.translate) {
        Ok(clauses) => {
            let (outcome, stats) = saturate(&clauses, options.limits);
            FolResult {
                proved: outcome == ResolutionOutcome::Proved,
                outcome: Some(outcome),
                stats,
            }
        }
        Err(TranslationOverflow) => FolResult {
            proved: false,
            outcome: None,
            stats: ResolutionStats::default(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::parse_form;

    fn seq(assumptions: &[&str], goal: &str) -> Sequent {
        Sequent::new(
            assumptions
                .iter()
                .map(|a| parse_form(a).expect("parse"))
                .collect(),
            parse_form(goal).expect("parse"),
        )
    }

    fn proves(assumptions: &[&str], goal: &str) -> bool {
        prove_sequent(&seq(assumptions, goal), &FolOptions::default()).proved
    }

    #[test]
    fn proves_propositional_sequents() {
        assert!(proves(&["p", "p --> q"], "q"));
        assert!(!proves(&["p | q"], "p"));
    }

    #[test]
    fn proves_equational_reasoning() {
        assert!(proves(&["x = y", "y = z"], "x = z"));
        assert!(!proves(&["x = y"], "x = z"));
    }

    #[test]
    fn proves_quantifier_instantiation() {
        assert!(proves(
            &[
                "ALL x. x : Node & x ~= null --> x..next : Node",
                "n : Node",
                "n ~= null"
            ],
            "n..next : Node"
        ));
    }

    #[test]
    fn proves_membership_propagation_through_quantified_assumptions() {
        assert!(proves(
            &[
                "ALL k v. (k, v) : content0 --> (k, v) : content1",
                "(k0, v0) : content0"
            ],
            "(k0, v0) : content1"
        ));
    }

    #[test]
    fn proves_reachability_steps() {
        // From reflexivity and step inclusion of the generated reach predicate.
        assert!(proves(&[], "rtrancl_pt (% u v. u..next = v) root root"));
        assert!(proves(
            &["root..next = mid"],
            "rtrancl_pt (% u v. u..next = v) root mid"
        ));
    }

    #[test]
    fn does_not_prove_invalid_reachability() {
        assert!(!proves(
            &["root..next = mid"],
            "rtrancl_pt (% u v. u..next = v) mid root"
        ));
    }

    #[test]
    fn respects_by_hints_via_filtered_sequents() {
        let s = seq(
            &[
                "comment ''irrelevant'' (huge : content)",
                "comment ''key'' (a = b)",
            ],
            "b = a",
        );
        let filtered = s.filter_by_labels(&["key".to_string()]);
        assert!(prove_sequent(&filtered, &FolOptions::default()).proved);
    }
}
