//! A saturation-based resolution prover.
//!
//! The prover implements the given-clause loop with binary resolution, factoring,
//! tautology deletion and forward subsumption. Equality is handled through the axioms
//! emitted by [`crate::translate`] (symmetry, transitivity, congruence) plus a built-in
//! reflexivity clause. Resolution uses *negative-literal selection*: a clause that
//! contains negative literals may only be resolved on its first negative literal, which
//! drastically curbs the explosion caused by the equality axioms while preserving
//! refutational completeness (every positive literal of the other premise remains
//! available). Derived clauses larger than a configurable bound are discarded, trading
//! completeness for predictable resource usage — acceptable because the dispatcher only
//! acts on `Proved` answers.

use crate::fol::{unify_atoms, Atom, Clause, Literal, Subst, Term};
use std::time::{Duration, Instant};

/// Resource limits for the saturation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolutionLimits {
    /// Maximum number of given clauses processed.
    pub max_iterations: usize,
    /// Maximum number of clauses retained overall.
    pub max_clauses: usize,
    /// Derived clauses with more symbols than this are discarded.
    pub max_clause_size: usize,
    /// Derived clauses with more literals than this are discarded.
    pub max_literals: usize,
    /// Wall-clock budget in milliseconds (a safety net so that a single proof attempt
    /// cannot stall a verification run; `0` disables the check).
    pub max_millis: u64,
    /// Absolute wall-clock deadline, checked at the same cooperative point of the
    /// given-clause loop as `max_millis`. Unlike the relative budget, passing the
    /// deadline is reported as the distinguished
    /// [`ResolutionOutcome::DeadlineLimit`] so callers can attribute the stop to
    /// time rather than fuel. `None` (the default) disables the check.
    pub deadline: Option<Instant>,
}

impl Default for ResolutionLimits {
    fn default() -> Self {
        ResolutionLimits {
            max_iterations: 400,
            max_clauses: 4_000,
            max_clause_size: 48,
            max_literals: 6,
            max_millis: 2_000,
            deadline: None,
        }
    }
}

/// Outcome of a saturation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionOutcome {
    /// The empty clause was derived: the input clause set is unsatisfiable.
    Proved,
    /// The clause set was saturated without deriving the empty clause (under the
    /// incomplete strategy this does not guarantee satisfiability).
    Saturated,
    /// A resource limit was reached.
    ResourceLimit,
    /// The wall-clock deadline ([`ResolutionLimits::deadline`]) passed before the
    /// loop reached an answer. Like `ResourceLimit`, the verdict is unknown — but
    /// the stop is attributed to time, not fuel.
    DeadlineLimit,
}

/// Statistics from a saturation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolutionStats {
    /// Number of given clauses processed.
    pub iterations: usize,
    /// Number of clauses generated (before deletion).
    pub generated: usize,
    /// Number of clauses retained.
    pub retained: usize,
}

/// Runs the saturation loop on the given clause set.
pub fn saturate(
    clauses: &[Clause],
    limits: ResolutionLimits,
) -> (ResolutionOutcome, ResolutionStats) {
    let start = Instant::now();
    let deadline = if limits.max_millis == 0 {
        None
    } else {
        Some(Duration::from_millis(limits.max_millis))
    };
    let mut stats = ResolutionStats::default();
    let mut active: Vec<Clause> = Vec::new();
    let mut passive: Vec<Clause> = Vec::new();

    // Built-in reflexivity (kept out of tautology deletion).
    passive.push(Clause {
        literals: vec![Literal::pos(Atom::eq(Term::Var(0), Term::Var(0)))],
    });
    for c in clauses {
        if c.is_empty() {
            return (ResolutionOutcome::Proved, stats);
        }
        if !c.is_tautology() {
            passive.push(c.clone());
        }
    }

    while let Some(idx) = pick_given(&passive) {
        if stats.iterations >= limits.max_iterations {
            return (ResolutionOutcome::ResourceLimit, stats);
        }
        if active.len() + passive.len() > limits.max_clauses {
            return (ResolutionOutcome::ResourceLimit, stats);
        }
        if let Some(d) = deadline {
            if start.elapsed() > d {
                return (ResolutionOutcome::ResourceLimit, stats);
            }
        }
        if let Some(d) = limits.deadline {
            if Instant::now() >= d {
                return (ResolutionOutcome::DeadlineLimit, stats);
            }
        }
        stats.iterations += 1;
        let given = passive.swap_remove(idx);
        if is_forward_subsumed(&given, &active) {
            continue;
        }

        let mut new_clauses = Vec::new();
        // Factoring on the given clause.
        new_clauses.extend(factors(&given));
        // Binary resolution with every active clause and with itself.
        for other in active.iter().chain(std::iter::once(&given)) {
            new_clauses.extend(resolvents(&given, other));
        }
        active.push(given);

        for c in new_clauses {
            stats.generated += 1;
            if c.is_empty() {
                stats.retained = active.len() + passive.len();
                return (ResolutionOutcome::Proved, stats);
            }
            if c.is_tautology()
                || c.literals.len() > limits.max_literals
                || c.size() > limits.max_clause_size
            {
                continue;
            }
            if is_forward_subsumed(&c, &active) || is_forward_subsumed(&c, &passive) {
                continue;
            }
            passive.push(c);
            if active.len() + passive.len() > limits.max_clauses {
                return (ResolutionOutcome::ResourceLimit, stats);
            }
        }
    }
    stats.retained = active.len();
    (ResolutionOutcome::Saturated, stats)
}

/// Picks the index of the smallest passive clause (a simple best-first heuristic).
fn pick_given(passive: &[Clause]) -> Option<usize> {
    passive
        .iter()
        .enumerate()
        .min_by_key(|(_, c)| (c.size(), c.literals.len()))
        .map(|(i, _)| i)
}

/// The index of the literal a clause is allowed to resolve on *negatively*: its first
/// negative literal, if any (negative-literal selection).
fn selected_negative(c: &Clause) -> Option<usize> {
    c.literals.iter().position(|l| !l.positive)
}

/// All binary resolvents of `a` and `b` under negative-literal selection: the negative
/// partner of every inference must be the selected negative literal of its clause.
fn resolvents(a: &Clause, b: &Clause) -> Vec<Clause> {
    let mut out = Vec::new();
    // Rename apart.
    let offset = a.var_bound();
    let b = b.shift_vars(offset);
    let sel_a = selected_negative(a);
    let sel_b = selected_negative(&b);
    for (i, la) in a.literals.iter().enumerate() {
        for (j, lb) in b.literals.iter().enumerate() {
            if la.positive == lb.positive {
                continue;
            }
            // Enforce selection on whichever premise contributes the negative literal.
            if !la.positive && sel_a != Some(i) {
                continue;
            }
            if !lb.positive && sel_b != Some(j) {
                continue;
            }
            let mut subst = Subst::new();
            if unify_atoms(&la.atom, &lb.atom, &mut subst) {
                let mut lits = Vec::new();
                for (k, l) in a.literals.iter().enumerate() {
                    if k != i {
                        lits.push(l.apply(&subst));
                    }
                }
                for (k, l) in b.literals.iter().enumerate() {
                    if k != j {
                        lits.push(l.apply(&subst));
                    }
                }
                out.push(Clause::new(lits));
            }
        }
    }
    out
}

/// All binary factors of a clause (unifying two literals of the same sign).
fn factors(c: &Clause) -> Vec<Clause> {
    let mut out = Vec::new();
    for i in 0..c.literals.len() {
        for j in (i + 1)..c.literals.len() {
            let (li, lj) = (&c.literals[i], &c.literals[j]);
            if li.positive != lj.positive {
                continue;
            }
            let mut subst = Subst::new();
            if unify_atoms(&li.atom, &lj.atom, &mut subst) {
                out.push(c.apply(&subst));
            }
        }
    }
    out
}

/// Returns `true` if `clause` is subsumed by some clause in `set`.
fn is_forward_subsumed(clause: &Clause, set: &[Clause]) -> bool {
    set.iter().any(|c| subsumes(c, clause))
}

/// Returns `true` if `general` subsumes `specific`: some substitution maps every literal
/// of `general` onto a literal of `specific`.
fn subsumes(general: &Clause, specific: &Clause) -> bool {
    if general.literals.len() > specific.literals.len() {
        return false;
    }
    // Cheap prefilter: every predicate symbol (with sign) of `general` must occur in
    // `specific`, otherwise no literal matching can exist.
    if !general.literals.iter().all(|lg| {
        specific
            .literals
            .iter()
            .any(|ls| ls.positive == lg.positive && ls.atom.pred == lg.atom.pred)
    }) {
        return false;
    }
    // Rename `general` apart from `specific` so matching cannot capture.
    let general = general.shift_vars(specific.var_bound());
    fn go(remaining: &[Literal], specific: &Clause, subst: &Subst) -> bool {
        let Some((first, rest)) = remaining.split_first() else {
            return true;
        };
        for target in &specific.literals {
            if target.positive != first.positive {
                continue;
            }
            let mut s = subst.clone();
            if match_atom(&first.atom, &target.atom, &mut s) && go(rest, specific, &s) {
                return true;
            }
        }
        false
    }
    go(&general.literals, specific, &Subst::new())
}

fn match_atom(pattern: &Atom, target: &Atom, subst: &mut Subst) -> bool {
    pattern.pred == target.pred
        && pattern.args.len() == target.args.len()
        && pattern
            .args
            .iter()
            .zip(target.args.iter())
            .all(|(p, t)| crate::fol::match_terms(p, t, subst))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str) -> Term {
        Term::constant(name)
    }

    fn v(n: u32) -> Term {
        Term::Var(n)
    }

    fn p(name: &str, args: Vec<Term>) -> Atom {
        Atom::new(name, args)
    }

    #[test]
    fn derives_empty_clause_from_direct_contradiction() {
        let clauses = vec![
            Clause::new(vec![Literal::pos(p("q", vec![c("a")]))]),
            Clause::new(vec![Literal::neg(p("q", vec![c("a")]))]),
        ];
        let (outcome, _) = saturate(&clauses, ResolutionLimits::default());
        assert_eq!(outcome, ResolutionOutcome::Proved);
    }

    #[test]
    fn proves_modus_ponens_with_quantifiers() {
        // ALL x. p(x) -> q(x),  p(a),  ~q(a)
        let clauses = vec![
            Clause::new(vec![
                Literal::neg(p("p", vec![v(0)])),
                Literal::pos(p("q", vec![v(0)])),
            ]),
            Clause::new(vec![Literal::pos(p("p", vec![c("a")]))]),
            Clause::new(vec![Literal::neg(p("q", vec![c("a")]))]),
        ];
        let (outcome, stats) = saturate(&clauses, ResolutionLimits::default());
        assert_eq!(outcome, ResolutionOutcome::Proved);
        assert!(stats.iterations > 0);
    }

    #[test]
    fn saturates_on_satisfiable_sets() {
        let clauses = vec![
            Clause::new(vec![Literal::pos(p("p", vec![c("a")]))]),
            Clause::new(vec![Literal::pos(p("q", vec![c("b")]))]),
        ];
        let (outcome, _) = saturate(&clauses, ResolutionLimits::default());
        assert_eq!(outcome, ResolutionOutcome::Saturated);
    }

    #[test]
    fn transitivity_chain_with_equality_axioms() {
        // a = b, b = c, goal a = c (negated) with symmetry/transitivity axioms.
        let clauses = vec![
            Clause::new(vec![Literal::pos(Atom::eq(c("a"), c("b")))]),
            Clause::new(vec![Literal::pos(Atom::eq(c("b"), c("c")))]),
            Clause::new(vec![Literal::neg(Atom::eq(c("a"), c("c")))]),
            // transitivity
            Clause::new(vec![
                Literal::neg(Atom::eq(v(0), v(1))),
                Literal::neg(Atom::eq(v(1), v(2))),
                Literal::pos(Atom::eq(v(0), v(2))),
            ]),
        ];
        let (outcome, _) = saturate(&clauses, ResolutionLimits::default());
        assert_eq!(outcome, ResolutionOutcome::Proved);
    }

    #[test]
    fn factoring_is_applied() {
        // p(x) | p(a)  and  ~p(a): needs factoring (or two resolution steps).
        let clauses = vec![
            Clause::new(vec![
                Literal::pos(p("p", vec![v(0)])),
                Literal::pos(p("p", vec![c("a")])),
            ]),
            Clause::new(vec![Literal::neg(p("p", vec![c("a")]))]),
        ];
        let (outcome, _) = saturate(&clauses, ResolutionLimits::default());
        assert_eq!(outcome, ResolutionOutcome::Proved);
    }

    #[test]
    fn subsumption_discards_weaker_clauses() {
        let general = Clause::new(vec![Literal::pos(p("p", vec![v(0)]))]);
        let specific = Clause::new(vec![
            Literal::pos(p("p", vec![c("a")])),
            Literal::pos(p("q", vec![c("b")])),
        ]);
        assert!(subsumes(&general, &specific));
        assert!(!subsumes(&specific, &general));
    }

    #[test]
    fn resource_limits_are_respected() {
        // An exploding clause set (a growing chain) with a tiny iteration budget.
        let clauses = vec![
            Clause::new(vec![Literal::pos(p("p", vec![c("a")]))]),
            Clause::new(vec![
                Literal::neg(p("p", vec![v(0)])),
                Literal::pos(p("p", vec![Term::App("f".into(), vec![v(0)])])),
            ]),
            Clause::new(vec![Literal::neg(p("q", vec![c("z")]))]),
        ];
        let limits = ResolutionLimits {
            max_iterations: 5,
            ..ResolutionLimits::default()
        };
        let (outcome, stats) = saturate(&clauses, limits);
        assert_eq!(outcome, ResolutionOutcome::ResourceLimit);
        assert!(stats.iterations <= 5);
    }
}
