//! First-order terms, literals, clauses and unification.
//!
//! The resolution prover works on clauses over untyped first-order terms. Variables are
//! numbered; function and predicate symbols are named strings (constants are nullary
//! functions). Equality is the distinguished predicate [`EQ`].

use std::collections::BTreeMap;
use std::fmt;

/// The distinguished equality predicate symbol.
pub const EQ: &str = "=";

/// A first-order term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable (implicitly universally quantified at the clause level).
    Var(u32),
    /// Application of a function symbol (constants have no arguments).
    App(String, Vec<Term>),
}

impl Term {
    /// A constant (nullary function symbol).
    pub fn constant(name: impl Into<String>) -> Term {
        Term::App(name.into(), Vec::new())
    }

    /// Collects the variables of the term into `out`.
    pub fn vars(&self, out: &mut Vec<u32>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::App(_, args) => args.iter().for_each(|a| a.vars(out)),
        }
    }

    /// The number of symbols in the term.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) => 1,
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }

    /// Applies a substitution, following binding chains so that a variable bound to
    /// another bound variable resolves all the way to its final value (unification
    /// produces acyclic bindings, so the recursion terminates).
    pub fn apply(&self, subst: &Subst) -> Term {
        match self {
            Term::Var(v) => match subst.get(v) {
                Some(t) => t.apply(subst),
                None => self.clone(),
            },
            Term::App(f, args) => {
                Term::App(f.clone(), args.iter().map(|a| a.apply(subst)).collect())
            }
        }
    }

    /// Renames every variable by adding `offset`.
    pub fn shift_vars(&self, offset: u32) -> Term {
        match self {
            Term::Var(v) => Term::Var(v + offset),
            Term::App(f, args) => Term::App(
                f.clone(),
                args.iter().map(|a| a.shift_vars(offset)).collect(),
            ),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "X{v}"),
            Term::App(name, args) => {
                write!(f, "{name}")?;
                if !args.is_empty() {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

/// A substitution mapping variables to terms.
pub type Subst = BTreeMap<u32, Term>;

/// An atom: a predicate applied to terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: String,
    /// Arguments.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(pred: impl Into<String>, args: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// An equality atom.
    pub fn eq(lhs: Term, rhs: Term) -> Atom {
        Atom::new(EQ, vec![lhs, rhs])
    }

    /// Applies a substitution.
    pub fn apply(&self, subst: &Subst) -> Atom {
        Atom {
            pred: self.pred.clone(),
            args: self.args.iter().map(|a| a.apply(subst)).collect(),
        }
    }

    /// Renames every variable by adding `offset`.
    pub fn shift_vars(&self, offset: u32) -> Atom {
        Atom {
            pred: self.pred.clone(),
            args: self.args.iter().map(|a| a.shift_vars(offset)).collect(),
        }
    }

    /// Collects the variables of the atom.
    pub fn vars(&self, out: &mut Vec<u32>) {
        self.args.iter().for_each(|a| a.vars(out));
    }

    /// The number of symbols in the atom.
    pub fn size(&self) -> usize {
        1 + self.args.iter().map(Term::size).sum::<usize>()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pred == EQ && self.args.len() == 2 {
            write!(f, "{} = {}", self.args[0], self.args[1])
        } else {
            write!(f, "{}", Term::App(self.pred.clone(), self.args.clone()))
        }
    }
}

/// A literal: an atom or its negation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// `true` for a positive literal.
    pub positive: bool,
    /// The underlying atom.
    pub atom: Atom,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal {
            positive: true,
            atom,
        }
    }

    /// A negative literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal {
            positive: false,
            atom,
        }
    }

    /// The complementary literal.
    pub fn negate(&self) -> Literal {
        Literal {
            positive: !self.positive,
            atom: self.atom.clone(),
        }
    }

    /// Applies a substitution.
    pub fn apply(&self, subst: &Subst) -> Literal {
        Literal {
            positive: self.positive,
            atom: self.atom.apply(subst),
        }
    }

    /// Renames every variable by adding `offset`.
    pub fn shift_vars(&self, offset: u32) -> Literal {
        Literal {
            positive: self.positive,
            atom: self.atom.shift_vars(offset),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.atom)
        } else {
            write!(f, "~{}", self.atom)
        }
    }
}

/// A clause: a disjunction of literals (the empty clause is a contradiction).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Clause {
    /// The literals of the clause.
    pub literals: Vec<Literal>,
}

impl Clause {
    /// Creates a clause, removing duplicate literals.
    pub fn new(mut literals: Vec<Literal>) -> Clause {
        literals.sort();
        literals.dedup();
        Clause { literals }
    }

    /// The empty clause (a contradiction).
    pub fn empty() -> Clause {
        Clause {
            literals: Vec::new(),
        }
    }

    /// Whether the clause is empty.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Whether the clause is a tautology (contains complementary or trivially true
    /// literals).
    pub fn is_tautology(&self) -> bool {
        for l in &self.literals {
            if l.positive
                && l.atom.pred == EQ
                && l.atom.args.len() == 2
                && l.atom.args[0] == l.atom.args[1]
            {
                return true;
            }
            if l.positive
                && self
                    .literals
                    .iter()
                    .any(|m| !m.positive && m.atom == l.atom)
            {
                return true;
            }
        }
        false
    }

    /// The number of symbols in the clause.
    pub fn size(&self) -> usize {
        self.literals.iter().map(|l| l.atom.size()).sum()
    }

    /// The variables of the clause.
    pub fn vars(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for l in &self.literals {
            l.atom.vars(&mut out);
        }
        out
    }

    /// Applies a substitution.
    pub fn apply(&self, subst: &Subst) -> Clause {
        Clause::new(self.literals.iter().map(|l| l.apply(subst)).collect())
    }

    /// Renames variables so they do not collide with clauses using variables below
    /// `offset`.
    pub fn shift_vars(&self, offset: u32) -> Clause {
        Clause {
            literals: self.literals.iter().map(|l| l.shift_vars(offset)).collect(),
        }
    }

    /// The largest variable index occurring in the clause plus one.
    pub fn var_bound(&self) -> u32 {
        self.vars().into_iter().max().map_or(0, |v| v + 1)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "[]");
        }
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------- unification

/// Unifies two terms under an existing substitution, extending it on success.
pub fn unify_terms(a: &Term, b: &Term, subst: &mut Subst) -> bool {
    let a = walk(a, subst);
    let b = walk(b, subst);
    match (&a, &b) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), t) | (t, Term::Var(x)) => {
            if occurs(*x, t, subst) {
                false
            } else {
                subst.insert(*x, t.clone());
                true
            }
        }
        (Term::App(f, fa), Term::App(g, ga)) => {
            if f != g || fa.len() != ga.len() {
                return false;
            }
            fa.iter()
                .zip(ga.iter())
                .all(|(x, y)| unify_terms(x, y, subst))
        }
    }
}

/// Unifies two atoms.
pub fn unify_atoms(a: &Atom, b: &Atom, subst: &mut Subst) -> bool {
    a.pred == b.pred
        && a.args.len() == b.args.len()
        && a.args
            .iter()
            .zip(b.args.iter())
            .all(|(x, y)| unify_terms(x, y, subst))
}

fn walk(t: &Term, subst: &Subst) -> Term {
    match t {
        Term::Var(v) => match subst.get(v) {
            Some(bound) => walk(bound, subst),
            None => t.clone(),
        },
        _ => t.clone(),
    }
}

fn occurs(v: u32, t: &Term, subst: &Subst) -> bool {
    match walk(t, subst) {
        Term::Var(w) => v == w,
        Term::App(_, args) => args.iter().any(|a| occurs(v, a, subst)),
    }
}

/// Matches `pattern` against `target` (one-way unification), extending `subst`.
pub fn match_terms(pattern: &Term, target: &Term, subst: &mut Subst) -> bool {
    match pattern {
        Term::Var(v) => match subst.get(v) {
            Some(bound) => bound == target,
            None => {
                subst.insert(*v, target.clone());
                true
            }
        },
        Term::App(f, fa) => match target {
            Term::App(g, ga) if f == g && fa.len() == ga.len() => fa
                .iter()
                .zip(ga.iter())
                .all(|(p, t)| match_terms(p, t, subst)),
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> Term {
        Term::Var(n)
    }

    fn c(name: &str) -> Term {
        Term::constant(name)
    }

    fn f(name: &str, args: Vec<Term>) -> Term {
        Term::App(name.to_string(), args)
    }

    #[test]
    fn unification_binds_variables() {
        let mut s = Subst::new();
        assert!(unify_terms(
            &f("next", vec![v(0)]),
            &f("next", vec![c("a")]),
            &mut s
        ));
        assert_eq!(s.get(&0), Some(&c("a")));
    }

    #[test]
    fn unification_occurs_check() {
        let mut s = Subst::new();
        assert!(!unify_terms(&v(0), &f("next", vec![v(0)]), &mut s));
    }

    #[test]
    fn unification_propagates_through_chains() {
        let mut s = Subst::new();
        assert!(unify_terms(&v(0), &v(1), &mut s));
        assert!(unify_terms(&v(1), &c("a"), &mut s));
        // X0 is bound to X1 which is bound to a; `apply` resolves the whole chain.
        assert_eq!(walk(&v(0), &s), c("a"));
        assert_eq!(f("g", vec![v(0)]).apply(&s), f("g", vec![c("a")]));
        assert_eq!(f("g", vec![v(1)]).apply(&s), f("g", vec![c("a")]));
    }

    #[test]
    fn clause_dedups_and_detects_tautologies() {
        let a = Atom::new("p", vec![c("x")]);
        let cl = Clause::new(vec![Literal::pos(a.clone()), Literal::pos(a.clone())]);
        assert_eq!(cl.literals.len(), 1);
        let taut = Clause::new(vec![Literal::pos(a.clone()), Literal::neg(a)]);
        assert!(taut.is_tautology());
        let refl = Clause::new(vec![Literal::pos(Atom::eq(c("a"), c("a")))]);
        assert!(refl.is_tautology());
    }

    #[test]
    fn matching_is_one_way() {
        let mut s = Subst::new();
        assert!(match_terms(
            &f("p", vec![v(0)]),
            &f("p", vec![c("a")]),
            &mut s
        ));
        let mut s2 = Subst::new();
        assert!(!match_terms(
            &f("p", vec![c("a")]),
            &f("p", vec![v(0)]),
            &mut s2
        ));
    }

    #[test]
    fn display_formats() {
        let cl = Clause::new(vec![
            Literal::neg(Atom::new("Node", vec![v(0)])),
            Literal::pos(Atom::eq(f("next", vec![v(0)]), c("null"))),
        ]);
        let text = cl.to_string();
        assert!(text.contains("~Node(X0)"));
        assert!(text.contains("next(X0) = null"));
    }
}
