//! WS1S: weak monadic second-order logic of one successor, decided by automata.
//!
//! This is the core of the MONA substitute (§6.4 of the paper). Formulas talk about
//! natural-number *positions* (first-order variables) and finite *sets of positions*
//! (second-order variables); the decision procedure compiles a formula into a finite
//! automaton over bit-vector tracks — one track per variable — such that the automaton
//! accepts exactly the encodings of satisfying assignments. Validity, satisfiability and
//! witness extraction then reduce to automaton emptiness.
//!
//! First-order variables are encoded as singleton sets (the standard MONA encoding): the
//! track of a first-order variable carries exactly one `1`, at the variable's position.

// The primitive-automaton constructors fill several transition rows per symbol index, so
// the symbol loop indexes `trans[state][a]` directly; an iterator rewrite would obscure
// the transition tables.
#![allow(clippy::needless_range_loop)]

use jahob_automata::{Dfa, Nfa};
use std::collections::BTreeMap;
use std::fmt;

/// A WS1S formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ws1s {
    /// `True`.
    True,
    /// `False`.
    False,
    /// Negation.
    Not(Box<Ws1s>),
    /// Conjunction.
    And(Vec<Ws1s>),
    /// Disjunction.
    Or(Vec<Ws1s>),
    /// Implication.
    Implies(Box<Ws1s>, Box<Ws1s>),
    /// First-order: position equality `x = y`.
    EqPos(String, String),
    /// First-order: strict order `x < y`.
    Less(String, String),
    /// First-order: successor `y = x + 1`.
    Succ(String, String),
    /// `x` is the first position (0).
    IsFirst(String),
    /// `x` is the last position of the word.
    IsLast(String),
    /// Membership `x ∈ X`.
    In(String, String),
    /// Set inclusion `X ⊆ Y`.
    Subset(String, String),
    /// Set equality `X = Y`.
    EqSet(String, String),
    /// `X` is empty.
    Empty(String),
    /// First-order existential quantification.
    ExistsPos(String, Box<Ws1s>),
    /// First-order universal quantification.
    ForallPos(String, Box<Ws1s>),
    /// Second-order existential quantification.
    ExistsSet(String, Box<Ws1s>),
    /// Second-order universal quantification.
    ForallSet(String, Box<Ws1s>),
}

impl fmt::Display for Ws1s {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ws1s::True => write!(f, "true"),
            Ws1s::False => write!(f, "false"),
            Ws1s::Not(a) => write!(f, "~({a})"),
            Ws1s::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Ws1s::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Ws1s::Implies(a, b) => write!(f, "({a} => {b})"),
            Ws1s::EqPos(x, y) => write!(f, "{x} = {y}"),
            Ws1s::Less(x, y) => write!(f, "{x} < {y}"),
            Ws1s::Succ(x, y) => write!(f, "{y} = {x} + 1"),
            Ws1s::IsFirst(x) => write!(f, "{x} = 0"),
            Ws1s::IsLast(x) => write!(f, "{x} = $"),
            Ws1s::In(x, s) => write!(f, "{x} in {s}"),
            Ws1s::Subset(a, b) => write!(f, "{a} sub {b}"),
            Ws1s::EqSet(a, b) => write!(f, "{a} = {b}"),
            Ws1s::Empty(a) => write!(f, "empty({a})"),
            Ws1s::ExistsPos(x, a) => write!(f, "ex1 {x}. {a}"),
            Ws1s::ForallPos(x, a) => write!(f, "all1 {x}. {a}"),
            Ws1s::ExistsSet(x, a) => write!(f, "ex2 {x}. {a}"),
            Ws1s::ForallSet(x, a) => write!(f, "all2 {x}. {a}"),
        }
    }
}

impl Ws1s {
    /// Convenience: implication.
    pub fn implies(a: Ws1s, b: Ws1s) -> Ws1s {
        Ws1s::Implies(Box::new(a), Box::new(b))
    }

    /// Collects the free variables (both orders share one namespace here).
    pub fn free_vars(&self, out: &mut Vec<String>) {
        let add = |v: &String, out: &mut Vec<String>| {
            if !out.contains(v) {
                out.push(v.clone());
            }
        };
        match self {
            Ws1s::True | Ws1s::False => {}
            Ws1s::Not(a) => a.free_vars(out),
            Ws1s::And(ps) | Ws1s::Or(ps) => ps.iter().for_each(|p| p.free_vars(out)),
            Ws1s::Implies(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Ws1s::EqPos(x, y)
            | Ws1s::Less(x, y)
            | Ws1s::Succ(x, y)
            | Ws1s::In(x, y)
            | Ws1s::Subset(x, y)
            | Ws1s::EqSet(x, y) => {
                add(x, out);
                add(y, out);
            }
            Ws1s::IsFirst(x) | Ws1s::IsLast(x) | Ws1s::Empty(x) => add(x, out),
            Ws1s::ExistsPos(v, a)
            | Ws1s::ForallPos(v, a)
            | Ws1s::ExistsSet(v, a)
            | Ws1s::ForallSet(v, a) => {
                let mut inner = Vec::new();
                a.free_vars(&mut inner);
                for w in inner {
                    if w != *v {
                        add(&w, out);
                    }
                }
            }
        }
    }
}

/// The result of deciding a WS1S formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ws1sOutcome {
    /// The formula is valid (true for every word and assignment).
    Valid,
    /// The formula is not valid; a counterexample word (one symbol per position, one bit
    /// per track in the order of [`Decider::tracks`]) is provided.
    CounterExample(Vec<usize>),
    /// The automaton construction exceeded its work budget before an answer was reached
    /// (large track counts make the intermediate automata explode; the dispatcher simply
    /// moves on to the next prover).
    ResourceLimit,
}

/// Compiles WS1S formulas into automata and decides them.
#[derive(Debug, Clone)]
pub struct Decider {
    tracks: BTreeMap<String, usize>,
    max_work: u64,
    max_states: usize,
    work: std::cell::Cell<u64>,
    deadline: Option<std::time::Instant>,
    deadline_hit: std::cell::Cell<bool>,
}

impl Decider {
    /// Creates a decider for a formula, assigning one track to every variable (free and
    /// bound — bound variables are projected away again during compilation, but
    /// reserving the track keeps the construction simple).
    pub fn new(formula: &Ws1s) -> Self {
        Decider::with_budget(formula, 4_000_000)
    }

    /// Creates a decider with an explicit work budget. The budget is measured in
    /// state×symbol units of the automata constructed during compilation; `0` means
    /// unlimited.
    pub fn with_budget(formula: &Ws1s, max_work: u64) -> Self {
        let mut vars = Vec::new();
        collect_all_vars(formula, &mut vars);
        let tracks = vars.into_iter().enumerate().map(|(i, v)| (v, i)).collect();
        Decider {
            tracks,
            max_work,
            max_states: 768,
            work: std::cell::Cell::new(0),
            deadline: None,
            deadline_hit: std::cell::Cell::new(false),
        }
    }

    /// Overrides the per-automaton state budget (the number of states an intermediate
    /// product or determinisation may reach before the decider gives up).
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states.max(2);
        self
    }

    /// Sets a wall-clock deadline, checked at every work-charge point (the same
    /// cooperative hooks the fuel budget uses). Passing the deadline stops the
    /// decision with [`Ws1sOutcome::ResourceLimit`] and marks
    /// [`Decider::deadline_exceeded`].
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// `true` when the last decision stopped because it passed its deadline.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline_hit.get()
    }

    /// Charges `amount` units of work; returns `None` once the budget is exhausted
    /// or the wall-clock deadline has passed.
    fn charge(&self, amount: u64) -> Option<()> {
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() >= deadline {
                self.deadline_hit.set(true);
                return None;
            }
        }
        if self.max_work == 0 {
            return Some(());
        }
        let spent = self.work.get().saturating_add(amount);
        self.work.set(spent);
        if spent > self.max_work {
            None
        } else {
            Some(())
        }
    }

    /// The track assignment (variable name to track index).
    pub fn tracks(&self) -> &BTreeMap<String, usize> {
        &self.tracks
    }

    fn num_tracks(&self) -> usize {
        self.tracks.len().max(1)
    }

    /// Decides validity of the formula.
    pub fn decide(&self, formula: &Ws1s) -> Ws1sOutcome {
        self.work.set(0);
        self.deadline_hit.set(false);
        // Valid iff the negation (conjoined with well-formedness of first-order tracks)
        // has empty language.
        let negated = Ws1s::Not(Box::new(formula.clone()));
        let Some(automaton) = self.compile(&negated) else {
            return Ws1sOutcome::ResourceLimit;
        };
        // First-order variables free in the formula must carry singleton tracks.
        let mut fvs = Vec::new();
        formula.free_vars(&mut fvs);
        let mut constrained = automaton;
        for v in fvs {
            if is_first_order(&v) {
                let Some(next) =
                    constrained.intersect_bounded(&self.singleton(self.track(&v)), self.max_states)
                else {
                    return Ws1sOutcome::ResourceLimit;
                };
                constrained = next;
                if self.charge(constrained.work_cost()).is_none() {
                    return Ws1sOutcome::ResourceLimit;
                }
            }
        }
        match constrained.shortest_accepted() {
            None => Ws1sOutcome::Valid,
            Some(word) => Ws1sOutcome::CounterExample(word),
        }
    }

    /// Returns `true` if the formula is satisfiable (by some word and assignment), or if
    /// the decision ran out of budget (unknown is treated as possibly satisfiable).
    pub fn satisfiable(&self, formula: &Ws1s) -> bool {
        !matches!(
            self.decide(&Ws1s::Not(Box::new(formula.clone()))),
            Ws1sOutcome::Valid
        )
    }

    fn track(&self, v: &str) -> usize {
        *self
            .tracks
            .get(v)
            .unwrap_or_else(|| panic!("unknown WS1S variable {v}"))
    }

    /// Compiles a formula to a DFA accepting the encodings of satisfying assignments.
    /// Returns `None` if the work budget is exhausted.
    pub fn compile(&self, formula: &Ws1s) -> Option<Dfa> {
        let k = self.num_tracks();
        let charged = |d: Dfa| -> Option<Dfa> {
            self.charge(d.work_cost())?;
            Some(d)
        };
        match formula {
            Ws1s::True => Some(Dfa::all(k)),
            Ws1s::False => Some(Dfa::none(k)),
            Ws1s::Not(a) => charged(self.compile(a)?.complement()),
            Ws1s::And(parts) => {
                let mut acc = Dfa::all(k);
                for p in parts {
                    let d = self.compile(p)?;
                    acc = charged(acc.intersect_bounded(&d, self.max_states)?.minimize())?;
                }
                Some(acc)
            }
            Ws1s::Or(parts) => {
                let mut acc = Dfa::none(k);
                for p in parts {
                    let d = self.compile(p)?;
                    acc = charged(acc.union_bounded(&d, self.max_states)?.minimize())?;
                }
                Some(acc)
            }
            Ws1s::Implies(a, b) => {
                let d = self.compile(&Ws1s::Or(vec![Ws1s::Not(a.clone()), (**b).clone()]))?;
                charged(d.minimize())
            }
            Ws1s::EqPos(x, y) => Some(self.eq_set(self.track(x), self.track(y))),
            Ws1s::EqSet(x, y) => Some(self.eq_set(self.track(x), self.track(y))),
            Ws1s::Subset(x, y) => Some(self.subset(self.track(x), self.track(y))),
            Ws1s::In(x, s) => Some(self.subset(self.track(x), self.track(s))),
            Ws1s::Empty(s) => Some(self.empty(self.track(s))),
            Ws1s::Less(x, y) => Some(self.less(self.track(x), self.track(y))),
            Ws1s::Succ(x, y) => Some(self.succ(self.track(x), self.track(y))),
            Ws1s::IsFirst(x) => Some(self.is_first(self.track(x))),
            Ws1s::IsLast(x) => Some(self.is_last(self.track(x))),
            Ws1s::ExistsPos(v, a) => {
                let body = self
                    .compile(a)?
                    .intersect_bounded(&self.singleton(self.track(v)), self.max_states)?;
                self.charge(body.work_cost())?;
                charged(
                    Nfa::from_dfa(&body)
                        .project(self.track(v))
                        .determinize_bounded(self.max_states)?
                        .accept_zero_extensions()
                        .minimize(),
                )
            }
            Ws1s::ForallPos(v, a) => {
                let d = self.compile(&Ws1s::Not(Box::new(Ws1s::ExistsPos(
                    v.clone(),
                    Box::new(Ws1s::Not(a.clone())),
                ))))?;
                charged(d.minimize())
            }
            Ws1s::ExistsSet(v, a) => {
                let body = self.compile(a)?;
                self.charge(body.work_cost())?;
                charged(
                    Nfa::from_dfa(&body)
                        .project(self.track(v))
                        .determinize_bounded(self.max_states)?
                        .accept_zero_extensions()
                        .minimize(),
                )
            }
            Ws1s::ForallSet(v, a) => {
                let d = self.compile(&Ws1s::Not(Box::new(Ws1s::ExistsSet(
                    v.clone(),
                    Box::new(Ws1s::Not(a.clone())),
                ))))?;
                charged(d.minimize())
            }
        }
    }

    // ---- primitive automata -------------------------------------------------------

    fn symbols(&self) -> usize {
        1usize << self.num_tracks()
    }

    fn bit(symbol: usize, track: usize) -> bool {
        symbol & (1 << track) != 0
    }

    /// Track `t` carries exactly one 1 (encodes a first-order variable).
    fn singleton(&self, t: usize) -> Dfa {
        // States: 0 = none seen, 1 = one seen, 2 = too many.
        let mut trans = vec![vec![0; self.symbols()]; 3];
        for a in 0..self.symbols() {
            let b = Self::bit(a, t);
            trans[0][a] = if b { 1 } else { 0 };
            trans[1][a] = if b { 2 } else { 1 };
            trans[2][a] = 2;
        }
        Dfa::new(self.num_tracks(), 0, vec![false, true, false], trans)
    }

    /// Tracks `x` and `y` agree at every position.
    fn eq_set(&self, x: usize, y: usize) -> Dfa {
        let mut trans = vec![vec![0; self.symbols()]; 2];
        for a in 0..self.symbols() {
            let same = Self::bit(a, x) == Self::bit(a, y);
            trans[0][a] = if same { 0 } else { 1 };
            trans[1][a] = 1;
        }
        Dfa::new(self.num_tracks(), 0, vec![true, false], trans)
    }

    /// Track `x` is a subset of track `y` (positionwise implication).
    fn subset(&self, x: usize, y: usize) -> Dfa {
        let mut trans = vec![vec![0; self.symbols()]; 2];
        for a in 0..self.symbols() {
            let ok = !Self::bit(a, x) || Self::bit(a, y);
            trans[0][a] = if ok { 0 } else { 1 };
            trans[1][a] = 1;
        }
        Dfa::new(self.num_tracks(), 0, vec![true, false], trans)
    }

    /// Track `s` is all zeros.
    fn empty(&self, s: usize) -> Dfa {
        let mut trans = vec![vec![0; self.symbols()]; 2];
        for a in 0..self.symbols() {
            trans[0][a] = if Self::bit(a, s) { 1 } else { 0 };
            trans[1][a] = 1;
        }
        Dfa::new(self.num_tracks(), 0, vec![true, false], trans)
    }

    /// The (singleton) position on track `x` precedes the one on track `y`.
    fn less(&self, x: usize, y: usize) -> Dfa {
        // States: 0 = seen neither, 1 = seen x only, 2 = seen y after x (accept),
        // 3 = reject.
        let mut trans = vec![vec![0; self.symbols()]; 4];
        for a in 0..self.symbols() {
            let bx = Self::bit(a, x);
            let by = Self::bit(a, y);
            trans[0][a] = match (bx, by) {
                (false, false) => 0,
                (true, false) => 1,
                _ => 3,
            };
            trans[1][a] = match (bx, by) {
                (false, false) => 1,
                (false, true) => 2,
                _ => 3,
            };
            trans[2][a] = if bx || by { 3 } else { 2 };
            trans[3][a] = 3;
        }
        Dfa::new(self.num_tracks(), 0, vec![false, false, true, false], trans)
    }

    /// The position on track `y` is the successor of the position on track `x`.
    fn succ(&self, x: usize, y: usize) -> Dfa {
        // States: 0 = before x, 1 = x seen (expect y immediately), 2 = accept, 3 = reject.
        let mut trans = vec![vec![0; self.symbols()]; 4];
        for a in 0..self.symbols() {
            let bx = Self::bit(a, x);
            let by = Self::bit(a, y);
            trans[0][a] = match (bx, by) {
                (false, false) => 0,
                (true, false) => 1,
                _ => 3,
            };
            trans[1][a] = match (bx, by) {
                (false, true) => 2,
                _ => 3,
            };
            trans[2][a] = if bx || by { 3 } else { 2 };
            trans[3][a] = 3;
        }
        Dfa::new(self.num_tracks(), 0, vec![false, false, true, false], trans)
    }

    /// The position on track `x` is position 0.
    fn is_first(&self, x: usize) -> Dfa {
        // States: 0 = at position 0 (expect the bit), 1 = ok, 2 = reject.
        let mut trans = vec![vec![0; self.symbols()]; 3];
        for a in 0..self.symbols() {
            let bx = Self::bit(a, x);
            trans[0][a] = if bx { 1 } else { 2 };
            trans[1][a] = if bx { 2 } else { 1 };
            trans[2][a] = 2;
        }
        Dfa::new(self.num_tracks(), 0, vec![false, true, false], trans)
    }

    /// The position on track `x` is the last position of the word.
    fn is_last(&self, x: usize) -> Dfa {
        // States: 0 = not yet seen, 1 = seen at previous position and nothing after it
        // yet (accepting only if the word ends here), 2 = reject.
        let mut trans = vec![vec![0; self.symbols()]; 3];
        for a in 0..self.symbols() {
            let bx = Self::bit(a, x);
            trans[0][a] = if bx { 1 } else { 0 };
            trans[1][a] = 2;
            trans[2][a] = 2;
        }
        Dfa::new(self.num_tracks(), 0, vec![false, true, false], trans)
    }
}

/// Heuristic used only to decide which free variables need the singleton constraint when
/// checking validity: by convention first-order variable names start with a lowercase
/// letter and second-order names with an uppercase letter (as in MONA examples).
fn is_first_order(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_lowercase())
}

fn collect_all_vars(f: &Ws1s, out: &mut Vec<String>) {
    let add = |v: &String, out: &mut Vec<String>| {
        if !out.contains(v) {
            out.push(v.clone());
        }
    };
    match f {
        Ws1s::True | Ws1s::False => {}
        Ws1s::Not(a) => collect_all_vars(a, out),
        Ws1s::And(ps) | Ws1s::Or(ps) => ps.iter().for_each(|p| collect_all_vars(p, out)),
        Ws1s::Implies(a, b) => {
            collect_all_vars(a, out);
            collect_all_vars(b, out);
        }
        Ws1s::EqPos(x, y)
        | Ws1s::Less(x, y)
        | Ws1s::Succ(x, y)
        | Ws1s::In(x, y)
        | Ws1s::Subset(x, y)
        | Ws1s::EqSet(x, y) => {
            add(x, out);
            add(y, out);
        }
        Ws1s::IsFirst(x) | Ws1s::IsLast(x) | Ws1s::Empty(x) => add(x, out),
        Ws1s::ExistsPos(v, a)
        | Ws1s::ForallPos(v, a)
        | Ws1s::ExistsSet(v, a)
        | Ws1s::ForallSet(v, a) => {
            add(v, out);
            collect_all_vars(a, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(f: &Ws1s) -> bool {
        matches!(Decider::new(f).decide(f), Ws1sOutcome::Valid)
    }

    #[test]
    fn order_is_transitive_and_irreflexive() {
        // all1 x y z. x < y & y < z => x < z
        let f = Ws1s::ForallPos(
            "x".into(),
            Box::new(Ws1s::ForallPos(
                "y".into(),
                Box::new(Ws1s::ForallPos(
                    "z".into(),
                    Box::new(Ws1s::implies(
                        Ws1s::And(vec![
                            Ws1s::Less("x".into(), "y".into()),
                            Ws1s::Less("y".into(), "z".into()),
                        ]),
                        Ws1s::Less("x".into(), "z".into()),
                    )),
                )),
            )),
        );
        assert!(valid(&f));
        let irref = Ws1s::ForallPos(
            "x".into(),
            Box::new(Ws1s::Not(Box::new(Ws1s::Less("x".into(), "x".into())))),
        );
        assert!(valid(&irref));
    }

    #[test]
    fn successor_implies_order() {
        let f = Ws1s::ForallPos(
            "x".into(),
            Box::new(Ws1s::ForallPos(
                "y".into(),
                Box::new(Ws1s::implies(
                    Ws1s::Succ("x".into(), "y".into()),
                    Ws1s::Less("x".into(), "y".into()),
                )),
            )),
        );
        assert!(valid(&f));
    }

    #[test]
    fn subset_antisymmetry_gives_equality() {
        let f = Ws1s::ForallSet(
            "X".into(),
            Box::new(Ws1s::ForallSet(
                "Y".into(),
                Box::new(Ws1s::implies(
                    Ws1s::And(vec![
                        Ws1s::Subset("X".into(), "Y".into()),
                        Ws1s::Subset("Y".into(), "X".into()),
                    ]),
                    Ws1s::EqSet("X".into(), "Y".into()),
                )),
            )),
        );
        assert!(valid(&f));
    }

    #[test]
    fn induction_over_positions_is_valid() {
        // The hallmark of WS1S: if X contains 0 and is successor-closed, it contains
        // every position. (Expressed per-position: every position is in X.)
        let closed = Ws1s::ForallPos(
            "p".into(),
            Box::new(Ws1s::ForallPos(
                "q".into(),
                Box::new(Ws1s::implies(
                    Ws1s::And(vec![
                        Ws1s::In("p".into(), "X".into()),
                        Ws1s::Succ("p".into(), "q".into()),
                    ]),
                    Ws1s::In("q".into(), "X".into()),
                )),
            )),
        );
        let base = Ws1s::ForallPos(
            "z".into(),
            Box::new(Ws1s::implies(
                Ws1s::IsFirst("z".into()),
                Ws1s::In("z".into(), "X".into()),
            )),
        );
        let f = Ws1s::ForallSet(
            "X".into(),
            Box::new(Ws1s::implies(
                Ws1s::And(vec![base, closed]),
                Ws1s::ForallPos("r".into(), Box::new(Ws1s::In("r".into(), "X".into()))),
            )),
        );
        assert!(valid(&f));
    }

    #[test]
    fn invalid_formulas_have_counterexamples() {
        // "every position is in X" is not valid for a free X.
        let f = Ws1s::ForallPos("p".into(), Box::new(Ws1s::In("p".into(), "X".into())));
        let d = Decider::new(&f);
        // In WS1S the set X is finite while positions are unbounded, so the formula is
        // in fact unsatisfiable; the decision procedure must report a counterexample
        // (possibly the empty word, whose zero-extension provides the witness position).
        assert!(matches!(d.decide(&f), Ws1sOutcome::CounterExample(_)));
        // A satisfiable but non-valid formula also yields a counterexample.
        let g = Ws1s::ExistsPos("p".into(), Box::new(Ws1s::In("p".into(), "X".into())));
        let d2 = Decider::new(&g);
        assert!(matches!(d2.decide(&g), Ws1sOutcome::CounterExample(_)));
        assert!(d2.satisfiable(&g));
    }

    #[test]
    fn satisfiability_of_membership_constraints() {
        let d_formula = Ws1s::And(vec![
            Ws1s::In("x".into(), "X".into()),
            Ws1s::Not(Box::new(Ws1s::In("x".into(), "Y".into()))),
            Ws1s::Subset("Y".into(), "X".into()),
        ]);
        let d = Decider::new(&d_formula);
        assert!(d.satisfiable(&d_formula));
        let contradictory = Ws1s::And(vec![
            Ws1s::In("x".into(), "X".into()),
            Ws1s::Empty("X".into()),
        ]);
        let d2 = Decider::new(&contradictory);
        assert!(!d2.satisfiable(&contradictory));
    }

    #[test]
    fn there_is_always_a_first_position_in_nonempty_sets() {
        // all2 X. (ex1 x. x in X) => ex1 y. y in X & all1 z. z in X => ~(z < y)
        let f = Ws1s::ForallSet(
            "X".into(),
            Box::new(Ws1s::implies(
                Ws1s::ExistsPos("x".into(), Box::new(Ws1s::In("x".into(), "X".into()))),
                Ws1s::ExistsPos(
                    "y".into(),
                    Box::new(Ws1s::And(vec![
                        Ws1s::In("y".into(), "X".into()),
                        Ws1s::ForallPos(
                            "z".into(),
                            Box::new(Ws1s::implies(
                                Ws1s::In("z".into(), "X".into()),
                                Ws1s::Not(Box::new(Ws1s::Less("z".into(), "y".into()))),
                            )),
                        ),
                    ])),
                ),
            )),
        );
        assert!(valid(&f));
    }
}
