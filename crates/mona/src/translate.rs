//! The Jahob→MONA interface: translating sequents into WS1S.
//!
//! Jahob's MONA interface (§6.4) exposes the structure of a sequent to the automata-based
//! decision procedure. This reproduction supports the *monadic fragment*: formulas built
//! from
//!
//! * equalities between object variables (and `null`),
//! * membership of object variables in set-valued variables,
//! * subset and equality atoms between set-valued variables, and
//! * arbitrary quantification over objects and object sets,
//!
//! which covers many of the per-object invariant conjuncts that arise from the data
//! structure specifications (for example "every allocated node in `nodes` is also in
//! `alloc`"). The monadic class has the finite model property, and every finite model can
//! be laid out along a word, so deciding the WS1S encoding is sound and complete for this
//! fragment. Atoms outside the fragment (arithmetic, reachability, cardinality, field
//! dereferences) are approximated away by polarity (Figure 14), preserving soundness.

use crate::ws1s::{Decider, Ws1s, Ws1sOutcome};
use jahob_logic::approx::{approximate_implication, Polarity};
use jahob_logic::form::{Binder, Const, Form};
use jahob_logic::rewrite::expand_set_membership;
use jahob_logic::simplify::simplify;
use jahob_logic::types::Type;
use jahob_logic::Sequent;
use std::collections::BTreeMap;

/// Options for the MONA-style prover.
#[derive(Debug, Clone)]
pub struct MonaOptions {
    /// Maximum number of distinct variables (tracks); the automaton alphabet is `2^n`.
    pub max_tracks: usize,
    /// Work budget of the automata construction, in state×symbol units charged per
    /// intermediate automaton ([`Dfa::work_cost`](jahob_automata::Dfa::work_cost));
    /// `0` means unlimited. Exhausting it aborts the attempt cooperatively
    /// ([`MonaResult::budget_exhausted`]) instead of proving anything — callers with
    /// a fuel policy (the dispatcher's budgeted cascade) pass a reduced budget here
    /// and retry unbudgeted when they must.
    pub max_work: u64,
    /// Per-automaton state cap of intermediate products/determinisations; exceeding
    /// it also counts as budget exhaustion.
    pub max_states: usize,
    /// Wall-clock deadline for the attempt, checked cooperatively at the same sites
    /// as the work budget ([`Decider`]'s charge points). Passing the deadline stops
    /// the attempt with [`MonaResult::deadline_exceeded`] set — the verdict is
    /// unknown, exactly like budget exhaustion, but attributed to time rather than
    /// fuel. `None` (the default) disables the check.
    pub deadline: Option<std::time::Instant>,
}

impl Default for MonaOptions {
    fn default() -> Self {
        MonaOptions {
            max_tracks: 10,
            max_work: 4_000_000,
            max_states: 768,
            deadline: None,
        }
    }
}

/// Result of a MONA-style proof attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonaResult {
    /// `true` if the sequent was proved valid.
    pub proved: bool,
    /// `true` if the sequent (after approximation) was inside the supported fragment.
    pub applicable: bool,
    /// The number of automaton tracks used.
    pub tracks: usize,
    /// `true` when the attempt stopped because the automata construction ran out of
    /// its work/state budget ([`MonaOptions::max_work`]/[`MonaOptions::max_states`])
    /// — the verdict is *unknown*, not "not proved": a larger budget might decide
    /// the sequent either way.
    pub budget_exhausted: bool,
    /// `true` when the attempt stopped because it passed its wall-clock deadline
    /// ([`MonaOptions::deadline`]) — also an *unknown* verdict, but attributed to
    /// time rather than fuel (and therefore never mistaken for budget exhaustion:
    /// when the deadline fires, `budget_exhausted` stays `false`).
    pub deadline_exceeded: bool,
}

/// Attempts to prove a sequent with the WS1S decision procedure.
pub fn prove_sequent(sequent: &Sequent, options: &MonaOptions) -> MonaResult {
    let sequent = sequent.without_comments();
    let assumptions: Vec<Form> = sequent
        .assumptions
        .iter()
        .map(|a| simplify(&expand_set_membership(a)))
        .collect();
    let goal = simplify(&expand_set_membership(&sequent.goal));
    let (assumptions, goal) = approximate_implication(&assumptions, &goal, &monadic_atom_filter);
    if goal.is_false() && assumptions.is_empty() {
        return MonaResult {
            proved: false,
            applicable: false,
            tracks: 0,
            budget_exhausted: false,
            deadline_exceeded: false,
        };
    }
    let implication = Form::implies(Form::and(assumptions), goal);

    // Translate into WS1S.
    let mut cx = Translator::default();
    let Some(ws) = cx.translate(&implication) else {
        return MonaResult {
            proved: false,
            applicable: false,
            tracks: cx.vars.len(),
            budget_exhausted: false,
            deadline_exceeded: false,
        };
    };
    // `null` is modelled as a distinguished first-order position. Its identity is not
    // known to the decision procedure, so the implication must hold for *every* choice of
    // that position (universal quantification — an existential here would unsoundly let
    // the decider pick a convenient position for `null`).
    let ws = if cx.used_null {
        Ws1s::ForallPos("vnull".to_string(), Box::new(ws))
    } else {
        ws
    };
    let tracks = cx.vars.len() + usize::from(cx.used_null);
    if tracks > options.max_tracks {
        return MonaResult {
            proved: false,
            applicable: false,
            tracks,
            budget_exhausted: false,
            deadline_exceeded: false,
        };
    }
    let decider = Decider::with_budget(&ws, options.max_work)
        .with_max_states(options.max_states)
        .with_deadline(options.deadline);
    let outcome = decider.decide(&ws);
    let deadline_exceeded = decider.deadline_exceeded();
    MonaResult {
        proved: matches!(outcome, Ws1sOutcome::Valid),
        applicable: true,
        tracks,
        budget_exhausted: matches!(outcome, Ws1sOutcome::ResourceLimit) && !deadline_exceeded,
        deadline_exceeded,
    }
}

/// Atoms in the monadic fragment.
fn monadic_atom_filter(atom: &Form, _polarity: Polarity) -> Option<Form> {
    if is_monadic_atom(atom) {
        Some(atom.clone())
    } else {
        None
    }
}

fn is_element(f: &Form) -> bool {
    matches!(f, Form::Var(_) | Form::Const(Const::Null))
}

fn is_set_name(f: &Form) -> bool {
    matches!(f, Form::Var(_))
}

fn is_monadic_atom(atom: &Form) -> bool {
    match atom {
        Form::App(head, args) => match (head.as_ref(), args.as_slice()) {
            (Form::Const(Const::Eq), [l, r]) => {
                (is_element(l) && is_element(r)) || (is_set_name(l) && is_set_name(r))
            }
            (Form::Const(Const::Elem), [e, s]) => is_element(e) && is_set_name(s),
            (Form::Const(Const::SubsetEq), [l, r]) => is_set_name(l) && is_set_name(r),
            _ => false,
        },
        _ => false,
    }
}

/// Translates approximated formulas into WS1S, assigning track names to variables.
#[derive(Default)]
struct Translator {
    /// Mapping from Jahob variable names to WS1S variable names. First-order variables
    /// receive lowercase names (`v0`, `v1`, ...), set variables uppercase (`S0`, ...).
    vars: BTreeMap<String, String>,
    next_fo: usize,
    next_so: usize,
    used_null: bool,
}

impl Translator {
    fn fo_var(&mut self, name: &str) -> String {
        if let Some(v) = self.vars.get(name) {
            return v.clone();
        }
        let v = format!("v{}", self.next_fo);
        self.next_fo += 1;
        self.vars.insert(name.to_string(), v.clone());
        v
    }

    fn so_var(&mut self, name: &str) -> String {
        if let Some(v) = self.vars.get(name) {
            return v.clone();
        }
        let v = format!("S{}", self.next_so);
        self.next_so += 1;
        self.vars.insert(name.to_string(), v.clone());
        v
    }

    fn element(&mut self, f: &Form) -> Option<String> {
        match f {
            Form::Var(v) => Some(self.fo_var(v)),
            Form::Const(Const::Null) => {
                self.used_null = true;
                Some("vnull".to_string())
            }
            _ => None,
        }
    }

    fn translate(&mut self, f: &Form) -> Option<Ws1s> {
        match f {
            Form::Const(Const::BoolLit(true)) => Some(Ws1s::True),
            Form::Const(Const::BoolLit(false)) => Some(Ws1s::False),
            Form::App(head, args) => match (head.as_ref(), args.as_slice()) {
                (Form::Const(Const::And), _) => Some(Ws1s::And(
                    args.iter()
                        .map(|a| self.translate(a))
                        .collect::<Option<Vec<_>>>()?,
                )),
                (Form::Const(Const::Or), _) => Some(Ws1s::Or(
                    args.iter()
                        .map(|a| self.translate(a))
                        .collect::<Option<Vec<_>>>()?,
                )),
                (Form::Const(Const::Not), [a]) => Some(Ws1s::Not(Box::new(self.translate(a)?))),
                (Form::Const(Const::Impl), [l, r]) => {
                    Some(Ws1s::implies(self.translate(l)?, self.translate(r)?))
                }
                (Form::Const(Const::Iff), [l, r]) => {
                    let a = self.translate(l)?;
                    let b = self.translate(r)?;
                    Some(Ws1s::And(vec![
                        Ws1s::implies(a.clone(), b.clone()),
                        Ws1s::implies(b, a),
                    ]))
                }
                (Form::Const(Const::Eq), [l, r]) => {
                    if is_element(l) && is_element(r) {
                        Some(Ws1s::EqPos(self.element(l)?, self.element(r)?))
                    } else if is_set_name(l) && is_set_name(r) {
                        let (Form::Var(a), Form::Var(b)) = (l, r) else {
                            return None;
                        };
                        Some(Ws1s::EqSet(self.so_var(a), self.so_var(b)))
                    } else {
                        None
                    }
                }
                (Form::Const(Const::Elem), [e, s]) => {
                    let Form::Var(sv) = s else { return None };
                    Some(Ws1s::In(self.element(e)?, self.so_var(sv)))
                }
                (Form::Const(Const::SubsetEq), [l, r]) => {
                    let (Form::Var(a), Form::Var(b)) = (l, r) else {
                        return None;
                    };
                    Some(Ws1s::Subset(self.so_var(a), self.so_var(b)))
                }
                _ => None,
            },
            Form::Binder(binder @ (Binder::Forall | Binder::Exists), vars, body) => {
                // Determine for each bound variable whether it is first-order (object) or
                // second-order (object set) from its annotation or its usage in the body.
                let mut result = self.translate(body)?;
                for (name, ty) in vars.iter().rev() {
                    let second_order = match ty {
                        Type::Set(_) => true,
                        Type::Obj => false,
                        _ => used_as_set(body, name),
                    };
                    let wsname = if second_order {
                        self.so_var(name)
                    } else {
                        self.fo_var(name)
                    };
                    result = match (binder, second_order) {
                        (Binder::Forall, false) => Ws1s::ForallPos(wsname, Box::new(result)),
                        (Binder::Forall, true) => Ws1s::ForallSet(wsname, Box::new(result)),
                        (Binder::Exists, false) => Ws1s::ExistsPos(wsname, Box::new(result)),
                        (Binder::Exists, true) => Ws1s::ExistsSet(wsname, Box::new(result)),
                        _ => unreachable!("binder restricted above"),
                    };
                    // Bound variables must not leak their track mapping outside their
                    // scope (names may be reused).
                    self.vars.remove(name);
                }
                Some(result)
            }
            _ => None,
        }
    }
}

/// Returns `true` if the variable occurs in set position (as the right-hand side of a
/// membership or in a subset/set-equality atom) in the formula.
fn used_as_set(f: &Form, name: &str) -> bool {
    match f {
        Form::App(head, args) => {
            if let Form::Const(Const::Elem) = head.as_ref() {
                if args.len() == 2 && args[1] == Form::var(name) {
                    return true;
                }
            }
            if let Form::Const(Const::SubsetEq) = head.as_ref() {
                if args.iter().any(|a| *a == Form::var(name)) {
                    return true;
                }
            }
            args.iter().any(|a| used_as_set(a, name))
        }
        Form::Binder(_, vars, body) => {
            !vars.iter().any(|(v, _)| v == name) && used_as_set(body, name)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::parse_form;

    fn seq(assumptions: &[&str], goal: &str) -> Sequent {
        Sequent::new(
            assumptions
                .iter()
                .map(|a| parse_form(a).expect("parse"))
                .collect(),
            parse_form(goal).expect("parse"),
        )
    }

    fn proves(assumptions: &[&str], goal: &str) -> bool {
        prove_sequent(&seq(assumptions, goal), &MonaOptions::default()).proved
    }

    #[test]
    fn proves_membership_propagation() {
        assert!(proves(
            &["ALL x. x : nodes --> x : alloc", "n : nodes"],
            "n : alloc"
        ));
        assert!(!proves(&["n : alloc"], "n : nodes"));
    }

    #[test]
    fn proves_set_equality_reasoning() {
        assert!(proves(&["nodes = nodes1", "x : nodes"], "x : nodes1"));
        assert!(proves(
            &["ALL x. x : a --> x : b", "ALL x. x : b --> x : c"],
            "ALL x. x : a --> x : c"
        ));
    }

    #[test]
    fn proves_quantified_set_goals() {
        // Extensionality expressed with quantifiers.
        assert!(proves(&["ALL e. e : a <-> e : b"], "a = b"));
    }

    #[test]
    fn proves_null_handling() {
        assert!(proves(
            &[
                "ALL x. x : nodes --> x ~= null",
                "null : nodes | ok : nodes"
            ],
            "ok : nodes | False"
        ));
    }

    #[test]
    fn set_algebra_is_expanded_before_translation() {
        assert!(proves(&["x : a"], "x : a Un b"));
        assert!(proves(&["x : a", "x ~: b"], "x : a - b"));
        assert!(!proves(&["x : a Un b"], "x : a"));
    }

    #[test]
    fn null_is_not_chosen_conveniently() {
        // Regression test: `null` is an unknown position, so a satisfiable assumption set
        // about a non-null object must not be declared contradictory (which would prove
        // any goal). An existential encoding of `null` exhibited exactly this unsoundness.
        assert!(!proves(
            &["~(n = null)", "~(n : alloc)", "n : List"],
            "False"
        ));
        assert!(!proves(
            &["~(n = null)", "~(n : alloc)", "n : List"],
            "n : alloc"
        ));
        // Valid facts about null still go through.
        assert!(proves(&["~(null : alloc)", "x : alloc"], "~(x = null)"));
    }

    #[test]
    fn declines_arithmetic_sequents() {
        let r = prove_sequent(&seq(&["size = 0"], "size + 1 = 1"), &MonaOptions::default());
        assert!(!r.proved);
    }

    #[test]
    fn respects_track_limit() {
        let opts = MonaOptions {
            max_tracks: 2,
            ..MonaOptions::default()
        };
        let r = prove_sequent(&seq(&["a : s", "b : t", "c : u"], "a : s"), &opts);
        assert!(!r.applicable);
        assert!(
            prove_sequent(
                &seq(&["a : s", "b : t", "c : u"], "a : s"),
                &MonaOptions::default()
            )
            .proved
        );
    }
}
