//! # jahob-mona
//!
//! The MONA substitute of the Jahob reproduction (§6.4 of *Full Functional Verification
//! of Linked Data Structures*, PLDI 2008): an automata-based decision procedure for weak
//! monadic second-order logic of one successor (WS1S), built on the explicit-state
//! automata of `jahob-automata`, together with an interface that translates Jahob
//! sequents in the monadic fragment into WS1S. Where this prover sits in the cascade
//! (and why the router only promotes it on reachability-shaped sequents) is described
//! in `docs/ARCHITECTURE.md`.
//!
//! The original MONA decides WS1S/WS2S and is used by Jahob, via field constraint
//! analysis, for complete reasoning about reachability over list and tree backbones.
//! This reproduction keeps the same architectural role — a complete automata-based
//! prover behind an approximation interface — with a documented, narrower HOL fragment
//! (see [`translate`]); reachability goals outside that fragment are handled by the
//! axiomatised first-order interface of `jahob-folp`, exactly as the paper's own
//! approximation scheme permits.
//!
//! # Example
//!
//! ```
//! use jahob_mona::{prove_sequent, MonaOptions};
//! use jahob_logic::{parse_form, Sequent};
//!
//! let sequent = Sequent::new(
//!     vec![parse_form("ALL x. x : nodes --> x : alloc").unwrap(),
//!          parse_form("n : nodes").unwrap()],
//!     parse_form("n : alloc").unwrap(),
//! );
//! assert!(prove_sequent(&sequent, &MonaOptions::default()).proved);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod translate;
pub mod ws1s;

pub use translate::{prove_sequent, MonaOptions, MonaResult};
pub use ws1s::{Decider, Ws1s, Ws1sOutcome};
