//! Property-based tests of the Presburger solver: soundness of `Unsat` answers.

use jahob_arith::{check, Constraint, LinExpr, Outcome};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_expr() -> impl Strategy<Value = LinExpr> {
    (
        proptest::collection::vec((0u32..4, -4i128..5), 0..4),
        -10i128..11,
    )
        .prop_map(|(terms, c)| {
            let mut e = LinExpr::constant(c);
            for (v, k) in terms {
                e.add_term(v, k);
            }
            e
        })
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    (arb_expr(), arb_expr(), prop::bool::ANY).prop_map(|(a, b, eq)| {
        if eq {
            Constraint::eq(a, b)
        } else {
            Constraint::le(a, b)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// If the solver says `Unsat`, no assignment with small values satisfies all
    /// constraints (soundness spot-check over an exhaustive small cube).
    #[test]
    fn unsat_answers_have_no_small_models(cs in proptest::collection::vec(arb_constraint(), 1..5)) {
        if check(&cs) == Outcome::Unsat {
            let range: Vec<i128> = (-3..=3).collect();
            for a in &range {
                for b in &range {
                    for c in &range {
                        for d in &range {
                            let mut assignment = BTreeMap::new();
                            assignment.insert(0u32, *a);
                            assignment.insert(1u32, *b);
                            assignment.insert(2u32, *c);
                            assignment.insert(3u32, *d);
                            prop_assert!(
                                !cs.iter().all(|k| k.holds(&assignment)),
                                "solver said Unsat but {assignment:?} satisfies the system"
                            );
                        }
                    }
                }
            }
        }
    }

    /// A system with an explicit integer witness is never reported unsatisfiable.
    #[test]
    fn systems_with_known_models_are_not_refuted(
        vals in proptest::collection::vec(-5i128..6, 4),
        cs in proptest::collection::vec(arb_constraint(), 1..5)
    ) {
        let mut assignment = BTreeMap::new();
        for (i, v) in vals.iter().enumerate() {
            assignment.insert(i as u32, *v);
        }
        let satisfied: Vec<Constraint> =
            cs.into_iter().filter(|c| c.holds(&assignment)).collect();
        if !satisfied.is_empty() {
            prop_assert_ne!(check(&satisfied), Outcome::Unsat);
        }
    }
}
