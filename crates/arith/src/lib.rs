//! # jahob-arith
//!
//! Quantifier-free linear integer arithmetic (Presburger) constraint solving for the
//! Jahob reproduction. This crate is the arithmetic substrate shared by the SMT-style
//! prover (`jahob-smt`, theory of linear integer arithmetic) and the BAPA decision
//! procedure (`jahob-bapa`, which reduces set-algebra-with-cardinality formulas to
//! Presburger constraints over Venn-region cardinalities).
//!
//! The solver ([`solver::check`]) implements Fourier–Motzkin elimination with equality
//! substitution, gcd-based integer tightening and divisibility checks. Its `Unsat`
//! answers are definitive, which is the direction that matters for soundness of the
//! provers built on top of it; see the module documentation of [`solver`].
//!
//! # Example
//!
//! ```
//! use jahob_arith::linear::{Constraint, LinExpr};
//! use jahob_arith::solver::{check, Outcome};
//!
//! // size >= 0 and size + 1 <= 0 cannot hold together.
//! let size = LinExpr::var(0);
//! let cs = vec![
//!     Constraint::ge(size.clone(), LinExpr::zero()),
//!     Constraint::le(size.add(&LinExpr::constant(1)), LinExpr::zero()),
//! ];
//! assert_eq!(check(&cs), Outcome::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linear;
pub mod solver;

pub use linear::{Constraint, LinExpr, Rel, VarId};
pub use solver::{check, check_with_limits, Limits, Outcome};
