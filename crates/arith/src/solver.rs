//! Satisfiability of conjunctions of linear integer constraints.
//!
//! The solver implements Fourier–Motzkin elimination with equality substitution, integer
//! tightening (normalising coefficients by their gcd) and divisibility checks on
//! equalities — the classic core of the Omega test.
//!
//! The solver is used to establish *unsatisfiability*: provers call it on the negation of
//! a goal, and only an [`Outcome::Unsat`] answer is used to claim validity. Consequently:
//!
//! * [`Outcome::Unsat`] is definitive (the constraints have no rational — and hence no
//!   integer — solution, or fail an integer divisibility check),
//! * [`Outcome::Sat`] means the constraints are satisfiable over the rationals and not
//!   refuted by the integer checks; they may still be unsatisfiable over the integers,
//! * [`Outcome::Unknown`] is returned when resource limits are exceeded.
//!
//! This asymmetry keeps every prover built on top of the solver sound.

use crate::linear::{gcd, Constraint, LinExpr, Rel, VarId};
use std::collections::BTreeSet;

/// Result of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The constraints are definitely unsatisfiable (over the integers).
    Unsat,
    /// The constraints are satisfiable over the rationals (and not refuted by integer
    /// divisibility checks); integer satisfiability is not guaranteed.
    Sat,
    /// The solver gave up (resource limits exceeded).
    Unknown,
}

/// Configuration limits for the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of inequality constraints the elimination may create.
    pub max_constraints: usize,
    /// Maximum absolute value of any coefficient before giving up.
    pub max_coefficient: i128,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_constraints: 20_000,
            max_coefficient: 1 << 60,
        }
    }
}

/// Decides satisfiability of a conjunction of constraints with default limits.
pub fn check(constraints: &[Constraint]) -> Outcome {
    check_with_limits(constraints, Limits::default())
}

/// Decides satisfiability of a conjunction of constraints.
pub fn check_with_limits(constraints: &[Constraint], limits: Limits) -> Outcome {
    let mut equalities: Vec<LinExpr> = Vec::new();
    let mut inequalities: Vec<LinExpr> = Vec::new();
    for c in constraints {
        match c.rel {
            Rel::Eq => equalities.push(c.expr.clone()),
            Rel::Le => inequalities.push(c.expr.clone()),
        }
    }

    // Phase 1: eliminate equalities.
    loop {
        // Constant equalities decide themselves.
        equalities.retain(|e| !(e.is_constant() && e.constant_term() == 0));
        if equalities
            .iter()
            .any(|e| e.is_constant() && e.constant_term() != 0)
        {
            return Outcome::Unsat;
        }
        // Divisibility check: gcd of coefficients must divide the constant.
        for e in &equalities {
            let g = e.coeff_gcd();
            if g > 1 && e.constant_term() % g != 0 {
                return Outcome::Unsat;
            }
        }
        // Find an equality with a +/-1 coefficient and substitute it away.
        let target = equalities
            .iter()
            .enumerate()
            .find_map(|(i, e)| e.iter().find(|(_, c)| c.abs() == 1).map(|(v, c)| (i, v, c)));
        let Some((idx, var, coeff)) = target else {
            break;
        };
        let eq = equalities.remove(idx);
        // coeff * var + rest = 0  =>  var = -(rest) / coeff, and coeff is +/-1.
        let mut rest = eq.clone();
        rest.add_term(var, -coeff);
        let solution = rest.scale(-coeff); // value of `var`
        for e in equalities.iter_mut().chain(inequalities.iter_mut()) {
            substitute_var(e, var, &solution);
        }
    }
    // Remaining equalities without unit coefficients become inequality pairs.
    for e in equalities {
        inequalities.push(e.clone());
        inequalities.push(e.scale(-1));
    }

    // Phase 2: Fourier–Motzkin elimination on the inequalities.
    fourier_motzkin(inequalities, limits)
}

fn substitute_var(e: &mut LinExpr, var: VarId, value: &LinExpr) {
    let c = e.coeff(var);
    if c == 0 {
        return;
    }
    e.add_term(var, -c);
    let scaled = value.scale(c);
    for (v, k) in scaled.iter() {
        e.add_term(v, k);
    }
    e.add_constant(scaled.constant_term());
}

/// Tightens `expr <= 0` by dividing through by the gcd of the coefficients.
fn tighten(e: &LinExpr) -> LinExpr {
    let g = e.coeff_gcd();
    if g <= 1 {
        return e.clone();
    }
    let mut out = LinExpr::zero();
    for (v, c) in e.iter() {
        out.add_term(v, c / g);
    }
    // sum a_i x_i <= -c  =>  sum (a_i/g) x_i <= floor(-c / g)
    let bound = (-e.constant_term()).div_euclid(g);
    out.add_constant(-bound);
    out
}

fn fourier_motzkin(mut inequalities: Vec<LinExpr>, limits: Limits) -> Outcome {
    loop {
        // Normalise and check ground constraints.
        let mut next = Vec::with_capacity(inequalities.len());
        for e in &inequalities {
            let t = tighten(e);
            if t.is_constant() {
                if t.constant_term() > 0 {
                    return Outcome::Unsat;
                }
                continue;
            }
            if t.iter().any(|(_, c)| c.abs() > limits.max_coefficient) {
                return Outcome::Unknown;
            }
            next.push(t);
        }
        inequalities = next;
        dedup(&mut inequalities);
        if inequalities.is_empty() {
            return Outcome::Sat;
        }
        if inequalities.len() > limits.max_constraints {
            return Outcome::Unknown;
        }

        // Choose the variable whose elimination creates the fewest new constraints.
        let vars: BTreeSet<VarId> = inequalities.iter().flat_map(|e| e.vars()).collect();
        let var = vars
            .iter()
            .copied()
            .min_by_key(|v| {
                let pos = inequalities.iter().filter(|e| e.coeff(*v) > 0).count();
                let neg = inequalities.iter().filter(|e| e.coeff(*v) < 0).count();
                pos * neg
            })
            .expect("non-empty constraint set has variables");

        let (with_var, without): (Vec<LinExpr>, Vec<LinExpr>) =
            inequalities.into_iter().partition(|e| e.coeff(var) != 0);
        let upper: Vec<&LinExpr> = with_var.iter().filter(|e| e.coeff(var) > 0).collect();
        let lower: Vec<&LinExpr> = with_var.iter().filter(|e| e.coeff(var) < 0).collect();

        let mut combined = without;
        for u in &upper {
            for l in &lower {
                // u: a*x + p <= 0 (a > 0)   l: -b*x + q <= 0 (b > 0)
                // Combine: b*p + a*q <= 0.
                let a = u.coeff(var);
                let b = -l.coeff(var);
                let g = gcd(a, b);
                let combined_expr = u.scale(b / g).add(&l.scale(a / g));
                debug_assert_eq!(combined_expr.coeff(var), 0);
                combined.push(combined_expr);
                if combined.len() > limits.max_constraints {
                    return Outcome::Unknown;
                }
            }
        }
        inequalities = combined;
    }
}

fn dedup(constraints: &mut Vec<LinExpr>) {
    constraints.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    constraints.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{Constraint, LinExpr};

    fn var(v: VarId) -> LinExpr {
        LinExpr::var(v)
    }

    fn cst(c: i128) -> LinExpr {
        LinExpr::constant(c)
    }

    #[test]
    fn empty_system_is_sat() {
        assert_eq!(check(&[]), Outcome::Sat);
    }

    #[test]
    fn simple_bounds_are_sat() {
        // 0 <= x <= 10, x = 5
        let cs = vec![
            Constraint::ge(var(0), cst(0)),
            Constraint::le(var(0), cst(10)),
            Constraint::eq(var(0), cst(5)),
        ];
        assert_eq!(check(&cs), Outcome::Sat);
    }

    #[test]
    fn contradictory_bounds_are_unsat() {
        // x <= 3 and x >= 5
        let cs = vec![
            Constraint::le(var(0), cst(3)),
            Constraint::ge(var(0), cst(5)),
        ];
        assert_eq!(check(&cs), Outcome::Unsat);
    }

    #[test]
    fn equality_substitution_detects_conflict() {
        // x = y + 1, y = x  is unsatisfiable.
        let cs = vec![
            Constraint::eq(var(0), var(1).add(&cst(1))),
            Constraint::eq(var(1), var(0)),
        ];
        assert_eq!(check(&cs), Outcome::Unsat);
    }

    #[test]
    fn divisibility_check_refutes_parity_conflicts() {
        // 2x = 5 has no integer solution.
        let cs = vec![Constraint::eq(var(0).scale(2), cst(5))];
        assert_eq!(check(&cs), Outcome::Unsat);
    }

    #[test]
    fn chained_inequalities_propagate() {
        // x < y, y < z, z < x  is unsatisfiable.
        let cs = vec![
            Constraint::lt(var(0), var(1)),
            Constraint::lt(var(1), var(2)),
            Constraint::lt(var(2), var(0)),
        ];
        assert_eq!(check(&cs), Outcome::Unsat);
        // Dropping one leaves it satisfiable.
        let cs2 = vec![
            Constraint::lt(var(0), var(1)),
            Constraint::lt(var(1), var(2)),
        ];
        assert_eq!(check(&cs2), Outcome::Sat);
    }

    #[test]
    fn size_invariant_style_reasoning() {
        // size = card, card >= 0, size + 1 <= 0  is unsatisfiable
        // (models "size of a set cannot be negative").
        let cs = vec![
            Constraint::eq(var(0), var(1)),
            Constraint::ge(var(1), cst(0)),
            Constraint::le(var(0).add(&cst(1)), cst(0)),
        ];
        assert_eq!(check(&cs), Outcome::Unsat);
    }

    #[test]
    fn integer_tightening_strengthens_bounds() {
        // 2x <= 5 and 2x >= 5 has no integer solution; tightening x <= 2, x >= 3 refutes it.
        let cs = vec![
            Constraint::le(var(0).scale(2), cst(5)),
            Constraint::ge(var(0).scale(2), cst(5)),
        ];
        assert_eq!(check(&cs), Outcome::Unsat);
    }

    #[test]
    fn multi_variable_system() {
        // x + y <= 4, x >= 3, y >= 3 is unsatisfiable.
        let cs = vec![
            Constraint::le(var(0).add(&var(1)), cst(4)),
            Constraint::ge(var(0), cst(3)),
            Constraint::ge(var(1), cst(3)),
        ];
        assert_eq!(check(&cs), Outcome::Unsat);
        // Relaxing the sum makes it satisfiable.
        let cs2 = vec![
            Constraint::le(var(0).add(&var(1)), cst(8)),
            Constraint::ge(var(0), cst(3)),
            Constraint::ge(var(1), cst(3)),
        ];
        assert_eq!(check(&cs2), Outcome::Sat);
    }

    #[test]
    fn resource_limits_produce_unknown() {
        // A dense system with tiny limits trips the constraint budget.
        let mut cs = Vec::new();
        for i in 0..6u32 {
            for j in 0..6u32 {
                if i != j {
                    cs.push(Constraint::le(var(i).add(&var(j)), cst((i + j) as i128)));
                    cs.push(Constraint::ge(var(i).sub(&var(j)), cst(-3)));
                }
            }
        }
        let limits = Limits {
            max_constraints: 4,
            max_coefficient: 1 << 60,
        };
        assert_eq!(check_with_limits(&cs, limits), Outcome::Unknown);
    }
}
