//! Linear expressions and constraints over integer variables.
//!
//! This is the constraint language shared by the SMT arithmetic theory (`jahob-smt`) and
//! the BAPA decision procedure (`jahob-bapa`). Variables are identified by small integer
//! indices assigned by the caller.

use std::collections::BTreeMap;
use std::fmt;

/// A variable index.
pub type VarId = u32;

/// A linear expression `sum(coeff_i * x_i) + constant` with integer coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Coefficients by variable (zero coefficients are never stored).
    coeffs: BTreeMap<VarId, i128>,
    /// The constant term.
    constant: i128,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i128) -> Self {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression consisting of a single variable.
    pub fn var(v: VarId) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, 1);
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// The constant term.
    pub fn constant_term(&self) -> i128 {
        self.constant
    }

    /// The coefficient of a variable (zero if absent).
    pub fn coeff(&self, v: VarId) -> i128 {
        self.coeffs.get(&v).copied().unwrap_or(0)
    }

    /// Iterates over the non-zero coefficients.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, i128)> + '_ {
        self.coeffs.iter().map(|(v, c)| (*v, *c))
    }

    /// The variables with non-zero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.coeffs.keys().copied()
    }

    /// Returns `true` if the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Adds `coeff * var` to the expression.
    pub fn add_term(&mut self, v: VarId, coeff: i128) {
        let entry = self.coeffs.entry(v).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            self.coeffs.remove(&v);
        }
    }

    /// Adds a constant.
    pub fn add_constant(&mut self, c: i128) {
        self.constant += c;
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (v, c) in other.iter() {
            out.add_term(v, c);
        }
        out.add_constant(other.constant);
        out
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    /// Returns `k * self`.
    pub fn scale(&self, k: i128) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            coeffs: self.coeffs.iter().map(|(v, c)| (*v, c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Evaluates the expression under an assignment (missing variables default to 0).
    pub fn eval(&self, assignment: &BTreeMap<VarId, i128>) -> i128 {
        self.constant
            + self
                .coeffs
                .iter()
                .map(|(v, c)| c * assignment.get(v).copied().unwrap_or(0))
                .sum::<i128>()
    }

    /// The greatest common divisor of the variable coefficients (0 for constants).
    pub fn coeff_gcd(&self) -> i128 {
        self.coeffs.values().fold(0i128, |acc, c| gcd(acc, c.abs()))
    }
}

/// Greatest common divisor of two non-negative integers.
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                write!(f, "{c}*x{v}")?;
                first = false;
            } else if *c >= 0 {
                write!(f, " + {c}*x{v}")?;
            } else {
                write!(f, " - {}*x{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)
        } else {
            Ok(())
        }
    }
}

/// The relation of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `expr = 0`.
    Eq,
    /// `expr <= 0`.
    Le,
}

/// A linear constraint `expr (=|<=) 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The left-hand side expression (compared against zero).
    pub expr: LinExpr,
    /// The relation.
    pub rel: Rel,
}

impl Constraint {
    /// The constraint `lhs = rhs`.
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Self {
        Constraint {
            expr: lhs.sub(&rhs),
            rel: Rel::Eq,
        }
    }

    /// The constraint `lhs <= rhs`.
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Self {
        Constraint {
            expr: lhs.sub(&rhs),
            rel: Rel::Le,
        }
    }

    /// The constraint `lhs < rhs` (over the integers, `lhs + 1 <= rhs`).
    pub fn lt(lhs: LinExpr, rhs: LinExpr) -> Self {
        let mut e = lhs.sub(&rhs);
        e.add_constant(1);
        Constraint {
            expr: e,
            rel: Rel::Le,
        }
    }

    /// The constraint `lhs >= rhs`.
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Self {
        Constraint::le(rhs, lhs)
    }

    /// The constraint `lhs > rhs`.
    pub fn gt(lhs: LinExpr, rhs: LinExpr) -> Self {
        Constraint::lt(rhs, lhs)
    }

    /// The constraint `var >= 0`.
    pub fn non_negative(v: VarId) -> Self {
        Constraint::ge(LinExpr::var(v), LinExpr::zero())
    }

    /// Evaluates the constraint under an assignment.
    pub fn holds(&self, assignment: &BTreeMap<VarId, i128>) -> bool {
        let value = self.expr.eval(assignment);
        match self.rel {
            Rel::Eq => value == 0,
            Rel::Le => value <= 0,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rel {
            Rel::Eq => write!(f, "{} = 0", self.expr),
            Rel::Le => write!(f, "{} <= 0", self.expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_arithmetic_on_expressions() {
        let mut e = LinExpr::var(0).scale(3);
        e.add_term(1, 2);
        e.add_constant(5);
        let f = LinExpr::var(0);
        let diff = e.sub(&f);
        assert_eq!(diff.coeff(0), 2);
        assert_eq!(diff.coeff(1), 2);
        assert_eq!(diff.constant_term(), 5);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut e = LinExpr::var(0);
        e.add_term(0, -1);
        assert!(e.is_constant());
        assert_eq!(e.vars().count(), 0);
    }

    #[test]
    fn eval_and_holds() {
        let mut assignment = BTreeMap::new();
        assignment.insert(0, 3);
        assignment.insert(1, 4);
        // 2*x0 + x1 - 10 <= 0  with x0=3, x1=4  =>  0 <= 0 holds.
        let c = Constraint::le(
            LinExpr::var(0).scale(2).add(&LinExpr::var(1)),
            LinExpr::constant(10),
        );
        assert!(c.holds(&assignment));
        let strict = Constraint::lt(
            LinExpr::var(0).scale(2).add(&LinExpr::var(1)),
            LinExpr::constant(10),
        );
        assert!(!strict.holds(&assignment));
    }

    #[test]
    fn gcd_helper() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(13, 7), 1);
    }

    #[test]
    fn display_is_readable() {
        let mut e = LinExpr::var(1).scale(2);
        e.add_term(2, -3);
        e.add_constant(4);
        assert_eq!(format!("{e}"), "2*x1 - 3*x2 + 4");
        assert_eq!(format!("{}", LinExpr::constant(7)), "7");
    }
}
